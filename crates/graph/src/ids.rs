//! Typed identifiers for graph entities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a tensor within one [`TrainingGraph`](crate::TrainingGraph).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TensorId(pub u32);

impl TensorId {
    /// The raw index into the graph's tensor table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of an operator within one [`TrainingGraph`](crate::TrainingGraph).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct OpId(pub u32);

impl OpId {
    /// The raw index into the graph's op table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_compactly() {
        assert_eq!(TensorId(3).to_string(), "t3");
        assert_eq!(OpId(7).to_string(), "op7");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(TensorId(1) < TensorId(2));
        assert_eq!(OpId(5).index(), 5);
    }
}

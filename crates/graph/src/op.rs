//! Operator descriptions.

use crate::ids::{OpId, TensorId};
use mpress_hw::Secs;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What an operator does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Forward pass of one stage for one microbatch.
    Forward,
    /// Backward pass of one stage for one microbatch.
    Backward,
    /// Weight update of one stage (synchronous schedules: once per
    /// minibatch; asynchronous: folded into each backward).
    OptimizerStep,
    /// Transmit the boundary activation to the next stage.
    Send,
    /// Receive the boundary activation from the previous stage.
    Recv,
    /// Export a tensor off the device (inserted by the rewriter).
    SwapOut,
    /// Fetch a tensor back before its next use (inserted by the rewriter).
    SwapIn,
    /// Release a dropped activation (inserted by the rewriter for
    /// recomputation).
    Drop,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Forward => "fwd",
            OpKind::Backward => "bwd",
            OpKind::OptimizerStep => "opt",
            OpKind::Send => "send",
            OpKind::Recv => "recv",
            OpKind::SwapOut => "swap-out",
            OpKind::SwapIn => "swap-in",
            OpKind::Drop => "drop",
        };
        write!(f, "{s}")
    }
}

/// A point inside an op at which one layer's activation tensor is produced
/// (forward) or first needed (backward).
///
/// Compute ops aggregate a whole stage, but MPress plans at tensor (layer)
/// granularity: the first layer of a stage is produced early in the forward
/// op and needed *late* in the backward op, so its live interval is the
/// stage's longest. Sub-events make that offset explicit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubEvent {
    /// The activation tensor concerned.
    pub tensor: TensorId,
    /// Seconds after the op's start at which the event fires.
    pub offset: Secs,
}

/// One operator of the training job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Op {
    /// Graph-unique identifier.
    pub id: OpId,
    /// What the operator does.
    pub kind: OpKind,
    /// Pipeline stage the operator runs on.
    pub stage: usize,
    /// Microbatch index (`None` for per-minibatch work such as
    /// [`OpKind::OptimizerStep`]).
    pub microbatch: Option<u32>,
    /// Uninstrumented execution time.
    pub duration: Secs,
    /// Tensors the operator reads (must be resident when it starts).
    pub reads: Vec<TensorId>,
    /// Tensors the operator materializes.
    pub writes: Vec<TensorId>,
    /// Tensors whose last use this is; their memory is released when the
    /// operator completes.
    pub frees: Vec<TensorId>,
    /// Per-layer production (forward) or consumption (backward) offsets.
    pub sub_events: Vec<SubEvent>,
}

impl Op {
    /// Creates an op with empty read/write/free sets.
    pub fn new(
        id: OpId,
        kind: OpKind,
        stage: usize,
        microbatch: Option<u32>,
        duration: Secs,
    ) -> Self {
        assert!(duration >= 0.0, "duration must be non-negative");
        Op {
            id,
            kind,
            stage,
            microbatch,
            duration,
            reads: Vec::new(),
            writes: Vec::new(),
            frees: Vec::new(),
            sub_events: Vec::new(),
        }
    }

    /// The sub-event offset for `tensor`, if recorded.
    pub fn sub_event_offset(&self, tensor: TensorId) -> Option<Secs> {
        self.sub_events
            .iter()
            .find(|e| e.tensor == tensor)
            .map(|e| e.offset)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}(stage {}", self.id, self.kind, self.stage)?;
        if let Some(m) = self.microbatch {
            write!(f, ", mb {m}")?;
        }
        write!(f, ", {:.3} ms)", self.duration * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_op_is_empty() {
        let op = Op::new(OpId(0), OpKind::Forward, 2, Some(1), 0.010);
        assert!(op.reads.is_empty() && op.writes.is_empty() && op.frees.is_empty());
        assert_eq!(op.stage, 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        let _ = Op::new(OpId(0), OpKind::Forward, 0, None, -1.0);
    }

    #[test]
    fn sub_event_lookup() {
        let mut op = Op::new(OpId(0), OpKind::Backward, 0, Some(0), 0.02);
        op.sub_events.push(SubEvent {
            tensor: TensorId(4),
            offset: 0.015,
        });
        assert_eq!(op.sub_event_offset(TensorId(4)), Some(0.015));
        assert_eq!(op.sub_event_offset(TensorId(5)), None);
    }

    #[test]
    fn display_includes_kind_and_stage() {
        let op = Op::new(OpId(9), OpKind::Send, 3, Some(7), 0.001);
        let s = op.to_string();
        assert!(s.contains("send") && s.contains("stage 3"), "{s}");
    }
}

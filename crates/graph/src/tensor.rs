//! Tensor descriptions.

use crate::ids::TensorId;
use mpress_hw::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The model-data category a tensor belongs to (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorKind {
    /// Forward-pass activation kept for the backward pass. The only
    /// category recomputation applies to.
    Activation,
    /// Model weights. Under PipeDream's asynchronous schedule several
    /// versions may be stashed simultaneously.
    Parameter,
    /// Accumulated gradients.
    Gradient,
    /// Optimizer state (Adam master weights, momentum, variance).
    OptimizerState,
    /// The inter-stage boundary activation transferred between GPUs.
    Boundary,
}

impl TensorKind {
    /// Whether recomputation can regenerate this tensor (activations only,
    /// paper §II-D).
    pub fn recomputable(self) -> bool {
        matches!(self, TensorKind::Activation)
    }

    /// Whether the tensor persists across microbatches (static model data).
    pub fn is_static(self) -> bool {
        matches!(
            self,
            TensorKind::Parameter | TensorKind::Gradient | TensorKind::OptimizerState
        )
    }
}

impl fmt::Display for TensorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TensorKind::Activation => "activation",
            TensorKind::Parameter => "parameter",
            TensorKind::Gradient => "gradient",
            TensorKind::OptimizerState => "optimizer-state",
            TensorKind::Boundary => "boundary",
        };
        write!(f, "{s}")
    }
}

/// One tensor of the training job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tensor {
    /// Graph-unique identifier.
    pub id: TensorId,
    /// Data category.
    pub kind: TensorKind,
    /// Size in bytes.
    pub bytes: Bytes,
    /// Pipeline stage owning the tensor.
    pub stage: usize,
    /// Model layer (global index) the tensor belongs to, when applicable.
    pub layer: Option<usize>,
    /// Microbatch the tensor belongs to (activations/boundaries only).
    pub microbatch: Option<u32>,
}

impl Tensor {
    /// True when the tensor lives for exactly one forward→backward span of
    /// one microbatch.
    pub fn is_per_microbatch(&self) -> bool {
        self.microbatch.is_some()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ({})", self.id, self.kind, self.bytes)?;
        if let Some(l) = self.layer {
            write!(f, " layer {l}")?;
        }
        if let Some(m) = self.microbatch {
            write!(f, " mb {m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_activations_are_recomputable() {
        assert!(TensorKind::Activation.recomputable());
        for k in [
            TensorKind::Parameter,
            TensorKind::Gradient,
            TensorKind::OptimizerState,
            TensorKind::Boundary,
        ] {
            assert!(!k.recomputable(), "{k} must not be recomputable");
        }
    }

    #[test]
    fn static_kinds() {
        assert!(TensorKind::Parameter.is_static());
        assert!(TensorKind::OptimizerState.is_static());
        assert!(!TensorKind::Activation.is_static());
        assert!(!TensorKind::Boundary.is_static());
    }

    #[test]
    fn display_mentions_location() {
        let t = Tensor {
            id: TensorId(1),
            kind: TensorKind::Activation,
            bytes: Bytes::mib(216),
            stage: 0,
            layer: Some(3),
            microbatch: Some(2),
        };
        let s = t.to_string();
        assert!(s.contains("layer 3") && s.contains("mb 2"), "{s}");
        assert!(t.is_per_microbatch());
    }
}

//! Live-interval analysis (paper §III-D).
//!
//! > "Live interval of a tensor is the time duration between its generation
//! > and the subsequent usage. For instance, concerning activation tensors,
//! > their live interval is computed by the difference between the
//! > timestamps of its backward and forward passes." — MPress, footnote 1.
//!
//! MPress's planner compares each tensor's live interval against the cost
//! of GPU-CPU swap, D2D swap and recomputation to pick the cheapest
//! technique whose latency can be hidden.

use crate::graph::TrainingGraph;
use crate::ids::TensorId;
use mpress_hw::Secs;
use serde::{Deserialize, Serialize};

/// When a tensor exists and when it is needed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LiveInterval {
    /// Time the tensor is materialized (producer sub-event, or producer op
    /// end when no sub-event is recorded; 0 for static tensors).
    pub def: Secs,
    /// Time of the first subsequent use (`f64::INFINITY` when never read).
    pub first_use: Secs,
    /// Time of the last use.
    pub last_use: Secs,
}

impl LiveInterval {
    /// The paper's live interval: first use minus generation.
    pub fn duration(&self) -> Secs {
        (self.first_use - self.def).max(0.0)
    }

    /// Whether the tensor is ever consumed.
    pub fn is_used(&self) -> bool {
        self.first_use.is_finite()
    }
}

/// Per-tensor live intervals for one timed execution of a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LivenessAnalysis {
    intervals: Vec<LiveInterval>,
}

impl LivenessAnalysis {
    /// Computes intervals from op start times (seconds, indexed by op id).
    ///
    /// Forward sub-events refine the *def* time of per-layer activations;
    /// backward sub-events refine their *use* time. Ops without sub-events
    /// define at op end and use at op start (conservative in both
    /// directions).
    ///
    /// # Panics
    ///
    /// Panics if `start_times` is shorter than the graph's op table.
    pub fn compute(graph: &TrainingGraph, start_times: &[Secs]) -> Self {
        assert!(
            start_times.len() >= graph.ops().len(),
            "need a start time for every op"
        );
        let mut intervals = vec![
            LiveInterval {
                def: 0.0,
                first_use: f64::INFINITY,
                last_use: 0.0,
            };
            graph.tensors().len()
        ];
        for op in graph.ops() {
            let start = start_times[op.id.index()];
            let end = start + op.duration;
            for &t in &op.writes {
                let def = op.sub_event_offset(t).map_or(end, |off| start + off);
                intervals[t.index()].def = def;
            }
            for &t in &op.reads {
                let use_time = op.sub_event_offset(t).map_or(start, |off| start + off);
                let iv = &mut intervals[t.index()];
                if use_time < iv.first_use {
                    iv.first_use = use_time;
                }
                if use_time > iv.last_use {
                    iv.last_use = use_time;
                }
            }
        }
        LivenessAnalysis { intervals }
    }

    /// The interval of one tensor.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn interval(&self, t: TensorId) -> LiveInterval {
        self.intervals[t.index()]
    }

    /// Iterates `(tensor, interval)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TensorId, LiveInterval)> + '_ {
        self.intervals
            .iter()
            .enumerate()
            .map(|(i, &iv)| (TensorId(i as u32), iv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpKind, SubEvent};
    use crate::tensor::TensorKind;
    use mpress_hw::Bytes;

    /// One stage, two layers: layer 0's activation is produced first in the
    /// forward op and needed last in the backward op, so it must have the
    /// longer live interval.
    #[test]
    fn sub_events_order_layer_intervals() {
        let mut b = TrainingGraph::builder(1);
        let a0 = b.add_tensor(TensorKind::Activation, Bytes::mib(1), 0, Some(0), Some(0));
        let a1 = b.add_tensor(TensorKind::Activation, Bytes::mib(1), 0, Some(1), Some(0));
        b.add_op(OpKind::Forward, 0, Some(0), 0.010, |op| {
            op.writes.extend([a0, a1]);
            op.sub_events.extend([
                SubEvent {
                    tensor: a0,
                    offset: 0.005,
                },
                SubEvent {
                    tensor: a1,
                    offset: 0.010,
                },
            ]);
        });
        b.add_op(OpKind::Backward, 0, Some(0), 0.020, |op| {
            op.reads.extend([a0, a1]);
            op.frees.extend([a0, a1]);
            op.sub_events.extend([
                SubEvent {
                    tensor: a1,
                    offset: 0.0,
                },
                SubEvent {
                    tensor: a0,
                    offset: 0.010,
                },
            ]);
        });
        let g = b.build().unwrap();
        let starts = g.serial_start_times();
        let live = LivenessAnalysis::compute(&g, &starts);
        let i0 = live.interval(a0);
        let i1 = live.interval(a1);
        assert!(i0.duration() > i1.duration());
        // a0: def at 5 ms, used at 10 (fwd) + 10 (bwd offset) = 20 ms.
        assert!((i0.duration() - 0.015).abs() < 1e-9);
        assert!((i1.duration() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn unused_tensor_has_infinite_first_use() {
        let mut b = TrainingGraph::builder(1);
        let t = b.add_tensor(TensorKind::Activation, Bytes::mib(1), 0, None, Some(0));
        b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| op.writes.push(t));
        let g = b.build().unwrap();
        let live = LivenessAnalysis::compute(&g, &g.serial_start_times());
        assert!(!live.interval(t).is_used());
    }

    #[test]
    fn duration_never_negative() {
        let iv = LiveInterval {
            def: 5.0,
            first_use: 1.0,
            last_use: 1.0,
        };
        assert_eq!(iv.duration(), 0.0);
    }

    #[test]
    fn iter_yields_every_tensor() {
        let mut b = TrainingGraph::builder(1);
        for _ in 0..3 {
            b.add_tensor(TensorKind::Parameter, Bytes::mib(1), 0, None, None);
        }
        b.add_op(OpKind::Forward, 0, Some(0), 0.01, |_| {});
        let g = b.build().unwrap();
        let live = LivenessAnalysis::compute(&g, &g.serial_start_times());
        assert_eq!(live.iter().count(), 3);
    }
}

//! Dataflow-graph substrate for the MPress reproduction.
//!
//! MPress Static (paper Fig. 5) operates on the training job's dataflow
//! graph: the *profiler* collects per-tensor stats, the *planner* assigns
//! memory-saving strategies using live-interval analysis, and the
//! *rewriter* instruments the graph with swap/drop/recompute operators.
//! This crate provides the graph representation those components share:
//!
//! * [`Tensor`]s at per-layer x per-microbatch granularity (activations)
//!   and per-layer granularity (parameters, gradients, optimizer states),
//! * [`Op`]s at per-stage x per-microbatch granularity with *sub-events*
//!   recording when each layer's activation is produced inside a forward
//!   op and consumed inside a backward op, and
//! * [`liveness`] analysis turning a timed schedule into per-tensor live
//!   intervals — the quantity MPress's cost model compares against swap
//!   and recomputation latencies (paper §III-D).

#![forbid(unsafe_code)]

pub mod graph;
pub mod ids;
pub mod liveness;
pub mod op;
pub mod tensor;

pub use graph::{GraphError, TrainingGraph, TrainingGraphBuilder};
pub use ids::{OpId, TensorId};
pub use liveness::{LiveInterval, LivenessAnalysis};
pub use op::{Op, OpKind, SubEvent};
pub use tensor::{Tensor, TensorKind};

//! The training-job dataflow graph.

use crate::ids::{OpId, TensorId};
use crate::op::{Op, OpKind};
use crate::tensor::{Tensor, TensorKind};
use mpress_hw::{Bytes, Secs};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors raised while building or validating a [`TrainingGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An op references a tensor id that was never added.
    UnknownTensor(TensorId, OpId),
    /// A dependency references an op id that was never added.
    UnknownOp(OpId),
    /// The combined graph (program order + cross-stage edges) has a cycle.
    Cycle,
    /// An op was placed on a stage beyond the declared stage count.
    StageOutOfRange(OpId, usize),
    /// A non-static tensor is read before any op writes it.
    ReadBeforeWrite(TensorId, OpId),
    /// A lowering pass violated one of its own structural invariants
    /// (for instance a stage with no layers, or a missing boundary
    /// tensor) — a bug in the lowering builder, not bad user input.
    LoweringInvariant(&'static str),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownTensor(t, o) => write!(f, "op {o} references unknown tensor {t}"),
            GraphError::UnknownOp(o) => write!(f, "dependency references unknown op {o}"),
            GraphError::Cycle => write!(f, "dependency cycle in training graph"),
            GraphError::StageOutOfRange(o, s) => {
                write!(f, "op {o} placed on out-of-range stage {s}")
            }
            GraphError::ReadBeforeWrite(t, o) => {
                write!(f, "op {o} reads tensor {t} before any producer runs")
            }
            GraphError::LoweringInvariant(msg) => {
                write!(f, "lowering invariant violated: {msg}")
            }
        }
    }
}

impl Error for GraphError {}

/// A validated dataflow graph of one training iteration, partitioned into
/// pipeline stages.
///
/// Each stage has a total *program order* (the sequence its GPU executes);
/// cross-stage edges express send/recv dependencies between adjacent
/// stages.
///
/// # Example
///
/// ```
/// use mpress_graph::{TrainingGraph, TensorKind, OpKind};
/// use mpress_hw::Bytes;
///
/// let mut b = TrainingGraph::builder(2);
/// let act = b.add_tensor(TensorKind::Activation, Bytes::mib(8), 0, Some(0), Some(0));
/// let fwd = b.add_op(OpKind::Forward, 0, Some(0), 0.010, |op| op.writes.push(act));
/// let bwd = b.add_op(OpKind::Backward, 0, Some(0), 0.020, |op| {
///     op.reads.push(act);
///     op.frees.push(act);
/// });
/// b.add_dep(fwd, bwd);
/// let g = b.build()?;
/// assert_eq!(g.consumers_of(act), vec![bwd]);
/// # Ok::<(), mpress_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingGraph {
    tensors: Vec<Tensor>,
    ops: Vec<Op>,
    stage_programs: Vec<Vec<OpId>>,
    cross_deps: Vec<(OpId, OpId)>,
    n_stages: usize,
}

impl TrainingGraph {
    /// Starts building a graph over `n_stages` pipeline stages.
    pub fn builder(n_stages: usize) -> TrainingGraphBuilder {
        TrainingGraphBuilder {
            tensors: Vec::new(),
            ops: Vec::new(),
            stage_programs: vec![Vec::new(); n_stages],
            cross_deps: Vec::new(),
            n_stages,
        }
    }

    /// Number of pipeline stages.
    pub fn n_stages(&self) -> usize {
        self.n_stages
    }

    /// All tensors.
    pub fn tensors(&self) -> &[Tensor] {
        &self.tensors
    }

    /// All ops.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Looks up one tensor.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn tensor(&self, id: TensorId) -> &Tensor {
        &self.tensors[id.index()]
    }

    /// Looks up one op.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.index()]
    }

    /// The ordered op sequence of one stage.
    pub fn stage_program(&self, stage: usize) -> &[OpId] {
        &self.stage_programs[stage]
    }

    /// Cross-stage dependency edges `(from, to)`.
    pub fn cross_deps(&self) -> &[(OpId, OpId)] {
        &self.cross_deps
    }

    /// The op that writes `tensor`, if any (static tensors have none).
    pub fn producer_of(&self, tensor: TensorId) -> Option<OpId> {
        self.ops
            .iter()
            .find(|op| op.writes.contains(&tensor))
            .map(|op| op.id)
    }

    /// All ops that read `tensor`, in id order.
    pub fn consumers_of(&self, tensor: TensorId) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|op| op.reads.contains(&tensor))
            .map(|op| op.id)
            .collect()
    }

    /// Tensors of a given kind on a given stage.
    pub fn stage_tensors(&self, stage: usize, kind: TensorKind) -> Vec<TensorId> {
        self.tensors
            .iter()
            .filter(|t| t.stage == stage && t.kind == kind)
            .map(|t| t.id)
            .collect()
    }

    /// Total bytes of all tensors on one stage.
    pub fn stage_bytes(&self, stage: usize) -> Bytes {
        self.tensors
            .iter()
            .filter(|t| t.stage == stage)
            .map(|t| t.bytes)
            .sum()
    }

    /// Serial (single-op-at-a-time, zero-communication) start times: each
    /// stage's program runs back-to-back, stages honor cross edges. Useful
    /// as a cheap timing estimate for liveness analysis before full
    /// simulation.
    ///
    /// Returns `start[op.index()]` in seconds.
    pub fn serial_start_times(&self) -> Vec<Secs> {
        // Kahn-style traversal over the combined graph.
        let order = self.topo_order().expect("validated graph is acyclic");
        let mut start = vec![0.0_f64; self.ops.len()];
        let mut stage_free: Vec<Secs> = vec![0.0; self.n_stages];
        let mut dep_ready: Vec<Secs> = vec![0.0; self.ops.len()];
        let mut preds: HashMap<usize, Vec<usize>> = HashMap::new();
        for &(a, b) in &self.cross_deps {
            preds.entry(b.index()).or_default().push(a.index());
        }
        for id in order {
            let i = id.index();
            let op = &self.ops[i];
            if let Some(ps) = preds.get(&i) {
                for &p in ps {
                    let end = start[p] + self.ops[p].duration;
                    if end > dep_ready[i] {
                        dep_ready[i] = end;
                    }
                }
            }
            let s = stage_free[op.stage].max(dep_ready[i]);
            start[i] = s;
            stage_free[op.stage] = s + op.duration;
        }
        start
    }

    /// Topological order over program-order + cross edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] when the graph is cyclic.
    pub fn topo_order(&self) -> Result<Vec<OpId>, GraphError> {
        let n = self.ops.len();
        let mut indeg = vec![0usize; n];
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        let add_edge = |succ: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>, a: usize, b: usize| {
            succ[a].push(b);
            indeg[b] += 1;
        };
        for prog in &self.stage_programs {
            for w in prog.windows(2) {
                add_edge(&mut succ, &mut indeg, w[0].index(), w[1].index());
            }
        }
        for &(a, b) in &self.cross_deps {
            add_edge(&mut succ, &mut indeg, a.index(), b.index());
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            out.push(OpId(i as u32));
            for &j in &succ[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if out.len() == n {
            Ok(out)
        } else {
            Err(GraphError::Cycle)
        }
    }
}

/// Incremental builder for [`TrainingGraph`].
#[derive(Debug, Clone)]
pub struct TrainingGraphBuilder {
    tensors: Vec<Tensor>,
    ops: Vec<Op>,
    stage_programs: Vec<Vec<OpId>>,
    cross_deps: Vec<(OpId, OpId)>,
    n_stages: usize,
}

impl TrainingGraphBuilder {
    /// Adds a tensor and returns its id.
    pub fn add_tensor(
        &mut self,
        kind: TensorKind,
        bytes: Bytes,
        stage: usize,
        layer: Option<usize>,
        microbatch: Option<u32>,
    ) -> TensorId {
        let id = TensorId(self.tensors.len() as u32);
        self.tensors.push(Tensor {
            id,
            kind,
            bytes,
            stage,
            layer,
            microbatch,
        });
        id
    }

    /// Adds an op at the end of its stage's program order. The `configure`
    /// closure fills in reads/writes/frees/sub-events.
    pub fn add_op(
        &mut self,
        kind: OpKind,
        stage: usize,
        microbatch: Option<u32>,
        duration: Secs,
        configure: impl FnOnce(&mut Op),
    ) -> OpId {
        let id = OpId(self.ops.len() as u32);
        let mut op = Op::new(id, kind, stage, microbatch, duration);
        configure(&mut op);
        self.ops.push(op);
        if stage < self.stage_programs.len() {
            self.stage_programs[stage].push(id);
        }
        id
    }

    /// Adds a cross-stage dependency: `to` cannot start before `from` ends.
    pub fn add_dep(&mut self, from: OpId, to: OpId) {
        self.cross_deps.push((from, to));
    }

    /// Validates and finishes the graph.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: unknown ids, out-of-range stages,
    /// cycles, or reads of never-written dynamic tensors.
    pub fn build(self) -> Result<TrainingGraph, GraphError> {
        let n_tensors = self.tensors.len();
        let n_ops = self.ops.len();
        for op in &self.ops {
            if op.stage >= self.n_stages {
                return Err(GraphError::StageOutOfRange(op.id, op.stage));
            }
            for &t in op.reads.iter().chain(&op.writes).chain(&op.frees) {
                if t.index() >= n_tensors {
                    return Err(GraphError::UnknownTensor(t, op.id));
                }
            }
        }
        for &(a, b) in &self.cross_deps {
            if a.index() >= n_ops || b.index() >= n_ops {
                return Err(GraphError::UnknownOp(if a.index() >= n_ops {
                    a
                } else {
                    b
                }));
            }
        }
        let mut written = vec![false; n_tensors];
        for t in &self.tensors {
            if t.kind.is_static() {
                written[t.id.index()] = true; // pre-resident model data
            }
        }
        let graph = TrainingGraph {
            tensors: self.tensors,
            ops: self.ops,
            stage_programs: self.stage_programs,
            cross_deps: self.cross_deps,
            n_stages: self.n_stages,
        };
        let order = graph.topo_order()?;
        for id in &order {
            let op = graph.op(*id);
            for &t in &op.reads {
                if !written[t.index()] {
                    return Err(GraphError::ReadBeforeWrite(t, op.id));
                }
            }
            for &t in &op.writes {
                written[t.index()] = true;
            }
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stage_graph() -> TrainingGraph {
        let mut b = TrainingGraph::builder(2);
        let a0 = b.add_tensor(TensorKind::Activation, Bytes::mib(4), 0, Some(0), Some(0));
        let bd = b.add_tensor(TensorKind::Boundary, Bytes::mib(1), 0, None, Some(0));
        let a1 = b.add_tensor(TensorKind::Activation, Bytes::mib(4), 1, Some(1), Some(0));
        let f0 = b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| {
            op.writes.extend([a0, bd]);
        });
        let f1 = b.add_op(OpKind::Forward, 1, Some(0), 0.01, |op| {
            op.reads.push(bd);
            op.writes.push(a1);
        });
        let b1 = b.add_op(OpKind::Backward, 1, Some(0), 0.02, |op| {
            op.reads.push(a1);
            op.frees.push(a1);
        });
        let b0 = b.add_op(OpKind::Backward, 0, Some(0), 0.02, |op| {
            op.reads.push(a0);
            op.frees.extend([a0, bd]);
        });
        b.add_dep(f0, f1);
        b.add_dep(b1, b0);
        b.build().expect("valid graph")
    }

    #[test]
    fn build_validates_ok() {
        let g = two_stage_graph();
        assert_eq!(g.ops().len(), 4);
        assert_eq!(g.n_stages(), 2);
        assert_eq!(g.stage_program(0).len(), 2);
    }

    #[test]
    fn producer_consumer_lookup() {
        let g = two_stage_graph();
        let a0 = TensorId(0);
        assert_eq!(g.producer_of(a0), Some(OpId(0)));
        assert_eq!(g.consumers_of(a0), vec![OpId(3)]);
    }

    #[test]
    fn topo_order_covers_all_ops() {
        let g = two_stage_graph();
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), 4);
        // f0 precedes f1; b1 precedes b0.
        let pos = |id: OpId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(OpId(0)) < pos(OpId(1)));
        assert!(pos(OpId(2)) < pos(OpId(3)));
    }

    #[test]
    fn serial_start_times_respect_deps() {
        let g = two_stage_graph();
        let start = g.serial_start_times();
        // f1 starts only after f0 ends (0.01).
        assert!(start[1] >= 0.01 - 1e-12);
        // b0 starts after b1 ends.
        assert!(start[3] >= start[2] + 0.02 - 1e-12);
    }

    #[test]
    fn cycle_detected() {
        let mut b = TrainingGraph::builder(1);
        let o1 = b.add_op(OpKind::Forward, 0, Some(0), 0.01, |_| {});
        let o2 = b.add_op(OpKind::Backward, 0, Some(0), 0.01, |_| {});
        // program order makes o1 -> o2; this edge closes the loop.
        b.add_dep(o2, o1);
        assert_eq!(b.build().unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn read_before_write_detected() {
        let mut b = TrainingGraph::builder(1);
        let t = b.add_tensor(TensorKind::Activation, Bytes::mib(1), 0, None, Some(0));
        b.add_op(OpKind::Backward, 0, Some(0), 0.01, |op| op.reads.push(t));
        match b.build() {
            Err(GraphError::ReadBeforeWrite(tt, _)) => assert_eq!(tt, t),
            other => panic!("expected ReadBeforeWrite, got {other:?}"),
        }
    }

    #[test]
    fn static_tensors_are_preresident() {
        let mut b = TrainingGraph::builder(1);
        let w = b.add_tensor(TensorKind::Parameter, Bytes::mib(1), 0, Some(0), None);
        b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| op.reads.push(w));
        assert!(b.build().is_ok());
    }

    #[test]
    fn stage_out_of_range_detected() {
        let mut b = TrainingGraph::builder(1);
        b.add_op(OpKind::Forward, 5, Some(0), 0.01, |_| {});
        assert!(matches!(b.build(), Err(GraphError::StageOutOfRange(_, 5))));
    }

    #[test]
    fn unknown_dep_detected() {
        let mut b = TrainingGraph::builder(1);
        let o = b.add_op(OpKind::Forward, 0, Some(0), 0.01, |_| {});
        b.add_dep(o, OpId(99));
        assert_eq!(b.build().unwrap_err(), GraphError::UnknownOp(OpId(99)));
    }

    #[test]
    fn stage_bytes_sums_all_kinds() {
        let g = two_stage_graph();
        assert_eq!(g.stage_bytes(0), Bytes::mib(5));
        assert_eq!(g.stage_bytes(1), Bytes::mib(4));
    }
}

//! Name → object catalogs for wire-level requests.
//!
//! Requests carry *names* ("bert-1.67b", "dgx1", "pipedream", "all");
//! this module is the single resolution point the CLI, the daemon and
//! the load generator share, so one spelling works everywhere. Unknown
//! names resolve to [`ServeError::BadRequest`] listing the options.

use crate::wire::ServeError;
use mpress::OptimizationSet;
use mpress_hw::Machine;
use mpress_model::{zoo, PrecisionPolicy, TransformerConfig};
use mpress_pipeline::ScheduleKind;

/// All model variants with their request names.
pub fn model_catalog() -> Vec<(&'static str, TransformerConfig)> {
    vec![
        ("bert-0.35b", zoo::bert_0_35b()),
        ("bert-0.64b", zoo::bert_0_64b()),
        ("bert-1.67b", zoo::bert_1_67b()),
        ("bert-4.0b", zoo::bert_4_0b()),
        ("bert-6.2b", zoo::bert_6_2b()),
        ("gpt-5.3b", zoo::gpt_5_3b()),
        ("gpt-10.3b", zoo::gpt_10_3b()),
        ("gpt-15.4b", zoo::gpt_15_4b()),
        ("gpt-20.4b", zoo::gpt_20_4b()),
        ("gpt-25.5b", zoo::gpt_25_5b()),
    ]
}

/// Looks up a model by request name.
///
/// # Errors
///
/// Lists the valid names on failure.
pub fn model(name: &str) -> Result<TransformerConfig, ServeError> {
    model_catalog()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, m)| m)
        .ok_or_else(|| {
            let names: Vec<&str> = model_catalog().iter().map(|(n, _)| *n).collect();
            ServeError::BadRequest(format!(
                "unknown model `{name}`; expected one of: {}",
                names.join(", ")
            ))
        })
}

/// Looks up a machine by request name.
///
/// # Errors
///
/// Lists the valid names on failure.
pub fn machine(name: &str) -> Result<Machine, ServeError> {
    match name {
        "dgx1" => Ok(Machine::dgx1()),
        "dgx2" => Ok(Machine::dgx2()),
        "commodity" => Ok(Machine::commodity()),
        other => Err(ServeError::BadRequest(format!(
            "unknown machine `{other}`; expected dgx1, dgx2 or commodity"
        ))),
    }
}

/// Looks up a schedule by request name.
///
/// # Errors
///
/// Lists the valid names on failure.
pub fn schedule(name: &str) -> Result<ScheduleKind, ServeError> {
    match name {
        "pipedream" => Ok(ScheduleKind::PipeDream),
        "dapple" => Ok(ScheduleKind::Dapple),
        "gpipe" => Ok(ScheduleKind::GPipe),
        other => Err(ServeError::BadRequest(format!(
            "unknown schedule `{other}`; expected pipedream, dapple or gpipe"
        ))),
    }
}

/// Looks up an optimization set by request name.
///
/// # Errors
///
/// Lists the valid names on failure.
pub fn optimizations(name: &str) -> Result<OptimizationSet, ServeError> {
    match name {
        "all" => Ok(OptimizationSet::all()),
        "recompute" => Ok(OptimizationSet::recompute_only()),
        "hostswap" => Ok(OptimizationSet::host_swap_only()),
        "d2d" => Ok(OptimizationSet::d2d_only()),
        "none" => Ok(OptimizationSet::none()),
        other => Err(ServeError::BadRequest(format!(
            "unknown optimization set `{other}`; expected all, recompute, hostswap, d2d or none"
        ))),
    }
}

/// The paper's default pairing: Bert runs PipeDream/FP32 at microbatch 12,
/// GPT runs DAPPLE/mixed at microbatch 2.
pub fn paper_defaults(model: &TransformerConfig) -> (ScheduleKind, usize, PrecisionPolicy) {
    match model.family() {
        mpress_model::ModelFamily::Bert => (
            ScheduleKind::PipeDream,
            zoo::BERT_MICROBATCH,
            PrecisionPolicy::full(),
        ),
        mpress_model::ModelFamily::Gpt => (
            ScheduleKind::Dapple,
            zoo::GPT_MICROBATCH,
            PrecisionPolicy::mixed(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_name_resolves() {
        for (name, cfg) in model_catalog() {
            assert_eq!(model(name).unwrap().name(), cfg.name());
        }
    }

    #[test]
    fn unknown_names_list_options() {
        assert!(model("gpt-99b")
            .unwrap_err()
            .to_string()
            .contains("gpt-25.5b"));
        assert!(machine("dgx9").unwrap_err().to_string().contains("dgx2"));
        assert!(schedule("fifo").unwrap_err().to_string().contains("gpipe"));
        assert!(optimizations("max")
            .unwrap_err()
            .to_string()
            .contains("recompute"));
    }
}

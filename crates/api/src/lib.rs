//! **mpress-api** — the versioned request/response API.
//!
//! One set of `v1` wire types shared by every front end:
//!
//! * the **CLI** (`mpress-cli plan/train/check/compare`) builds a
//!   [`PlanRequest`]/[`CompareRequest`] from its flags and executes it
//!   through [`exec`];
//! * the **daemon** (`mpress-serve`) decodes the same types from
//!   newline-delimited JSON ([`wire`]) and executes them through the
//!   same entry points;
//! * the **load generator** (`exp_bench_serve`) replays them over TCP
//!   and byte-compares daemon responses against local execution.
//!
//! Because all three share one entry point, "same request ⇒ same
//! response" is a testable contract, not a convention.
//!
//! # Versioning policy
//!
//! Every envelope and request/response body carries an explicit schema
//! version field `v` (currently [`SCHEMA_VERSION`] = 1).
//!
//! * **`v1` may gain fields.** Decoders ignore unknown fields (manual
//!   tree-walking decode — tolerance falls out of `Value::get`), so
//!   adding an optional request field or a new response field is
//!   backward compatible. All request/response structs are
//!   `#[non_exhaustive]` with builder-style setters for the same
//!   reason on the Rust side.
//! * **`v2` is required** when an existing field changes meaning,
//!   type, unit or default — anything that would make an old reader
//!   silently misinterpret a new document. Servers reject any other
//!   major version with [`ServeError::UnsupportedVersion`] rather than
//!   guessing.

#![forbid(unsafe_code)]

pub mod exec;
pub mod names;
pub mod wire;

pub use exec::{
    execute, run_check, run_compare, run_plan, run_train, ApiContext, CheckOutcome, CompareOutcome,
    PlanOutcome, TrainOutcome,
};
pub use wire::{
    decode_request_line, decode_response_line, encode_request_line, encode_response_line,
    CheckResponse, CompareRequest, CompareResponse, CompareRow, DecodedResponse, PlanRequest,
    PlanResponse, Request, Response, SavingsRow, ServeError, TrainResponse, SCHEMA_VERSION,
};

//! Request execution: the one code path behind the CLI, the daemon and
//! the load generator.
//!
//! Every front end resolves a wire request into a
//! [`PipelineJob`](mpress_pipeline::PipelineJob) and runs it through the
//! same [`Mpress`] facade, sharing one [`ApiContext`] (plan/emulation
//! cache + simulator arena pool). "Same request ⇒ same response" is
//! therefore a single function's determinism, not a cross-binary
//! convention.
//!
//! Each `run_*` entry point returns both the wire response *and* the
//! rich in-process objects (plan, lowered job, telemetry) so the CLI can
//! keep rendering its human-readable tables without replanning.

use crate::names;
use crate::wire::{
    CheckResponse, CompareRequest, CompareResponse, CompareRow, PlanRequest, PlanResponse, Request,
    Response, SavingsRow, ServeError, TrainResponse, SCHEMA_VERSION,
};
use mpress::{
    CancelToken, Mpress, MpressError, OptimizationSet, PlanCache, PlannerConfig, TelemetryReport,
};
use mpress_pipeline::{PipelineJob, ScheduleKind};
use mpress_sim::ArenaPool;
use std::collections::BTreeMap;

/// Shared service state: the process-global plan/emulation cache and the
/// simulator arena pool.
///
/// The CLI builds a fresh context per invocation (cold cache — exactly
/// the old behaviour); the daemon builds one at startup and routes every
/// request through it, which is what makes cross-request plan reuse and
/// arena recycling possible.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct ApiContext {
    /// Process-global plan + emulation-outcome cache.
    pub cache: PlanCache,
    /// Recycled simulator arenas.
    pub arenas: ArenaPool,
    /// Cooperative cancellation for in-flight planning (set by the
    /// daemon so shutdown can abandon queued work).
    pub cancel: Option<CancelToken>,
}

impl ApiContext {
    /// A fresh context with empty caches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a cancellation token honoured by every request executed
    /// through this context.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// The canonical request-name spelling of a schedule.
fn schedule_name(kind: ScheduleKind) -> &'static str {
    match kind {
        ScheduleKind::PipeDream => "pipedream",
        ScheduleKind::Dapple => "dapple",
        ScheduleKind::GPipe => "gpipe",
    }
}

/// A request resolved against the catalogs: the buildable job plus the
/// defaults-applied echo values for the response.
struct ResolvedJob {
    job: PipelineJob,
    schedule: &'static str,
    microbatch: u64,
    microbatches: u64,
}

fn resolve_job(
    model: &str,
    machine: &str,
    schedule: Option<&str>,
    microbatch: Option<u64>,
    microbatches: u64,
) -> Result<ResolvedJob, ServeError> {
    let model = names::model(model)?;
    let machine = names::machine(machine)?;
    let (default_sched, default_mb, precision) = names::paper_defaults(&model);
    let schedule = match schedule {
        Some(s) => names::schedule(s)?,
        None => default_sched,
    };
    let microbatch = microbatch.unwrap_or(default_mb as u64);
    let job = PipelineJob::builder()
        .model(model)
        .machine(machine)
        .schedule(schedule)
        .microbatch_size(microbatch as usize)
        .microbatches(microbatches as usize)
        .precision(precision)
        .build()
        .map_err(|e| ServeError::BadRequest(format!("invalid job: {e}")))?;
    Ok(ResolvedJob {
        job,
        schedule: schedule_name(schedule),
        microbatch,
        microbatches,
    })
}

fn internal(e: MpressError) -> ServeError {
    ServeError::Internal(e.to_string())
}

/// Builds the [`Mpress`] facade for a planning-shaped request, wired to
/// the context's shared cache, arena pool and cancellation token.
fn mpress_for(
    req: &PlanRequest,
    ctx: &ApiContext,
    metrics: bool,
) -> Result<(Mpress, ResolvedJob, OptimizationSet), ServeError> {
    let resolved = resolve_job(
        &req.model,
        &req.machine,
        req.schedule.as_deref(),
        req.microbatch,
        req.microbatches,
    )?;
    let opts = names::optimizations(&req.opts)?;
    let mut builder = Mpress::builder()
        .job(resolved.job.clone())
        .planner_config(PlannerConfig::default().optimizations(opts))
        .metrics(metrics)
        .plan_cache(ctx.cache.clone())
        .arena_pool(ctx.arenas.clone());
    if let Some(token) = &ctx.cancel {
        builder = builder.cancel(token.clone());
    }
    Ok((builder.build(), resolved, opts))
}

/// A `plan` execution: the wire response plus the in-process objects
/// the CLI renders from.
#[derive(Debug)]
#[non_exhaustive]
pub struct PlanOutcome {
    /// The deterministic wire response.
    pub response: PlanResponse,
    /// The full plan (search stats included).
    pub plan: mpress::MpressPlan,
    /// The lowered job the plan applies to.
    pub lowered: mpress_pipeline::LoweredJob,
    /// The configured facade, for follow-up work (charts, re-sims).
    pub mpress: Mpress,
}

/// Executes a `plan` request.
///
/// # Errors
///
/// [`ServeError::BadRequest`] for unresolvable names or invalid jobs,
/// [`ServeError::Internal`] for planner failures.
pub fn run_plan(req: &PlanRequest, ctx: &ApiContext) -> Result<PlanOutcome, ServeError> {
    let (mpress, resolved, _) = mpress_for(req, ctx, false)?;
    let (plan, lowered) = mpress.plan().map_err(internal)?;
    let savings = plan.savings(&lowered);
    let total: f64 = savings.values().map(|b| b.as_f64()).sum();
    let savings_rows = [
        mpress_compaction::Technique::Recompute,
        mpress_compaction::Technique::GpuCpuSwap,
        mpress_compaction::Technique::D2dSwap,
    ]
    .into_iter()
    .map(|tech| {
        let bytes = savings
            .get(&tech)
            .copied()
            .unwrap_or(mpress_hw::Bytes::ZERO);
        SavingsRow {
            technique: tech.to_string(),
            bytes: bytes.as_u64(),
            share_pct: if total > 0.0 {
                100.0 * bytes.as_f64() / total
            } else {
                0.0
            },
        }
    })
    .collect();
    let response = PlanResponse {
        v: SCHEMA_VERSION,
        model: req.model.clone(),
        machine: req.machine.clone(),
        schedule: resolved.schedule.to_owned(),
        microbatch: resolved.microbatch,
        microbatches: resolved.microbatches,
        opts: req.opts.clone(),
        device_map: plan
            .device_map
            .as_slice()
            .iter()
            .map(|d| d.0 as u64)
            .collect(),
        directives: plan.instrumentation.len() as u64,
        refinement_rounds: plan.refinement_rounds as u64,
        savings: savings_rows,
    };
    Ok(PlanOutcome {
        response,
        plan,
        lowered,
        mpress,
    })
}

/// A `train` execution: the wire response plus the full report.
#[derive(Debug)]
#[non_exhaustive]
pub struct TrainOutcome {
    /// The deterministic wire response.
    pub response: TrainResponse,
    /// The full training report (telemetry included when requested).
    pub report: mpress::TrainingReport,
    /// The configured facade, for follow-up work (charts, re-sims).
    pub mpress: Mpress,
}

/// Executes a `train` request. `metrics` additionally captures
/// [`TelemetryReport`] into the returned report (CLI `--metrics`); the
/// wire response never carries it.
///
/// # Errors
///
/// [`ServeError::BadRequest`] for unresolvable names or invalid jobs,
/// [`ServeError::Internal`] for planner/simulator failures.
pub fn run_train(
    req: &PlanRequest,
    ctx: &ApiContext,
    metrics: bool,
) -> Result<TrainOutcome, ServeError> {
    let (mpress, resolved, _) = mpress_for(req, ctx, metrics)?;
    let report = mpress.train().map_err(internal)?;
    let succeeded = report.succeeded();
    let response = TrainResponse {
        v: SCHEMA_VERSION,
        model: req.model.clone(),
        machine: req.machine.clone(),
        schedule: resolved.schedule.to_owned(),
        microbatch: resolved.microbatch,
        microbatches: resolved.microbatches,
        opts: req.opts.clone(),
        succeeded,
        tflops: if succeeded { report.tflops } else { 0.0 },
        throughput: if succeeded { report.throughput } else { 0.0 },
        makespan_s: report.sim.makespan,
        peak_bytes: report.max_device_peak().as_u64(),
        d2d_traffic_bytes: report.sim.d2d_traffic.as_u64(),
        host_traffic_bytes: report.sim.host_traffic.as_u64(),
        nvme_traffic_bytes: report.sim.nvme_traffic.as_u64(),
        recompute_time_s: report.sim.recompute_time,
        oom: report.sim.oom.as_ref().map(|e| e.to_string()),
    };
    Ok(TrainOutcome {
        response,
        report,
        mpress,
    })
}

/// A `check` execution: the wire response plus the full diagnostic
/// report (for the CLI's MP0xx table).
#[derive(Debug)]
#[non_exhaustive]
pub struct CheckOutcome {
    /// The deterministic wire response.
    pub response: CheckResponse,
    /// The full static-verifier report.
    pub report: mpress_analyze::Report,
    /// Certified residency/makespan intervals for the checked plan.
    pub bounds: mpress_analyze::PlanBounds,
    /// The checked plan.
    pub plan: mpress::MpressPlan,
    /// The lowered job the plan applies to.
    pub lowered: mpress_pipeline::LoweredJob,
}

/// Executes a `check` request: plan, then static verification only.
///
/// # Errors
///
/// [`ServeError::BadRequest`] for unresolvable names or invalid jobs,
/// [`ServeError::Internal`] for planner failures. Diagnostics are *not*
/// errors at this layer — the response reports their counts.
pub fn run_check(req: &PlanRequest, ctx: &ApiContext) -> Result<CheckOutcome, ServeError> {
    let (mpress, _, _) = mpress_for(req, ctx, false)?;
    let (plan, lowered) = mpress.plan().map_err(internal)?;
    let report = mpress_analyze::check_plan(
        mpress.machine(),
        &lowered.graph,
        &plan.instrumentation,
        &plan.device_map,
    );
    let bounds = ctx.arenas.with(|arena| {
        mpress_analyze::certify_plan(
            mpress.machine(),
            &lowered.graph,
            &plan.instrumentation,
            &plan.device_map,
            arena,
        )
    });
    let response = CheckResponse {
        v: SCHEMA_VERSION,
        model: req.model.clone(),
        machine: req.machine.clone(),
        directives: plan.instrumentation.len() as u64,
        stages: lowered.graph.n_stages() as u64,
        clean: report.is_clean(),
        errors: report.error_count() as u64,
        summary: report.summary(),
        bounds_verdict: bounds.residency.verdict.as_str().to_owned(),
        makespan_lo_s: bounds.makespan_lo,
        makespan_hi_s: bounds.makespan_hi,
        residency_lo_bytes: bounds.residency.lo.iter().map(|b| b.as_u64()).collect(),
        residency_hi_bytes: bounds.residency.hi.iter().map(|b| b.as_u64()).collect(),
    };
    Ok(CheckOutcome {
        response,
        bounds,
        report,
        plan,
        lowered,
    })
}

/// A `compare` execution: the wire response plus per-system telemetry
/// (only populated when requested; analytic baselines never have any).
#[derive(Debug)]
#[non_exhaustive]
pub struct CompareOutcome {
    /// The deterministic wire response.
    pub response: CompareResponse,
    /// Telemetry per simulated system, keyed by its row label.
    pub telemetry: BTreeMap<String, TelemetryReport>,
    /// The resolved job (for front ends rendering job headers).
    pub job: PipelineJob,
}

/// Executes a `compare` request: the full Figs. 7/8 system menu on one
/// job, in fixed row order.
///
/// # Errors
///
/// [`ServeError::BadRequest`] for unresolvable names or invalid jobs,
/// [`ServeError::Internal`] for planner/simulator failures.
pub fn run_compare(
    req: &CompareRequest,
    ctx: &ApiContext,
    metrics: bool,
) -> Result<CompareOutcome, ServeError> {
    use mpress_baselines::{MegatronBaseline, ZeroBaseline, ZeroVariant};

    let resolved = resolve_job(
        &req.model,
        &req.machine,
        req.schedule.as_deref(),
        req.microbatch,
        req.microbatches,
    )?;
    let job = resolved.job;
    let mut telemetry: BTreeMap<String, TelemetryReport> = BTreeMap::new();
    let mut rows = Vec::new();

    let builder_for = |opts: OptimizationSet| {
        let mut b = Mpress::builder()
            .job(job.clone())
            .optimizations(opts)
            .metrics(metrics)
            .plan_cache(ctx.cache.clone())
            .arena_pool(ctx.arenas.clone());
        if let Some(token) = &ctx.cancel {
            b = b.cancel(token.clone());
        }
        b.build()
    };

    let plain = builder_for(OptimizationSet::none())
        .train_unmodified()
        .map_err(internal)?;
    let plain_label = format!("plain {}", job.schedule());
    rows.push(CompareRow {
        system: plain_label.clone(),
        tflops: plain.succeeded().then_some(plain.tflops),
        fits: plain.succeeded(),
        gib_per_gpu: None,
    });
    if let Some(t) = plain.metrics {
        telemetry.insert(plain_label, t);
    }

    for (label, opts) in [
        ("gpu-cpu swap", OptimizationSet::host_swap_only()),
        ("recomputation", OptimizationSet::recompute_only()),
        ("mpress (d2d only)", OptimizationSet::d2d_only()),
        ("mpress", OptimizationSet::all()),
    ] {
        let r = builder_for(opts).train().map_err(internal)?;
        rows.push(CompareRow {
            system: label.to_owned(),
            tflops: r.succeeded().then_some(r.tflops),
            fits: r.succeeded(),
            gib_per_gpu: None,
        });
        if let Some(t) = r.metrics {
            telemetry.insert(label.to_owned(), t);
        }
    }

    for variant in [ZeroVariant::Offload, ZeroVariant::Infinity] {
        let r = ZeroBaseline::new(job.machine().clone(), job.model().clone(), variant)
            .microbatch_size(job.microbatch_size())
            .accumulation((job.microbatches() / job.machine().gpu_count()).max(1))
            .report();
        rows.push(CompareRow {
            system: variant.to_string().to_lowercase(),
            tflops: r.fits.then_some(r.tflops),
            fits: r.fits,
            gib_per_gpu: None,
        });
    }
    let mega = MegatronBaseline::new(job.machine().clone(), job.model().clone())
        .microbatch_size(job.microbatch_size())
        .microbatches(job.microbatches())
        .report();
    rows.push(CompareRow {
        system: "megatron tp-8".to_owned(),
        tflops: mega.fits.then_some(mega.tflops),
        fits: mega.fits,
        gib_per_gpu: Some(mega.gpu_bytes.as_gib_f64()),
    });

    let response = CompareResponse {
        v: SCHEMA_VERSION,
        model: req.model.clone(),
        machine: req.machine.clone(),
        schedule: resolved.schedule.to_owned(),
        microbatch: resolved.microbatch,
        microbatches: resolved.microbatches,
        rows,
    };
    Ok(CompareOutcome {
        response,
        telemetry,
        job,
    })
}

/// Executes one decoded request end to end, wire type to wire type.
///
/// `Stats` and `Shutdown` are daemon-level concerns (they read server
/// state, not planner state) and are rejected here — the daemon handles
/// them before reaching this function.
///
/// # Errors
///
/// Any [`ServeError`] from the underlying `run_*` entry point.
pub fn execute(req: &Request, ctx: &ApiContext) -> Result<Response, ServeError> {
    match req {
        Request::Plan(r) => Ok(Response::Plan(run_plan(r, ctx)?.response)),
        Request::Train(r) => Ok(Response::Train(run_train(r, ctx, false)?.response)),
        Request::Check(r) => Ok(Response::Check(run_check(r, ctx)?.response)),
        Request::Compare(r) => Ok(Response::Compare(run_compare(r, ctx, false)?.response)),
        Request::Stats | Request::Shutdown => Err(ServeError::BadRequest(format!(
            "`{}` is handled by the server, not the executor",
            req.kind()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_response_is_reproducible_and_cache_backed() {
        let ctx = ApiContext::new();
        let req = PlanRequest::new("bert-0.64b").microbatches(8);
        let first = run_plan(&req, &ctx).unwrap().response;
        let second = run_plan(&req, &ctx).unwrap().response;
        assert_eq!(first, second);
        assert!(ctx.cache.stats().plan_hits >= 1, "second run should hit");
        assert_eq!(first.schedule, "pipedream");
        assert_eq!(first.device_map.len(), 8);
    }

    #[test]
    fn bad_names_become_bad_requests() {
        let ctx = ApiContext::new();
        let err = run_plan(&PlanRequest::new("gpt-99b"), &ctx).unwrap_err();
        assert_eq!(err.code(), "bad_request");
        let err = run_plan(&PlanRequest::new("bert-0.64b").machine("dgx9"), &ctx).unwrap_err();
        assert_eq!(err.code(), "bad_request");
    }

    #[test]
    fn check_reports_clean_plan() {
        let ctx = ApiContext::new();
        let req = PlanRequest::new("bert-0.64b").microbatches(8);
        let outcome = run_check(&req, &ctx).unwrap();
        assert!(outcome.response.clean, "{}", outcome.response.summary);
        assert_eq!(outcome.response.stages, 8);
        // The bounds pass rode along: intervals are populated per GPU
        // and ordered, and the verdict echoes the typed enum.
        assert_eq!(outcome.response.residency_lo_bytes.len(), 8);
        assert_eq!(outcome.response.residency_hi_bytes.len(), 8);
        for (lo, hi) in outcome
            .response
            .residency_lo_bytes
            .iter()
            .zip(&outcome.response.residency_hi_bytes)
        {
            assert!(lo <= hi, "residency interval inverted: {lo} > {hi}");
        }
        assert!(outcome.response.makespan_lo_s > 0.0);
        assert!(outcome.response.makespan_hi_s >= outcome.response.makespan_lo_s);
        assert_eq!(
            outcome.response.bounds_verdict,
            outcome.bounds.residency.verdict.as_str()
        );
        assert_ne!(outcome.response.bounds_verdict, "certified-oom");
    }

    #[test]
    fn executor_rejects_daemon_kinds() {
        let ctx = ApiContext::new();
        assert_eq!(
            execute(&Request::Stats, &ctx).unwrap_err().code(),
            "bad_request"
        );
        assert_eq!(
            execute(&Request::Shutdown, &ctx).unwrap_err().code(),
            "bad_request"
        );
    }
}

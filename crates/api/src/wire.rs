//! `v1` wire types: requests, responses, errors, and the
//! newline-delimited JSON envelope codec.
//!
//! # Envelope
//!
//! Each line is one JSON document. Requests:
//!
//! ```json
//! {"v":1,"id":7,"kind":"plan","body":{"model":"bert-1.67b","machine":"dgx1"}}
//! ```
//!
//! Responses echo `id` and carry either a typed `body` (`"ok":true`) or
//! a structured `error` (`"ok":false`):
//!
//! ```json
//! {"v":1,"id":7,"ok":true,"kind":"plan","body":{...}}
//! {"v":1,"id":7,"ok":false,"error":{"code":"overloaded","message":"..."}}
//! ```
//!
//! # Decoding
//!
//! The vendored serde stack only deserializes into a dynamic
//! [`Value`](serde_json::Value) tree, so request decoding walks the tree
//! by hand. That is deliberate and load-bearing for compatibility:
//! unknown fields are *naturally* tolerated (the decoder only looks at
//! the keys it knows), which is exactly the `v1`-may-gain-fields policy
//! documented at the crate root. Wrong *major* versions are rejected
//! with [`ServeError::UnsupportedVersion`].

use serde::Serialize;
use serde_json::Value;

/// The wire schema major version this build speaks.
pub const SCHEMA_VERSION: u64 = 1;

/// A planning-shaped request: everything needed to build a
/// [`PipelineJob`](mpress_pipeline::PipelineJob) plus the allowed
/// technique set. Shared verbatim by `plan`, `train` and `check`.
///
/// `#[non_exhaustive]` with builder-style setters: construct with
/// [`PlanRequest::new`] and chain overrides, so `v1` can gain optional
/// fields without breaking callers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
#[non_exhaustive]
pub struct PlanRequest {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub v: u64,
    /// Model name (see [`names::model_catalog`](crate::names::model_catalog)).
    pub model: String,
    /// Machine name (`dgx1`, `dgx2`, `commodity`).
    pub machine: String,
    /// Schedule name; `None` applies the paper's per-family default.
    pub schedule: Option<String>,
    /// Samples per microbatch; `None` applies the paper's default.
    pub microbatch: Option<u64>,
    /// Microbatches per training window.
    pub microbatches: u64,
    /// Optimization-set name (`all`, `recompute`, `hostswap`, `d2d`,
    /// `none`).
    pub opts: String,
}

impl PlanRequest {
    /// A request for `model` with every other field at its default.
    pub fn new(model: impl Into<String>) -> Self {
        PlanRequest {
            v: SCHEMA_VERSION,
            model: model.into(),
            machine: "dgx1".to_owned(),
            schedule: None,
            microbatch: None,
            microbatches: 16,
            opts: "all".to_owned(),
        }
    }

    /// Sets the machine name.
    pub fn machine(mut self, machine: impl Into<String>) -> Self {
        self.machine = machine.into();
        self
    }

    /// Sets the schedule name (default: paper pairing for the family).
    pub fn schedule(mut self, schedule: impl Into<String>) -> Self {
        self.schedule = Some(schedule.into());
        self
    }

    /// Sets the microbatch size (default: paper value for the family).
    pub fn microbatch(mut self, microbatch: u64) -> Self {
        self.microbatch = Some(microbatch);
        self
    }

    /// Sets the window length in microbatches.
    pub fn microbatches(mut self, microbatches: u64) -> Self {
        self.microbatches = microbatches;
        self
    }

    /// Sets the optimization-set name.
    pub fn opts(mut self, opts: impl Into<String>) -> Self {
        self.opts = opts.into();
        self
    }

    /// Decodes a request body, ignoring unknown fields.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on missing/mistyped known fields,
    /// [`ServeError::UnsupportedVersion`] on a wrong major version.
    pub fn from_value(body: &Value) -> Result<Self, ServeError> {
        check_body_version(body)?;
        let mut req = PlanRequest::new(require_str(body, "model")?);
        if let Some(machine) = optional_str(body, "machine")? {
            req.machine = machine;
        }
        req.schedule = optional_str(body, "schedule")?;
        req.microbatch = optional_u64(body, "microbatch")?;
        if let Some(n) = optional_u64(body, "microbatches")? {
            req.microbatches = n;
        }
        if let Some(opts) = optional_str(body, "opts")? {
            req.opts = opts;
        }
        Ok(req)
    }
}

/// A `compare` request: one (model, machine) cell of the paper's
/// Figs. 7/8 evaluation. Like [`PlanRequest`] without an
/// optimization-set choice (compare always runs the full system menu).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
#[non_exhaustive]
pub struct CompareRequest {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub v: u64,
    /// Model name.
    pub model: String,
    /// Machine name.
    pub machine: String,
    /// Schedule name; `None` applies the paper's per-family default.
    pub schedule: Option<String>,
    /// Samples per microbatch; `None` applies the paper's default.
    pub microbatch: Option<u64>,
    /// Microbatches per training window.
    pub microbatches: u64,
}

impl CompareRequest {
    /// A request for `model` with every other field at its default.
    pub fn new(model: impl Into<String>) -> Self {
        CompareRequest {
            v: SCHEMA_VERSION,
            model: model.into(),
            machine: "dgx1".to_owned(),
            schedule: None,
            microbatch: None,
            microbatches: 16,
        }
    }

    /// Sets the machine name.
    pub fn machine(mut self, machine: impl Into<String>) -> Self {
        self.machine = machine.into();
        self
    }

    /// Sets the schedule name (default: paper pairing for the family).
    pub fn schedule(mut self, schedule: impl Into<String>) -> Self {
        self.schedule = Some(schedule.into());
        self
    }

    /// Sets the microbatch size (default: paper value for the family).
    pub fn microbatch(mut self, microbatch: u64) -> Self {
        self.microbatch = Some(microbatch);
        self
    }

    /// Sets the window length in microbatches.
    pub fn microbatches(mut self, microbatches: u64) -> Self {
        self.microbatches = microbatches;
        self
    }

    /// Decodes a request body, ignoring unknown fields.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on missing/mistyped known fields,
    /// [`ServeError::UnsupportedVersion`] on a wrong major version.
    pub fn from_value(body: &Value) -> Result<Self, ServeError> {
        check_body_version(body)?;
        let mut req = CompareRequest::new(require_str(body, "model")?);
        if let Some(machine) = optional_str(body, "machine")? {
            req.machine = machine;
        }
        req.schedule = optional_str(body, "schedule")?;
        req.microbatch = optional_u64(body, "microbatch")?;
        if let Some(n) = optional_u64(body, "microbatches")? {
            req.microbatches = n;
        }
        Ok(req)
    }
}

/// One decoded request, ready for [`execute`](crate::exec::execute).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Request {
    /// Run the planner, return the plan summary.
    Plan(PlanRequest),
    /// Plan + simulate a training window, return throughput.
    Train(PlanRequest),
    /// Plan + static verification (`mpress-analyze`), no simulation.
    Check(PlanRequest),
    /// The full Figs. 7/8 system menu on one job.
    Compare(CompareRequest),
    /// Service counters (handled by the daemon, not [`execute`]).
    Stats,
    /// Graceful daemon shutdown (handled by the daemon).
    Shutdown,
}

impl Request {
    /// The envelope `kind` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Plan(_) => "plan",
            Request::Train(_) => "train",
            Request::Check(_) => "check",
            Request::Compare(_) => "compare",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }

    /// The envelope `body` document (`None` for body-less kinds).
    pub fn body_value(&self) -> Option<Value> {
        match self {
            Request::Plan(r) | Request::Train(r) | Request::Check(r) => Some(r.to_json()),
            Request::Compare(r) => Some(r.to_json()),
            Request::Stats | Request::Shutdown => None,
        }
    }
}

/// One technique's contribution to a plan (Table-IV row).
#[derive(Debug, Clone, PartialEq, Serialize)]
#[non_exhaustive]
pub struct SavingsRow {
    /// Technique name (`recompute`, `gpu-cpu swap`, `d2d swap`).
    pub technique: String,
    /// Bytes saved at the peak.
    pub bytes: u64,
    /// Share of all savings, in percent.
    pub share_pct: f64,
}

/// The `plan` response: the chosen plan's stable, deterministic summary.
///
/// Deliberately excludes volatile search counters (worker peaks, cache
/// hit counts): those depend on process history and pool width, and the
/// contract regression-tested by the suite is *byte identity* between
/// CLI and daemon for identical requests. Search telemetry stays
/// available locally (`--metrics`) and service-side (`stats`).
#[derive(Debug, Clone, PartialEq, Serialize)]
#[non_exhaustive]
pub struct PlanResponse {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub v: u64,
    /// Echoed model name.
    pub model: String,
    /// Echoed machine name.
    pub machine: String,
    /// Resolved schedule (defaults applied).
    pub schedule: String,
    /// Resolved microbatch size (defaults applied).
    pub microbatch: u64,
    /// Window length in microbatches.
    pub microbatches: u64,
    /// Echoed optimization-set name.
    pub opts: String,
    /// Stage→device assignment: `device_map[stage]` is the GPU index.
    pub device_map: Vec<u64>,
    /// Number of per-tensor directives in the plan.
    pub directives: u64,
    /// Emulator-verified refinement rounds executed.
    pub refinement_rounds: u64,
    /// Technique breakdown (Table IV), in fixed technique order.
    pub savings: Vec<SavingsRow>,
}

/// The `train` response: one simulated training window.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[non_exhaustive]
pub struct TrainResponse {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub v: u64,
    /// Echoed model name.
    pub model: String,
    /// Echoed machine name.
    pub machine: String,
    /// Resolved schedule (defaults applied).
    pub schedule: String,
    /// Resolved microbatch size (defaults applied).
    pub microbatch: u64,
    /// Window length in microbatches.
    pub microbatches: u64,
    /// Echoed optimization-set name.
    pub opts: String,
    /// Whether training fit in memory.
    pub succeeded: bool,
    /// Achieved model TFLOPS (0 on OOM).
    pub tflops: f64,
    /// Samples per second (0 on OOM).
    pub throughput: f64,
    /// Window makespan in seconds.
    pub makespan_s: f64,
    /// Largest per-device memory peak, bytes.
    pub peak_bytes: u64,
    /// D2D (NVLink) swap traffic, bytes.
    pub d2d_traffic_bytes: u64,
    /// GPU-CPU (PCIe) swap traffic, bytes.
    pub host_traffic_bytes: u64,
    /// NVMe traffic, bytes.
    pub nvme_traffic_bytes: u64,
    /// Recomputation time, seconds.
    pub recompute_time_s: f64,
    /// The OOM event description when the run overflowed.
    pub oom: Option<String>,
}

/// The `check` response: static plan verification summary.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[non_exhaustive]
pub struct CheckResponse {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub v: u64,
    /// Echoed model name.
    pub model: String,
    /// Echoed machine name.
    pub machine: String,
    /// Number of per-tensor directives checked.
    pub directives: u64,
    /// Pipeline stages in the lowered graph.
    pub stages: u64,
    /// Whether the verifier found no diagnostics at all.
    pub clean: bool,
    /// Error-severity diagnostics (non-zero fails a CLI `check`).
    pub errors: u64,
    /// One-line human summary of the diagnostic counts.
    pub summary: String,
    /// Certified capacity verdict from the bounds pass
    /// (`certified-fit`, `certified-oom` or `unknown`).
    pub bounds_verdict: String,
    /// Certified makespan lower bound, seconds (holds for every non-OOM
    /// run).
    pub makespan_lo_s: f64,
    /// Certified makespan upper bound, seconds (holds for every run).
    pub makespan_hi_s: f64,
    /// Certified per-device residency lower bounds, bytes, indexed by
    /// GPU.
    pub residency_lo_bytes: Vec<u64>,
    /// Certified per-device residency upper bounds, bytes, indexed by
    /// GPU.
    pub residency_hi_bytes: Vec<u64>,
}

/// One system row of a `compare` response.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[non_exhaustive]
pub struct CompareRow {
    /// System label as printed by the CLI (`mpress`, `zero-offload`, …).
    pub system: String,
    /// Achieved TFLOPS; `None` means the system went out of memory.
    pub tflops: Option<f64>,
    /// Whether the system fit in device memory.
    pub fits: bool,
    /// Balanced per-GPU residency (only reported by analytic baselines
    /// that compute it, e.g. Megatron).
    pub gib_per_gpu: Option<f64>,
}

/// The `compare` response: every Figs. 7/8 system on one job.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[non_exhaustive]
pub struct CompareResponse {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub v: u64,
    /// Echoed model name.
    pub model: String,
    /// Echoed machine name.
    pub machine: String,
    /// Resolved schedule (defaults applied).
    pub schedule: String,
    /// Resolved microbatch size (defaults applied).
    pub microbatch: u64,
    /// Window length in microbatches.
    pub microbatches: u64,
    /// System rows in fixed menu order.
    pub rows: Vec<CompareRow>,
}

/// One decoded response body.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Response {
    /// A `plan` result.
    Plan(PlanResponse),
    /// A `train` result.
    Train(TrainResponse),
    /// A `check` result.
    Check(CheckResponse),
    /// A `compare` result.
    Compare(CompareResponse),
    /// A `stats` result: the service's metrics document.
    Stats(Value),
    /// Acknowledges a `shutdown` request.
    Shutdown,
}

impl Response {
    /// The envelope `kind` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Response::Plan(_) => "plan",
            Response::Train(_) => "train",
            Response::Check(_) => "check",
            Response::Compare(_) => "compare",
            Response::Stats(_) => "stats",
            Response::Shutdown => "shutdown",
        }
    }

    /// The envelope `body` document.
    pub fn body_value(&self) -> Value {
        match self {
            Response::Plan(r) => r.to_json(),
            Response::Train(r) => r.to_json(),
            Response::Check(r) => r.to_json(),
            Response::Compare(r) => r.to_json(),
            Response::Stats(v) => v.clone(),
            Response::Shutdown => Value::Object(Vec::new()),
        }
    }
}

/// Service-level failures, each with a stable wire `code`.
///
/// Marked `#[non_exhaustive]`: new failure kinds may be added within
/// `v1` (clients must treat unknown codes as generic failures).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission control rejected the request: the bounded queue was
    /// full. The payload is the queue capacity.
    Overloaded {
        /// Queue capacity at rejection time.
        queue: usize,
    },
    /// The request was structurally valid JSON but semantically wrong
    /// (unknown model name, missing field, mistyped value, …).
    BadRequest(String),
    /// The request declared a schema major version this server does not
    /// speak.
    UnsupportedVersion {
        /// The version the request declared.
        got: u64,
    },
    /// The envelope `kind` is not one this server knows.
    UnknownKind(String),
    /// The line was not a parseable envelope at all.
    Protocol(String),
    /// Execution failed server-side (planner/simulator error, or the
    /// request was cancelled by shutdown).
    Internal(String),
    /// Client-side transport failure (never sent on the wire).
    Io(String),
}

impl ServeError {
    /// The stable wire code.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::UnsupportedVersion { .. } => "unsupported_version",
            ServeError::UnknownKind(_) => "unknown_kind",
            ServeError::Protocol(_) => "protocol",
            ServeError::Internal(_) => "internal",
            ServeError::Io(_) => "io",
        }
    }

    /// Rebuilds the error from its wire `code`/`message` pair.
    fn from_wire(code: &str, message: &str) -> Self {
        match code {
            "overloaded" => ServeError::Overloaded { queue: 0 },
            "bad_request" => ServeError::BadRequest(message.to_owned()),
            "unsupported_version" => ServeError::UnsupportedVersion { got: 0 },
            "unknown_kind" => ServeError::UnknownKind(message.to_owned()),
            "protocol" => ServeError::Protocol(message.to_owned()),
            // Unknown codes (a newer server) degrade to Internal.
            _ => ServeError::Internal(message.to_owned()),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queue } => {
                write!(f, "server overloaded: admission queue full ({queue} slots)")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::UnsupportedVersion { got } => write!(
                f,
                "unsupported schema version {got}: this server speaks v{SCHEMA_VERSION}"
            ),
            ServeError::UnknownKind(kind) => write!(f, "unknown request kind `{kind}`"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
            ServeError::Io(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

// ---------------------------------------------------------------------
// Envelope codec
// ---------------------------------------------------------------------

/// Serializes a JSON tree, mapping the (only) failure mode — non-finite
/// floats — to a protocol error instead of panicking.
fn to_line(value: &Value) -> String {
    match serde_json::to_string(value) {
        Ok(line) => line,
        Err(e) => format!(
            "{{\"v\":{SCHEMA_VERSION},\"id\":0,\"ok\":false,\"error\":{{\"code\":\"internal\",\"message\":\"encode failure: {e}\"}}}}"
        ),
    }
}

/// Encodes one request envelope line (no trailing newline).
pub fn encode_request_line(id: u64, req: &Request) -> String {
    let mut fields = vec![
        ("v".to_owned(), Value::U64(SCHEMA_VERSION)),
        ("id".to_owned(), Value::U64(id)),
        ("kind".to_owned(), Value::Str(req.kind().to_owned())),
    ];
    if let Some(body) = req.body_value() {
        fields.push(("body".to_owned(), body));
    }
    to_line(&Value::Object(fields))
}

/// Decodes one request envelope line. The `id` is returned even when
/// decoding fails (0 when unrecoverable) so servers can echo it.
pub fn decode_request_line(line: &str) -> (u64, Result<Request, ServeError>) {
    let doc = match serde_json::from_str(line) {
        Ok(doc) => doc,
        Err(e) => {
            return (
                0,
                Err(ServeError::Protocol(format!("unparseable line: {e}"))),
            )
        }
    };
    let id = doc.get("id").and_then(Value::as_u64).unwrap_or(0);
    (id, decode_request(&doc))
}

fn decode_request(doc: &Value) -> Result<Request, ServeError> {
    let Some(v) = doc.get("v").and_then(Value::as_u64) else {
        return Err(ServeError::BadRequest(
            "missing schema version field `v`".to_owned(),
        ));
    };
    if v != SCHEMA_VERSION {
        return Err(ServeError::UnsupportedVersion { got: v });
    }
    let Some(kind) = doc.get("kind").and_then(Value::as_str) else {
        return Err(ServeError::BadRequest("missing `kind` field".to_owned()));
    };
    let empty = Value::Object(Vec::new());
    let body = doc.get("body").unwrap_or(&empty);
    match kind {
        "plan" => Ok(Request::Plan(PlanRequest::from_value(body)?)),
        "train" => Ok(Request::Train(PlanRequest::from_value(body)?)),
        "check" => Ok(Request::Check(PlanRequest::from_value(body)?)),
        "compare" => Ok(Request::Compare(CompareRequest::from_value(body)?)),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ServeError::UnknownKind(other.to_owned())),
    }
}

/// Encodes one response envelope line (no trailing newline).
pub fn encode_response_line(id: u64, result: &Result<Response, ServeError>) -> String {
    let fields = match result {
        Ok(resp) => vec![
            ("v".to_owned(), Value::U64(SCHEMA_VERSION)),
            ("id".to_owned(), Value::U64(id)),
            ("ok".to_owned(), Value::Bool(true)),
            ("kind".to_owned(), Value::Str(resp.kind().to_owned())),
            ("body".to_owned(), resp.body_value()),
        ],
        Err(e) => vec![
            ("v".to_owned(), Value::U64(SCHEMA_VERSION)),
            ("id".to_owned(), Value::U64(id)),
            ("ok".to_owned(), Value::Bool(false)),
            (
                "error".to_owned(),
                Value::Object(vec![
                    ("code".to_owned(), Value::Str(e.code().to_owned())),
                    ("message".to_owned(), Value::Str(e.to_string())),
                ]),
            ),
        ],
    };
    to_line(&Value::Object(fields))
}

/// One decoded response envelope: the echoed `id` plus either the
/// response `kind`/`body` or the decoded error.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct DecodedResponse {
    /// The request id the server echoed (0 for unattributable errors).
    pub id: u64,
    /// `kind` and `body` on success, the decoded [`ServeError`] on
    /// failure.
    pub result: Result<(String, Value), ServeError>,
}

/// Decodes one response envelope line (client side).
///
/// # Errors
///
/// [`ServeError::Protocol`] when the line is not a response envelope.
pub fn decode_response_line(line: &str) -> Result<DecodedResponse, ServeError> {
    let doc = serde_json::from_str(line)
        .map_err(|e| ServeError::Protocol(format!("unparseable response: {e}")))?;
    let id = doc.get("id").and_then(Value::as_u64).unwrap_or(0);
    let Some(ok) = doc.get("ok").and_then(Value::as_bool) else {
        return Err(ServeError::Protocol("response missing `ok`".to_owned()));
    };
    if ok {
        let kind = doc
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::Protocol("ok response missing `kind`".to_owned()))?
            .to_owned();
        let body = doc
            .get("body")
            .cloned()
            .ok_or_else(|| ServeError::Protocol("ok response missing `body`".to_owned()))?;
        Ok(DecodedResponse {
            id,
            result: Ok((kind, body)),
        })
    } else {
        let code = doc
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str)
            .unwrap_or("internal");
        let message = doc
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Value::as_str)
            .unwrap_or("");
        Ok(DecodedResponse {
            id,
            result: Err(ServeError::from_wire(code, message)),
        })
    }
}

// ---------------------------------------------------------------------
// Tree-walking decode helpers
// ---------------------------------------------------------------------

fn check_body_version(body: &Value) -> Result<(), ServeError> {
    match body.get("v") {
        None | Some(Value::Null) => Ok(()),
        Some(value) => match value.as_u64() {
            Some(v) if v == SCHEMA_VERSION => Ok(()),
            Some(got) => Err(ServeError::UnsupportedVersion { got }),
            None => Err(ServeError::BadRequest(
                "field `v` must be an integer".to_owned(),
            )),
        },
    }
}

fn require_str(body: &Value, key: &str) -> Result<String, ServeError> {
    optional_str(body, key)?
        .ok_or_else(|| ServeError::BadRequest(format!("missing required field `{key}`")))
}

fn optional_str(body: &Value, key: &str) -> Result<Option<String>, ServeError> {
    match body.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(value) => value
            .as_str()
            .map(|s| Some(s.to_owned()))
            .ok_or_else(|| ServeError::BadRequest(format!("field `{key}` must be a string"))),
    }
}

fn optional_u64(body: &Value, key: &str) -> Result<Option<u64>, ServeError> {
    match body.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(value) => value.as_u64().map(Some).ok_or_else(|| {
            ServeError::BadRequest(format!("field `{key}` must be a non-negative integer"))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_the_envelope() {
        let req = Request::Plan(
            PlanRequest::new("bert-1.67b")
                .machine("dgx2")
                .schedule("pipedream")
                .microbatch(4)
                .microbatches(8)
                .opts("recompute"),
        );
        let line = encode_request_line(7, &req);
        let (id, decoded) = decode_request_line(&line);
        assert_eq!(id, 7);
        assert_eq!(decoded.unwrap(), req);
    }

    #[test]
    fn unknown_fields_are_tolerated() {
        let line = r#"{"v":1,"id":3,"kind":"plan","future_flag":true,
                       "body":{"model":"bert-0.64b","carbon_budget":12}}"#
            .replace('\n', " ");
        let (id, decoded) = decode_request_line(&line);
        assert_eq!(id, 3);
        let req = decoded.unwrap();
        assert_eq!(req, Request::Plan(PlanRequest::new("bert-0.64b")));
    }

    #[test]
    fn wrong_major_version_is_rejected() {
        let line = r#"{"v":2,"id":9,"kind":"plan","body":{"model":"bert-0.64b"}}"#;
        let (id, decoded) = decode_request_line(line);
        assert_eq!(id, 9);
        assert!(matches!(
            decoded.unwrap_err(),
            ServeError::UnsupportedVersion { got: 2 }
        ));
        // A wrong version inside the body is rejected the same way.
        let body = serde_json::from_str(r#"{"v":3,"model":"bert-0.64b"}"#).unwrap();
        assert!(matches!(
            PlanRequest::from_value(&body).unwrap_err(),
            ServeError::UnsupportedVersion { got: 3 }
        ));
    }

    #[test]
    fn missing_version_or_kind_is_a_bad_request() {
        let (_, no_v) = decode_request_line(r#"{"id":1,"kind":"plan"}"#);
        assert!(matches!(no_v.unwrap_err(), ServeError::BadRequest(_)));
        let (_, no_kind) = decode_request_line(r#"{"v":1,"id":1}"#);
        assert!(matches!(no_kind.unwrap_err(), ServeError::BadRequest(_)));
    }

    #[test]
    fn unknown_kind_and_garbage_have_distinct_codes() {
        let (_, unknown) = decode_request_line(r#"{"v":1,"kind":"frobnicate"}"#);
        assert_eq!(unknown.unwrap_err().code(), "unknown_kind");
        let (_, garbage) = decode_request_line("not json at all");
        assert_eq!(garbage.unwrap_err().code(), "protocol");
    }

    #[test]
    fn error_responses_roundtrip_codes() {
        for err in [
            ServeError::Overloaded { queue: 4 },
            ServeError::BadRequest("nope".to_owned()),
            ServeError::UnsupportedVersion { got: 9 },
            ServeError::UnknownKind("x".to_owned()),
            ServeError::Internal("boom".to_owned()),
        ] {
            let line = encode_response_line(11, &Err(err.clone()));
            let decoded = decode_response_line(&line).unwrap();
            assert_eq!(decoded.id, 11);
            assert_eq!(decoded.result.unwrap_err().code(), err.code());
        }
    }

    #[test]
    fn ok_response_body_is_the_struct_document() {
        let resp = Response::Check(CheckResponse {
            v: SCHEMA_VERSION,
            model: "bert-0.64b".to_owned(),
            machine: "dgx1".to_owned(),
            directives: 3,
            stages: 8,
            clean: true,
            errors: 0,
            summary: "clean".to_owned(),
            bounds_verdict: "certified-fit".to_owned(),
            makespan_lo_s: 1.5,
            makespan_hi_s: 4.0,
            residency_lo_bytes: vec![1024, 2048],
            residency_hi_bytes: vec![4096, 8192],
        });
        let line = encode_response_line(5, &Ok(resp.clone()));
        let decoded = decode_response_line(&line).unwrap();
        let (kind, body) = decoded.result.unwrap();
        assert_eq!(kind, "check");
        assert_eq!(
            serde_json::to_string(&body).unwrap(),
            serde_json::to_string(&resp.body_value()).unwrap()
        );
    }

    #[test]
    fn stats_and_shutdown_are_bodyless() {
        let line = encode_request_line(1, &Request::Stats);
        assert!(!line.contains("body"), "{line}");
        let (_, decoded) = decode_request_line(&line);
        assert_eq!(decoded.unwrap(), Request::Stats);
    }
}

//! Megatron-LM-style intra-operator (tensor-parallel) baseline.
//!
//! The paper's §I/§II motivation: intra-operator parallelism balances
//! memory perfectly (every GPU holds `1/t` of each weight matrix) but pays
//! **per-layer collective communication on the critical path** — two
//! all-reduces of the full activation in each layer's forward and two more
//! in its backward. Inter-operator parallelism moves only the boundary
//! activation once per stage transition, orders of magnitude less traffic,
//! which is why MPress builds on pipelines and then repairs their memory
//! imbalance instead.
//!
//! Like the ZeRO family in this crate, the model is analytic: closed-form
//! compute, all-reduce, memory and capacity terms, calibrated against the
//! same hardware constants the simulator uses (DESIGN.md §6).
//!
//! # Example
//!
//! ```
//! use mpress_baselines::MegatronBaseline;
//! use mpress_hw::Machine;
//! use mpress_model::zoo;
//!
//! let dgx = MegatronBaseline::new(Machine::dgx1(), zoo::gpt_10_3b()).report();
//! let commodity = MegatronBaseline::new(Machine::commodity(), zoo::gpt_10_3b()).report();
//! assert!(dgx.fits && commodity.fits); // memory is balanced either way...
//! assert!(commodity.tflops < 0.5 * dgx.tflops); // ...but PCIe collectives are ruinous
//! ```

use mpress_hw::{Bytes, Machine, Secs, NVLINK2_LANE_BW};
use mpress_model::{flops, PrecisionPolicy, TransformerConfig};
use serde::{Deserialize, Serialize};

/// Tunable constants of the intra-operator model, exposed for sensitivity
/// studies. Defaults are documented in DESIGN.md §6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MegatronModel {
    /// Fraction of all-reduce time hidden behind compute. Megatron's TP
    /// collectives sit on the critical path between GEMMs, so very little
    /// hides.
    pub overlap: f64,
    /// GEMM efficiency penalty of splitting every matrix `1/t` at small
    /// microbatches (tile-quantization losses), multiplied onto the GPU's
    /// achievable FLOPS.
    pub gemm_efficiency: f64,
    /// Utilization of the theoretical ring bandwidth an all-reduce
    /// achieves (protocol overhead, lane scheduling).
    pub link_utilization: f64,
}

impl Default for MegatronModel {
    fn default() -> Self {
        MegatronModel {
            overlap: 0.1,
            gemm_efficiency: 0.85,
            link_utilization: 0.85,
        }
    }
}

/// The outcome of one modeled tensor-parallel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MegatronReport {
    /// Whether the (perfectly balanced) per-GPU share fits.
    pub fits: bool,
    /// Aggregate achieved model TFLOPS (the Fig. 7/8 metric); zero if the
    /// configuration does not fit.
    pub tflops: f64,
    /// Per-GPU memory demand — identical on every GPU by construction.
    pub gpu_bytes: Bytes,
    /// Collective traffic one GPU moves per microbatch.
    pub comm_bytes_per_microbatch: Bytes,
    /// Exposed (non-overlapped) collective time per microbatch.
    pub exposed_comm_per_microbatch: Secs,
    /// Wall time of the whole training window.
    pub window_time: Secs,
}

/// An analytic Megatron-LM tensor-parallel training-run model.
///
/// Tensor parallelism spans all GPUs of the machine (`t = gpu_count`); the
/// microbatches of the window run back-to-back with no pipelining, exactly
/// one microbatch's activations resident at a time.
#[derive(Debug, Clone)]
pub struct MegatronBaseline {
    machine: Machine,
    model: TransformerConfig,
    policy: PrecisionPolicy,
    microbatch_size: usize,
    microbatches: usize,
    constants: MegatronModel,
}

impl MegatronBaseline {
    /// Creates a baseline with the paper's GPT defaults (mixed precision,
    /// microbatch 2, a 16-microbatch window).
    pub fn new(machine: Machine, model: TransformerConfig) -> Self {
        MegatronBaseline {
            machine,
            model,
            policy: PrecisionPolicy::mixed(),
            microbatch_size: 2,
            microbatches: 16,
            constants: MegatronModel::default(),
        }
    }

    /// Sets samples per microbatch.
    ///
    /// # Panics
    ///
    /// Panics if `b` is zero.
    pub fn microbatch_size(mut self, b: usize) -> Self {
        assert!(b > 0, "microbatch size must be positive");
        self.microbatch_size = b;
        self
    }

    /// Sets microbatches per training window.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn microbatches(mut self, m: usize) -> Self {
        assert!(m > 0, "window must contain at least one microbatch");
        self.microbatches = m;
        self
    }

    /// Sets the precision policy.
    pub fn precision(mut self, policy: PrecisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the model constants.
    pub fn constants(mut self, constants: MegatronModel) -> Self {
        self.constants = constants;
        self
    }

    fn t(&self) -> usize {
        self.machine.gpu_count()
    }

    /// Effective per-GPU ring bandwidth for collectives: over NVLink,
    /// half the injection lanes carry each ring direction; without NVLink
    /// the rings traverse the shared PCIe root complex at half the
    /// point-to-point rate.
    pub fn collective_bandwidth(&self) -> f64 {
        let topo = self.machine.topology();
        let lanes = topo
            .devices()
            .map(|d| topo.total_lanes(d))
            .min()
            .unwrap_or(0);
        let raw = if lanes > 0 {
            f64::from(lanes) * NVLINK2_LANE_BW * 0.5
        } else {
            self.machine.pcie().peak() * 0.5
        };
        raw * self.constants.link_utilization
    }

    /// Ring all-reduce wall time for a buffer of `v` bytes replicated on
    /// every GPU: each GPU moves `2 (t-1)/t * v` bytes.
    pub fn allreduce_time(&self, v: Bytes) -> Secs {
        let t = self.t() as f64;
        2.0 * (t - 1.0) / t * v.as_u64() as f64 / self.collective_bandwidth()
    }

    /// All-reduces one microbatch performs: two per layer forward, two per
    /// layer backward (Megatron's `f`/`g` conjugate operators), plus one
    /// each way for the vocab-parallel embedding/head.
    pub fn allreduces_per_microbatch(&self) -> usize {
        4 * self.model.num_layers() + 2
    }

    /// The payload of each TP all-reduce: the full `b*s*h` activation.
    pub fn allreduce_bytes(&self) -> Bytes {
        self.model
            .boundary_activation_bytes(self.microbatch_size, &self.policy)
    }

    /// Collective traffic one GPU moves per microbatch.
    pub fn comm_bytes_per_microbatch(&self) -> Bytes {
        let t = self.t() as f64;
        let per = 2.0 * (t - 1.0) / t * self.allreduce_bytes().as_u64() as f64;
        Bytes((per * self.allreduces_per_microbatch() as f64).round() as u64)
    }

    /// Compute time of one microbatch on one GPU (the model's FLOPs split
    /// `1/t`, discounted by the split-GEMM efficiency).
    pub fn compute_per_microbatch(&self) -> Secs {
        let f = flops::model_flops_per_microbatch(&self.model, self.microbatch_size);
        self.machine
            .gpu()
            .compute_time(f / self.t() as f64, self.policy.compute_fp16())
            / self.constants.gemm_efficiency
    }

    /// Exposed collective time of one microbatch.
    pub fn exposed_comm_per_microbatch(&self) -> Secs {
        let total =
            self.allreduce_time(self.allreduce_bytes()) * self.allreduces_per_microbatch() as f64;
        total * (1.0 - self.constants.overlap)
    }

    /// Per-GPU memory demand: `1/t` of every model/optimizer state plus
    /// one microbatch's tensor-parallel activations for every layer
    /// (no pipelining, so exactly one microbatch is in flight).
    pub fn gpu_bytes(&self) -> Bytes {
        let pol = &self.policy;
        let t = self.t() as u64;
        let state_bytes_per_param = pol.param_bytes_per_param()
            + pol.grad_bytes_per_param()
            + pol.optimizer_bytes_per_param();
        let statics = Bytes(self.model.total_params() * state_bytes_per_param / t);
        let acts = self
            .model
            .activation_bytes_per_layer_tp(self.microbatch_size, pol, self.t())
            * self.model.num_layers() as u64;
        let embed = self
            .model
            .embedding_activation_bytes(self.microbatch_size, pol);
        statics + acts + embed
    }

    /// Evaluates the configuration.
    pub fn report(&self) -> MegatronReport {
        let gpu_bytes = self.gpu_bytes();
        let fits = gpu_bytes <= self.machine.gpu().usable_memory();
        let per_mb = self.compute_per_microbatch() + self.exposed_comm_per_microbatch();
        let window_time = per_mb * self.microbatches as f64;
        let tflops = if fits {
            flops::model_flops_per_microbatch(&self.model, self.microbatch_size)
                * self.microbatches as f64
                / window_time
                / 1e12
        } else {
            0.0
        };
        MegatronReport {
            fits,
            tflops,
            gpu_bytes,
            comm_bytes_per_microbatch: self.comm_bytes_per_microbatch(),
            exposed_comm_per_microbatch: self.exposed_comm_per_microbatch(),
            window_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpress_model::zoo;

    fn base(machine: Machine) -> MegatronBaseline {
        MegatronBaseline::new(machine, zoo::gpt_10_3b())
    }

    #[test]
    fn memory_is_balanced_and_fits_10_3b_everywhere() {
        // The intra-op selling point: 10.3B OOMs DAPPLE on a DGX-1, but
        // the 1/t sharded footprint fits easily.
        for m in [Machine::dgx1(), Machine::dgx2(), Machine::commodity()] {
            let r = base(m).report();
            assert!(r.fits, "{:?}", r);
            assert!(r.gpu_bytes < Bytes::gib(32));
        }
    }

    #[test]
    fn collectives_dwarf_interop_boundary_traffic() {
        // §II motivation: per-layer all-reduces move orders of magnitude
        // more bytes than a pipeline's once-per-stage boundary send.
        let b = base(Machine::dgx1());
        let boundary = b.allreduce_bytes(); // same tensor a pipeline would send
        let ratio = b.comm_bytes_per_microbatch().as_u64() as f64 / (7 * boundary.as_u64()) as f64;
        assert!(ratio > 20.0, "intra/inter traffic ratio {ratio:.1}");
    }

    #[test]
    fn pcie_only_server_is_ruinous() {
        let nv = base(Machine::dgx1()).report();
        let pcie = base(Machine::commodity()).report();
        assert!(
            pcie.tflops < 0.5 * nv.tflops,
            "{} vs {}",
            pcie.tflops,
            nv.tflops
        );
    }

    #[test]
    fn nvswitch_is_no_worse_than_cube_mesh() {
        let mesh = base(Machine::dgx1()).report();
        let switch = base(Machine::dgx2()).report();
        assert!(switch.tflops >= mesh.tflops);
    }

    #[test]
    fn allreduce_count_matches_megatron_structure() {
        let b = base(Machine::dgx1());
        assert_eq!(b.allreduces_per_microbatch(), 4 * 40 + 2);
    }

    #[test]
    fn exposed_comm_scales_with_microbatch_size() {
        let small = base(Machine::dgx1()).microbatch_size(1);
        let large = base(Machine::dgx1()).microbatch_size(4);
        assert!(large.exposed_comm_per_microbatch() > 3.9 * small.exposed_comm_per_microbatch());
    }

    #[test]
    fn giant_models_eventually_overflow_even_sharded() {
        // 1/8 of GPT-3-scale states still exceeds a 32 GB V100.
        let model = mpress_model::TransformerConfig::builder(mpress_model::ModelFamily::Gpt)
            .name("GPT-175B")
            .layers(96)
            .hidden(12288)
            .build();
        let r = MegatronBaseline::new(Machine::dgx1(), model).report();
        assert!(!r.fits);
        assert_eq!(r.tflops, 0.0);
    }

    #[test]
    fn overlap_reduces_exposed_time() {
        let none = base(Machine::dgx1()).constants(MegatronModel {
            overlap: 0.0,
            ..MegatronModel::default()
        });
        let half = base(Machine::dgx1()).constants(MegatronModel {
            overlap: 0.5,
            ..MegatronModel::default()
        });
        assert!(half.exposed_comm_per_microbatch() < none.exposed_comm_per_microbatch());
    }
}

//! Competing-system baselines: the ZeRO family and Megatron-LM.
//!
//! Intra-operator (tensor-parallel) Megatron-LM lives in [`megatron`];
//! the rest of this module models the ZeRO family.
//!
//! The paper's Fig. 8 compares MPress against DeepSpeed's ZeRO-Offload and
//! ZeRO-Infinity — *data-parallel* systems whose throughput is governed by
//! collective-communication and host/NVMe staging volume rather than by
//! pipeline dynamics. We therefore model them analytically: closed-form
//! per-step compute, per-channel traffic, overlap-discounted exposure, and
//! per-pool capacity checks.
//!
//! Modeled mechanics (per optimizer step, from the ZeRO papers):
//!
//! * **ZeRO-3**: parameters, gradients and optimizer states are
//!   partitioned 1/N per GPU; every forward/backward all-gathers the
//!   parameters over NVLink and reduce-scatters gradients.
//! * **ZeRO-Offload**: ZeRO-2 partitioning, full FP16 parameter replica on
//!   each GPU, optimizer states and the Adam step on the CPU; each step
//!   ships the gradient shard down and the updated parameter shard up over
//!   PCIe.
//! * **ZeRO-Infinity**: ZeRO-3 partitioning plus staging of parameters and
//!   optimizer states through host memory *and NVMe*; its "bandwidth-
//!   centric" design overlaps staging better than Offload, but its NVMe
//!   leg makes it hostage to SSD bandwidth — the cause of the paper's
//!   Fig. 8b inversion on the rented DGX-2.
//!
//! # Example
//!
//! ```
//! use mpress_baselines::{ZeroBaseline, ZeroVariant};
//! use mpress_hw::Machine;
//! use mpress_model::zoo;
//!
//! let report = ZeroBaseline::new(Machine::dgx1(), zoo::gpt_10_3b(), ZeroVariant::Infinity)
//!     .microbatch_size(2)
//!     .accumulation(2)
//!     .report();
//! assert!(report.fits);
//! assert!(report.tflops > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod megatron;

pub use megatron::{MegatronBaseline, MegatronModel, MegatronReport};

use mpress_hw::{Bytes, Machine, Secs};
use mpress_model::{flops, PrecisionPolicy, TransformerConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which ZeRO family member to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZeroVariant {
    /// ZeRO stage 3 (all model states partitioned, GPU-only).
    Three,
    /// ZeRO-Offload (CPU optimizer).
    Offload,
    /// ZeRO-Infinity (CPU + NVMe staging).
    Infinity,
}

impl fmt::Display for ZeroVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZeroVariant::Three => write!(f, "ZeRO-3"),
            ZeroVariant::Offload => write!(f, "ZeRO-Offload"),
            ZeroVariant::Infinity => write!(f, "ZeRO-Infinity"),
        }
    }
}

/// Overlap fractions (how much channel traffic hides behind compute) and
/// per-variant framework efficiency (DeepSpeed engine overhead relative to
/// pure compute). Calibrated so the baselines land inside the paper's
/// reported ranges (documented in DESIGN.md); exposed explicitly so
/// sensitivity studies can vary them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapModel {
    /// NVLink collectives (all-gather/reduce-scatter) vs. compute.
    pub nvlink: f64,
    /// PCIe staging vs. compute, ZeRO-Offload's scheduling (the paper
    /// attributes Offload's loss to per-microbatch movement — none of it
    /// hides).
    pub pcie_offload: f64,
    /// PCIe/NVMe staging vs. compute, ZeRO-Infinity's bandwidth-centric
    /// scheduling (better than Offload's, per its paper).
    pub pcie_infinity: f64,
    /// End-to-end efficiency of plain ZeRO-3's gather/partition engine.
    pub eff_zero3: f64,
    /// End-to-end efficiency of ZeRO-Offload's CPU-optimizer engine.
    pub eff_offload: f64,
    /// End-to-end efficiency of ZeRO-Infinity's staging engine.
    pub eff_infinity: f64,
}

impl Default for OverlapModel {
    fn default() -> Self {
        OverlapModel {
            nvlink: 0.8,
            pcie_offload: 0.0,
            pcie_infinity: 0.7,
            eff_zero3: 0.8,
            eff_offload: 0.5,
            eff_infinity: 0.58,
        }
    }
}

/// The outcome of one modeled configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Whether every pool (GPU, CPU, NVMe) holds its share.
    pub fits: bool,
    /// Aggregate achieved model TFLOPS (the Fig. 8 metric); zero if the
    /// configuration does not fit.
    pub tflops: f64,
    /// Samples per second; zero if the configuration does not fit.
    pub throughput: f64,
    /// Per-GPU memory demand.
    pub gpu_bytes: Bytes,
    /// Host-memory demand (all GPUs' shares).
    pub cpu_bytes: Bytes,
    /// NVMe demand.
    pub nvme_bytes: Bytes,
    /// Optimizer-step wall time.
    pub step_time: Secs,
}

/// An analytic ZeRO training-run model.
#[derive(Debug, Clone)]
pub struct ZeroBaseline {
    machine: Machine,
    model: TransformerConfig,
    variant: ZeroVariant,
    policy: PrecisionPolicy,
    microbatch_size: usize,
    accumulation: usize,
    overlap: OverlapModel,
}

impl ZeroBaseline {
    /// Creates a baseline with the paper's defaults (mixed precision,
    /// microbatch 2, accumulation 2).
    pub fn new(machine: Machine, model: TransformerConfig, variant: ZeroVariant) -> Self {
        ZeroBaseline {
            machine,
            model,
            variant,
            policy: PrecisionPolicy::mixed(),
            microbatch_size: 2,
            accumulation: 2,
            overlap: OverlapModel::default(),
        }
    }

    /// Sets samples per microbatch per GPU.
    pub fn microbatch_size(mut self, b: usize) -> Self {
        assert!(b > 0, "microbatch size must be positive");
        self.microbatch_size = b;
        self
    }

    /// Sets gradient-accumulation microbatches per GPU per step.
    pub fn accumulation(mut self, a: usize) -> Self {
        assert!(a > 0, "accumulation must be positive");
        self.accumulation = a;
        self
    }

    /// Overrides the overlap model.
    pub fn overlap(mut self, overlap: OverlapModel) -> Self {
        self.overlap = overlap;
        self
    }

    /// Sets the precision policy.
    pub fn precision(mut self, policy: PrecisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    fn n(&self) -> u64 {
        self.machine.gpu_count() as u64
    }

    fn param_count(&self) -> u64 {
        self.model.total_params()
    }

    /// Per-GPU memory demand of the variant. All variants run stage-3
    /// parameter sharding (how 20B+ models fit 32 GB GPUs in the paper's
    /// Fig. 8) plus activation checkpointing, DeepSpeed's billion-scale
    /// default.
    pub fn gpu_bytes(&self) -> Bytes {
        let p = self.param_count();
        let n = self.n();
        let pol = &self.policy;
        let shard = Bytes(p * (pol.param_bytes_per_param() + pol.grad_bytes_per_param()) / n);
        // One checkpoint boundary per layer plus one layer's working set.
        let ckpt = self
            .model
            .boundary_activation_bytes(self.microbatch_size, pol)
            * self.model.num_layers() as u64;
        let working = self
            .model
            .activation_bytes_per_layer(self.microbatch_size, pol);
        let act = ckpt + working;
        // Transient gather buffer of the largest layer's parameters.
        let gather = Bytes(self.model.layer_params() * pol.param_bytes_per_param());
        match self.variant {
            ZeroVariant::Three => {
                let opt = Bytes(p * pol.optimizer_bytes_per_param() / n);
                shard + opt + act + gather
            }
            ZeroVariant::Offload | ZeroVariant::Infinity => shard + act + gather,
        }
    }

    /// Host-memory demand (sum over GPUs' shards).
    pub fn cpu_bytes(&self) -> Bytes {
        let p = self.param_count();
        let opt = Bytes(p * self.policy.optimizer_bytes_per_param());
        match self.variant {
            ZeroVariant::Three => Bytes::ZERO,
            ZeroVariant::Offload => opt,
            // Infinity stages parameters/gradients in pinned host buffers
            // on their way to NVMe.
            ZeroVariant::Infinity => Bytes(
                p * (self.policy.param_bytes_per_param() + self.policy.grad_bytes_per_param()),
            ),
        }
    }

    /// NVMe demand.
    pub fn nvme_bytes(&self) -> Bytes {
        match self.variant {
            ZeroVariant::Infinity => {
                Bytes(self.param_count() * self.policy.optimizer_bytes_per_param())
            }
            _ => Bytes::ZERO,
        }
    }

    /// Pure compute time of one optimizer step on one GPU.
    pub fn compute_time(&self) -> Secs {
        let per_mb = flops::model_flops_per_microbatch(&self.model, self.microbatch_size);
        let flops = per_mb * self.accumulation as f64;
        self.machine
            .gpu()
            .compute_time(flops, self.policy.compute_fp16())
    }

    /// Exposed (non-overlapped) communication/staging time per step.
    pub fn exposed_comm_time(&self) -> Secs {
        let p = self.param_count() as f64;
        let n = self.n() as f64;
        let pol = &self.policy;
        let compute = self.compute_time();
        let param_bytes = p * pol.param_bytes_per_param() as f64;
        let grad_bytes = p * pol.grad_bytes_per_param() as f64;
        let opt_bytes = p * pol.optimizer_bytes_per_param() as f64;
        let pcie_bw = self.machine.pcie().peak();
        // Aggregate bandwidth one GPU can drive during collectives: its
        // NVLink lane budget, or (on NVLink-less servers) half the shared
        // PCIe point-to-point rate.
        let lanes = self.machine.topology().lane_budget();
        let nvlink_bw = if lanes > 0 {
            f64::from(lanes) * mpress_hw::NVLINK2_LANE_BW * 0.8
        } else {
            pcie_bw * 0.5
        };
        let expose = |time: Secs, overlap: f64| (time - overlap * compute).max(0.0);
        // Stage-3 sharding all-gathers params on every pass and
        // reduce-scatters gradients — common to all three variants.
        let nvl = (2.0 * param_bytes + grad_bytes) / nvlink_bw * self.accumulation as f64;
        let cpu_adam = (p / n) * 40.0 / self.machine.cpu().flops;
        match self.variant {
            ZeroVariant::Three => expose(nvl, self.overlap.nvlink),
            ZeroVariant::Offload => {
                // Gradient shard down / updated parameter shard up over
                // PCIe every microbatch (§II-D: "each microbatch execution
                // requires transferring parameters and gradients").
                let pcie = (grad_bytes / n + param_bytes / n) / pcie_bw * self.accumulation as f64;
                expose(nvl, self.overlap.nvlink)
                    + expose(pcie, self.overlap.pcie_offload)
                    + cpu_adam
            }
            ZeroVariant::Infinity => {
                // Parameter shards stream per pass over PCIe; the optimizer
                // shard round-trips host<->NVMe at the slower of the rates.
                let pcie =
                    (2.0 * param_bytes / n * self.accumulation as f64 + grad_bytes / n) / pcie_bw;
                let nvme = self.machine.nvme().map_or(f64::INFINITY, |nv| {
                    2.0 * (opt_bytes / n) / nv.read_bw.min(nv.write_bw).min(pcie_bw)
                });
                expose(nvl, self.overlap.nvlink)
                    + expose(pcie + nvme, self.overlap.pcie_infinity)
                    + cpu_adam
            }
        }
    }

    /// Full step time: engine-throttled compute plus exposed staging.
    pub fn step_time(&self) -> Secs {
        let eff = match self.variant {
            ZeroVariant::Three => self.overlap.eff_zero3,
            ZeroVariant::Offload => self.overlap.eff_offload,
            ZeroVariant::Infinity => self.overlap.eff_infinity,
        };
        self.compute_time() / eff + self.exposed_comm_time()
    }

    /// Evaluates the configuration.
    pub fn report(&self) -> BaselineReport {
        let gpu_bytes = self.gpu_bytes();
        let cpu_bytes = self.cpu_bytes();
        let nvme_bytes = self.nvme_bytes();
        let fits = gpu_bytes <= self.machine.gpu().usable_memory()
            && cpu_bytes <= self.machine.cpu().memory
            && nvme_bytes <= self.machine.nvme().map_or(Bytes::ZERO, |nv| nv.capacity);
        let step_time = self.step_time();
        let (tflops, throughput) = if fits {
            let samples =
                (self.microbatch_size * self.accumulation * self.machine.gpu_count()) as f64;
            let total_flops = flops::model_flops_per_microbatch(&self.model, self.microbatch_size)
                * self.accumulation as f64
                * self.machine.gpu_count() as f64;
            (total_flops / step_time / 1e12, samples / step_time)
        } else {
            (0.0, 0.0)
        };
        BaselineReport {
            fits,
            tflops,
            throughput,
            gpu_bytes,
            cpu_bytes,
            nvme_bytes,
            step_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpress_model::zoo;

    fn base(variant: ZeroVariant, machine: Machine) -> ZeroBaseline {
        ZeroBaseline::new(machine, zoo::gpt_10_3b(), variant)
            .microbatch_size(2)
            .accumulation(2)
    }

    #[test]
    fn all_variants_fit_10_3b_on_dgx1() {
        for v in [
            ZeroVariant::Three,
            ZeroVariant::Offload,
            ZeroVariant::Infinity,
        ] {
            let r = base(v, Machine::dgx1()).report();
            assert!(r.fits, "{v} should fit 10.3B: {:?}", r);
            assert!(r.tflops > 0.0);
        }
    }

    #[test]
    fn zero_variants_scale_to_25_5b() {
        // Paper Fig. 8b: both ZeRO variants sustain GPT-25.5B.
        for v in [ZeroVariant::Offload, ZeroVariant::Infinity] {
            let r = ZeroBaseline::new(Machine::dgx2(), zoo::gpt_25_5b(), v).report();
            if v == ZeroVariant::Infinity {
                assert!(r.fits, "{v} must sustain 25.5B");
            }
        }
    }

    #[test]
    fn infinity_beats_offload_on_dgx1() {
        // Paper: ZeRO-Infinity outperforms ZeRO-Offload by 20.6-23.8% on
        // DGX-1 (fast NVMe).
        let off = base(ZeroVariant::Offload, Machine::dgx1()).report();
        let inf = base(ZeroVariant::Infinity, Machine::dgx1()).report();
        let gain = inf.tflops / off.tflops;
        assert!(
            (1.05..1.45).contains(&gain),
            "Infinity/Offload = {gain:.2} (inf {:.1}, off {:.1})",
            inf.tflops,
            off.tflops
        );
    }

    #[test]
    fn infinity_loses_to_offload_on_slow_nvme() {
        // Paper Fig. 8b: the rented DGX-2's slow SSDs invert the order on
        // larger models.
        let model = zoo::gpt_20_4b();
        let off = ZeroBaseline::new(Machine::dgx2(), model.clone(), ZeroVariant::Offload).report();
        let inf = ZeroBaseline::new(Machine::dgx2(), model, ZeroVariant::Infinity).report();
        assert!(
            inf.tflops < off.tflops,
            "slow NVMe must hurt Infinity: inf {:.1} vs off {:.1}",
            inf.tflops,
            off.tflops
        );
    }

    #[test]
    fn offload_fits_20b_via_sharding() {
        // Fig. 8a runs ZeRO-Offload at GPT-20.4B on 32 GB V100s — only
        // possible with stage-3 parameter sharding.
        let r = ZeroBaseline::new(Machine::dgx1(), zoo::gpt_20_4b(), ZeroVariant::Offload)
            .microbatch_size(2)
            .report();
        assert!(r.fits, "{r:?}");
        assert!(r.tflops > 0.0);
    }

    #[test]
    fn zero3_alone_cannot_hold_giant_states() {
        // 25.5B: shard = 25.5e9 * 16 / 8 = 51 GB > 40 GB A100.
        let r = ZeroBaseline::new(Machine::dgx2(), zoo::gpt_25_5b(), ZeroVariant::Three).report();
        assert!(!r.fits);
    }

    #[test]
    fn exposed_comm_is_nonnegative_and_step_decomposes() {
        for v in [
            ZeroVariant::Three,
            ZeroVariant::Offload,
            ZeroVariant::Infinity,
        ] {
            let b = base(v, Machine::dgx1());
            assert!(b.exposed_comm_time() >= 0.0);
            assert!(b.step_time() >= b.compute_time() + b.exposed_comm_time() - 1e-12);
        }
    }

    #[test]
    fn accumulation_amortizes_staging() {
        // More microbatches per step amortize the optimizer staging:
        // achieved TFLOPS rises with accumulation for Infinity.
        let lo = base(ZeroVariant::Infinity, Machine::dgx1())
            .accumulation(1)
            .report();
        let hi = base(ZeroVariant::Infinity, Machine::dgx1())
            .accumulation(8)
            .report();
        assert!(hi.tflops > lo.tflops);
    }

    #[test]
    fn collectives_degrade_but_survive_without_nvlink() {
        // On a PCIe-only server the ZeRO collectives fall back to PCIe:
        // much slower, never infinite.
        let r = base(ZeroVariant::Offload, Machine::commodity()).report();
        assert!(r.fits);
        assert!(r.tflops > 0.0, "{r:?}");
        let nv = base(ZeroVariant::Offload, Machine::dgx1()).report();
        assert!(r.tflops < 0.5 * nv.tflops, "{} vs {}", r.tflops, nv.tflops);
    }
}

//! Library backing the `mpress-cli` binary.
//!
//! All command logic lives here (testable); `main.rs` only forwards
//! `std::env::args`. Subcommands:
//!
//! * `zoo` — list the paper's model variants and their parameter counts;
//! * `demands` — per-stage memory demands of a job (Table II rows);
//! * `plan` — run MPress's planner, print the Table-IV-style breakdown,
//!   optionally persist the plan as JSON;
//! * `check` — run the planner, then the static plan verifier
//!   (`mpress-analyze`): MP0xx diagnostics as a table or `--json`;
//! * `train` — plan and simulate, print throughput/TFLOPS and optional
//!   memory/Gantt charts;
//! * `compare` — every Figs. 7/8 system plus Megatron/ZeRO on one job;
//! * `insights` — the §V Grace-Hopper projection.

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
pub mod names;

use std::fmt;

/// A CLI failure: a structured reason, rendered as a user-facing message
/// by `Display`, non-zero exit.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Invoked without a command — the message is the usage text.
    Usage,
    /// Unrecognized subcommand.
    UnknownCommand(String),
    /// A flag failed to parse or carried an invalid value (full message).
    BadFlag(String),
    /// A required flag was absent (the flag name, without `--`).
    MissingArg(String),
    /// Writing or serializing an output artifact failed (full message).
    Output(String),
    /// `check` found plan diagnostics — the message is the rendered
    /// report (table or JSON), and the exit code is non-zero.
    Check(String),
    /// The underlying plan/train run failed.
    Run(mpress::MpressError),
    /// A request executed through the versioned API (or a daemon it was
    /// sent to) failed.
    Serve(mpress_api::ServeError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage => write!(f, "{}", usage()),
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command `{c}`\n\n{}", usage())
            }
            CliError::BadFlag(msg) | CliError::Output(msg) | CliError::Check(msg) => {
                write!(f, "{msg}")
            }
            CliError::MissingArg(flag) => write!(f, "missing required flag --{flag}"),
            CliError::Run(e) => write!(f, "{e}"),
            CliError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Run(e) => Some(e),
            CliError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mpress::MpressError> for CliError {
    fn from(e: mpress::MpressError) -> Self {
        CliError::Run(e)
    }
}

impl From<mpress_api::ServeError> for CliError {
    fn from(e: mpress_api::ServeError) -> Self {
        CliError::Serve(e)
    }
}

/// Runs the CLI on pre-split arguments (without the program name),
/// returning the full stdout text.
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message for unknown commands,
/// bad flags or failed runs.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let (command, rest) = argv.split_first().ok_or(CliError::Usage)?;
    let parsed = args::Args::parse(rest)?;
    // Worker threads for parallel plan search (0 = auto; MPRESS_JOBS is
    // the env equivalent). Applies to every planning command.
    mpress_par::set_jobs(parsed.usize_or("jobs", 0)?);
    match command.as_str() {
        "zoo" => commands::zoo(),
        "demands" => commands::demands(&parsed),
        "plan" => commands::plan(&parsed),
        "check" => commands::check(&parsed),
        "train" => commands::train(&parsed),
        "compare" => commands::compare(&parsed),
        "insights" => commands::insights(&parsed),
        "serve" => commands::serve(&parsed),
        "client" => commands::client(&parsed),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::UnknownCommand(other.to_owned())),
    }
}

/// The help text.
pub fn usage() -> String {
    "mpress-cli — MPress (HPCA 2023) reproduction\n\
     \n\
     USAGE: mpress-cli <command> [--flag value]...\n\
     \n\
     COMMANDS:\n\
     \x20 zoo                         list the paper's model variants\n\
     \x20 demands   --model M         per-stage memory demands (Table II)\n\
     \x20 plan      --model M         generate a memory-saving plan (Table IV)\n\
     \x20 check     --model M         statically verify the plan (MP0xx codes;\n\
     \x20                             --json prints the diagnostics document)\n\
     \x20 train     --model M         plan + simulate a training window\n\
     \x20 compare   --model M         all systems of Figs. 7/8 on one job\n\
     \x20 insights                    the Sec. V Grace-Hopper projection\n\
     \x20 serve                       run the planning daemon (newline-delimited\n\
     \x20                             v1 JSON over TCP; --addr HOST:PORT, default\n\
     \x20                             127.0.0.1:7077; --queue N admission slots;\n\
     \x20                             --batch N requests per wave)\n\
     \x20 client    --kind K          send one request to a running daemon and\n\
     \x20                             print the response body (K = plan|train|\n\
     \x20                             check|compare|stats|shutdown; --addr as above)\n\
     \n\
     COMMON FLAGS:\n\
     \x20 --model       bert-0.35b|bert-0.64b|bert-1.67b|bert-4.0b|bert-6.2b|\n\
     \x20               gpt-5.3b|gpt-10.3b|gpt-15.4b|gpt-20.4b|gpt-25.5b\n\
     \x20 --machine     dgx1|dgx2|commodity (default dgx1)\n\
     \x20 --schedule    pipedream|dapple|gpipe (default: paper pairing)\n\
     \x20 --microbatch  samples per microbatch (default: paper value)\n\
     \x20 --microbatches window length (default 16)\n\
     \x20 --opts        all|recompute|hostswap|d2d|none (default all)\n\
     \x20 --jobs        worker threads for parallel plan search (0 = auto;\n\
     \x20               MPRESS_JOBS env var is equivalent)\n\
     \x20 --json        print the versioned v1 response body (plan/compare) or\n\
     \x20               the diagnostics document (check) as JSON\n\
     \x20 --out         write the plan as JSON (plan) or report (train)\n\
     \x20 --chart       render per-device memory lanes (train)\n\
     \x20 --gantt       render the execution timeline (train)\n\
     \x20 --trace       write a chrome://tracing JSON (train)\n\
     \x20 --metrics[=table|json]\n\
     \x20               collect telemetry (stall attribution, link traffic,\n\
     \x20               search counters); json mode prints only the JSON\n\
     \x20               document (plan/train/compare)\n"
        .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(args: &[&str]) -> Result<String, CliError> {
        run(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn no_args_prints_usage_error() {
        let err = call(&[]).unwrap_err();
        assert!(matches!(err, CliError::Usage));
        assert!(err.to_string().contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = call(&["frobnicate"]).unwrap_err();
        assert!(matches!(&err, CliError::UnknownCommand(c) if c == "frobnicate"));
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn help_prints_usage() {
        let out = call(&["help"]).unwrap();
        assert!(out.contains("COMMANDS"));
    }

    #[test]
    fn zoo_lists_all_variants() {
        let out = call(&["zoo"]).unwrap();
        for name in ["Bert-0.35B", "Bert-6.2B", "GPT-5.3B", "GPT-25.5B"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn demands_matches_table2_shape() {
        let out = call(&["demands", "--model", "gpt-5.3b"]).unwrap();
        assert!(out.contains("total"), "{out}");
        assert!(out.contains("stage 0"), "{out}");
    }

    #[test]
    fn demands_requires_model() {
        let err = call(&["demands"]).unwrap_err();
        assert!(matches!(&err, CliError::MissingArg(flag) if flag == "model"));
        assert!(err.to_string().contains("--model"), "{err}");
    }

    #[test]
    fn bad_flag_is_reported() {
        let err = call(&["demands", "--model"]).unwrap_err();
        assert!(matches!(err, CliError::BadFlag(_)));
        assert!(err.to_string().contains("expects a value"), "{err}");
    }

    #[test]
    fn insights_reports_projection() {
        let out = call(&["insights"]).unwrap();
        assert!(out.contains("GPT-3 175B"), "{out}");
        assert!(out.contains("GB/s"), "{out}");
    }
}

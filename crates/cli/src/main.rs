//! The `mpress-cli` binary: thin wrapper over [`mpress_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match mpress_cli::run(&argv) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

//! Minimal `--flag value` argument parsing (no external dependency).

use crate::CliError;
use std::collections::BTreeMap;

/// Parsed flags: `--key value` pairs plus boolean `--key` switches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &["bounds", "chart", "gantt", "json"];
// `--trace` takes a path, so it is a value flag, not a switch.

/// Flags whose value is optional: bare `--key` means `--key=DEFAULT`.
/// A value must be attached with `=` (`--metrics=json`), never as the
/// next token, so `--metrics --chart` parses unambiguously.
const OPTIONAL_VALUE: &[(&str, &str)] = &[("metrics", "table")];

impl Args {
    /// Parses raw arguments.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] on positional arguments or a flag missing its
    /// value.
    pub fn parse(raw: &[String]) -> Result<Self, CliError> {
        let mut args = Args::default();
        let mut it = raw.iter();
        while let Some(token) = it.next() {
            let Some(key) = token.strip_prefix("--") else {
                return Err(CliError::BadFlag(format!(
                    "unexpected positional argument `{token}` (flags are --key value)"
                )));
            };
            // `--key=value` binds inline, for any flag.
            if let Some((k, v)) = key.split_once('=') {
                args.values.insert(k.to_owned(), v.to_owned());
                continue;
            }
            if SWITCHES.contains(&key) {
                args.switches.push(key.to_owned());
                continue;
            }
            if let Some((_, default)) = OPTIONAL_VALUE.iter().find(|(k, _)| *k == key) {
                args.values.insert(key.to_owned(), (*default).to_owned());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| CliError::BadFlag(format!("flag --{key} expects a value")))?;
            args.values.insert(key.to_owned(), value.clone());
        }
        Ok(args)
    }

    /// The value of `--key`, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// The value of a required flag.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] naming the missing flag.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::MissingArg(key.to_owned()))
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// A `usize` flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] when the value does not parse.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::BadFlag(format!("--{key} expects an integer, got `{v}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[&str]) -> Result<Args, CliError> {
        Args::parse(&raw.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_pairs_and_switches() {
        let a = parse(&[
            "--model",
            "gpt-5.3b",
            "--chart",
            "--bounds",
            "--microbatch",
            "2",
        ])
        .unwrap();
        assert_eq!(a.get("model"), Some("gpt-5.3b"));
        assert!(a.switch("chart"));
        assert!(a.switch("bounds"));
        assert!(!a.switch("gantt"));
        assert_eq!(a.usize_or("microbatch", 12).unwrap(), 2);
        assert_eq!(a.usize_or("microbatches", 16).unwrap(), 16);
    }

    #[test]
    fn rejects_positional() {
        assert!(parse(&["gpt"]).is_err());
    }

    #[test]
    fn rejects_missing_value() {
        let err = parse(&["--model"]).unwrap_err();
        assert!(err.to_string().contains("expects a value"));
    }

    #[test]
    fn require_names_the_flag() {
        let a = parse(&[]).unwrap();
        let err = a.require("model").unwrap_err();
        assert!(err.to_string().contains("--model"));
    }

    #[test]
    fn equals_binds_inline_values() {
        let a = parse(&["--model=gpt-5.3b", "--metrics=json"]).unwrap();
        assert_eq!(a.get("model"), Some("gpt-5.3b"));
        assert_eq!(a.get("metrics"), Some("json"));
    }

    #[test]
    fn bare_optional_value_flag_takes_its_default() {
        let a = parse(&["--metrics", "--chart"]).unwrap();
        assert_eq!(a.get("metrics"), Some("table"));
        assert!(a.switch("chart"));
    }

    #[test]
    fn bad_integer_is_reported() {
        let a = parse(&["--microbatch", "two"]).unwrap();
        assert!(a.usize_or("microbatch", 1).is_err());
    }
}

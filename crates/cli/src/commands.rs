//! Subcommand implementations.
//!
//! Planning-shaped commands (`plan`, `check`, `train`, `compare`) build
//! the same [`PlanRequest`]/[`CompareRequest`] wire types the daemon
//! decodes from TCP and execute them through [`mpress_api::exec`] — the
//! CLI is just one more front end on the versioned API, which is what
//! makes its `--json` output byte-identical to daemon response bodies.

use crate::args::Args;
use crate::CliError;
use mpress::{GraceHopperNode, GraceHopperProjection, TelemetryReport};
use mpress_api::names;
use mpress_api::{
    run_check, run_compare, run_plan, run_train, ApiContext, CompareRequest, PlanRequest, Request,
};
use mpress_pipeline::PipelineJob;
use mpress_serve::{Client, ServeConfig};
use mpress_sim::viz;
use std::fmt::Write as _;

/// How `--metrics` was requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsMode {
    Off,
    Table,
    Json,
}

fn metrics_mode(args: &Args) -> Result<MetricsMode, CliError> {
    match args.get("metrics") {
        None => Ok(MetricsMode::Off),
        Some("table") => Ok(MetricsMode::Table),
        Some("json") => Ok(MetricsMode::Json),
        Some(other) => Err(CliError::BadFlag(format!(
            "--metrics expects `table` or `json`, got `{other}`"
        ))),
    }
}

/// Serializes a telemetry payload as the command's *entire* output —
/// `--metrics=json` promises machine-readable stdout.
fn telemetry_json<T: serde::Serialize>(payload: &T) -> Result<String, CliError> {
    serde_json::to_string_pretty(payload)
        .map(|mut s| {
            s.push('\n');
            s
        })
        .map_err(|e| CliError::Output(format!("serializing telemetry: {e}")))
}

/// Serializes a wire response body exactly as the daemon would emit it
/// (compact, field order preserved), one line.
fn body_json<T: serde::Serialize>(payload: &T) -> Result<String, CliError> {
    serde_json::to_string(payload)
        .map(|mut s| {
            s.push('\n');
            s
        })
        .map_err(|e| CliError::Output(format!("serializing response: {e}")))
}

/// The one `SearchStats` renderer every command shares (`plan` output,
/// `--metrics` tables), so new counters print consistently everywhere.
/// `candidates` appends the per-round candidate counts when the caller
/// tracks them.
fn search_summary(s: &mpress::SearchStats, indent: &str, candidates: Option<&[usize]>) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{indent}search: {} emulator runs, {} cache hits (+{} canonical, {:.0}% hit rate), \
         {} prefilter skips, {} verifier rejections, jobs={} (peak {} workers)",
        s.emulator_runs,
        s.cache_hits,
        s.cache_hits_canonical,
        100.0 * s.cache_hit_rate(),
        s.prefilter_skips,
        s.verifier_rejections,
        s.jobs,
        s.peak_workers,
    );
    if let Some(c) = candidates {
        let _ = write!(out, ", candidates/round {c:?}");
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "{indent}bounds: {} pruned, {} certified-fit",
        s.bounds_pruned, s.bounds_certified_fit,
    );
    let _ = writeln!(
        out,
        "{indent}delta: {} replays, {}/{} windows replayed",
        s.delta_replays, s.windows_replayed, s.windows_total,
    );
    let _ = writeln!(
        out,
        "{indent}speculation: {} runs ({} wasted), {} steals, {} bound aborts",
        s.speculative_runs, s.speculation_wasted, s.steals, s.bound_aborts,
    );
    out
}

/// The human-readable `--metrics` section.
fn telemetry_table(t: &TelemetryReport) -> String {
    let mut out = String::from("\ntelemetry:\n");
    out.push_str(&search_summary(&t.search, "  ", Some(&t.refine_candidates)));
    let Some(sim) = &t.sim else {
        return out;
    };
    let _ = writeln!(
        out,
        "  sim: makespan {:.3}s, {} evictions, {} refetches",
        sim.total_time, sim.evictions, sim.refetches
    );
    let _ = writeln!(
        out,
        "  device   compute     comm copy-out  copy-in | mem-wait  copy-in dep-wait  drained"
    );
    for d in &sim.devices {
        let _ = writeln!(
            out,
            "  GPU{:<4} {:>8.3} {:>8.3} {:>8.3} {:>8.3} | {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            d.device.index(),
            d.busy.compute,
            d.busy.comm,
            d.busy.copy_out,
            d.busy.copy_in,
            d.stalls.waiting_on_memory,
            d.stalls.waiting_on_copy_in,
            d.stalls.waiting_on_dependency,
            d.stalls.drained,
        );
    }
    if !sim.links.is_empty() {
        let _ = writeln!(out, "  links:");
        for l in &sim.links {
            let _ = writeln!(
                out,
                "    {:<14} {:>10}  busy {:>7.3}s  occupancy {:>4.0}%",
                l.link.to_string(),
                l.bytes.to_string(),
                l.busy,
                100.0 * l.occupancy,
            );
        }
    }
    out
}

/// `zoo`: the model catalog with parameter counts.
pub fn zoo() -> Result<String, CliError> {
    let mut out = String::from("model         params\n");
    for (name, cfg) in names::model_catalog() {
        let _ = writeln!(
            out,
            "{name:<13} {:.2}B  ({} layers, hidden {})",
            cfg.total_params() as f64 / 1e9,
            cfg.num_layers(),
            cfg.hidden()
        );
        let _ = name;
    }
    // Include display names for greppability.
    out.push('\n');
    for (_, cfg) in names::model_catalog() {
        let _ = writeln!(out, "{}", cfg);
    }
    Ok(out)
}

/// Builds the planning request shared by `plan`, `check`, `train` and
/// the `client` subcommand from CLI flags.
fn plan_request_from(args: &Args) -> Result<PlanRequest, CliError> {
    let mut req = PlanRequest::new(args.require("model")?);
    if let Some(machine) = args.get("machine") {
        req = req.machine(machine);
    }
    if let Some(schedule) = args.get("schedule") {
        req = req.schedule(schedule);
    }
    if args.get("microbatch").is_some() {
        req = req.microbatch(args.usize_or("microbatch", 0)? as u64);
    }
    req = req.microbatches(args.usize_or("microbatches", 16)? as u64);
    if let Some(opts) = args.get("opts") {
        req = req.opts(opts);
    }
    Ok(req)
}

/// Builds a `compare` request from CLI flags.
fn compare_request_from(args: &Args) -> Result<CompareRequest, CliError> {
    let mut req = CompareRequest::new(args.require("model")?);
    if let Some(machine) = args.get("machine") {
        req = req.machine(machine);
    }
    if let Some(schedule) = args.get("schedule") {
        req = req.schedule(schedule);
    }
    if args.get("microbatch").is_some() {
        req = req.microbatch(args.usize_or("microbatch", 0)? as u64);
    }
    req = req.microbatches(args.usize_or("microbatches", 16)? as u64);
    Ok(req)
}

/// Builds the job shared by `demands` (which needs the raw job, not a
/// planning run).
fn job_from(args: &Args) -> Result<PipelineJob, CliError> {
    let model = names::model(args.require("model")?)?;
    let machine = names::machine(args.get("machine").unwrap_or("dgx1"))?;
    let (default_sched, default_mb, default_precision) = names::paper_defaults(&model);
    let schedule = match args.get("schedule") {
        Some(s) => names::schedule(s)?,
        None => default_sched,
    };
    let microbatch = args.usize_or("microbatch", default_mb)?;
    let microbatches = args.usize_or("microbatches", 16)?;
    PipelineJob::builder()
        .model(model)
        .machine(machine)
        .schedule(schedule)
        .microbatch_size(microbatch)
        .microbatches(microbatches)
        .precision(default_precision)
        .build()
        .map_err(|e| CliError::BadFlag(format!("invalid job: {e}")))
}

/// `demands`: Table-II-style memory summary plus per-stage peaks.
pub fn demands(args: &Args) -> Result<String, CliError> {
    let job = job_from(args)?;
    let d = job.memory_demands();
    let mut out = format!(
        "{} on {} ({}, microbatch {})\n\
         total {:.1} GiB, per-stage max {:.1} GiB, min {:.1} GiB, imbalance {:.1}x\n",
        job.model().name(),
        job.machine().name(),
        job.schedule(),
        job.microbatch_size(),
        d.total().as_gib_f64(),
        d.max_stage().as_gib_f64(),
        d.min_stage().as_gib_f64(),
        d.imbalance_ratio(),
    );
    let usable = job.machine().gpu().usable_memory();
    for (stage, peak) in d.per_stage_peak.iter().enumerate() {
        let flag = if *peak > usable { "OVERFLOW" } else { "fits" };
        let _ = writeln!(out, "stage {stage}: {:>8.1} GiB  {flag}", peak.as_gib_f64());
    }
    Ok(out)
}

/// `plan`: run the planner, print the technique breakdown, optionally
/// persist JSON. `--json` prints the `v1` response body instead —
/// byte-identical to what the daemon sends for the same request.
pub fn plan(args: &Args) -> Result<String, CliError> {
    let mode = metrics_mode(args)?;
    let req = plan_request_from(args)?;
    let outcome = run_plan(&req, &ApiContext::new())?;
    if args.switch("json") {
        return body_json(&outcome.response);
    }
    let (plan, lowered) = (&outcome.plan, &outcome.lowered);
    let mut out = format!(
        "device map: {}\ndirectives: {} (refinement rounds: {})\n",
        plan.device_map,
        plan.instrumentation.len(),
        plan.refinement_rounds,
    );
    out.push_str(&search_summary(&plan.search, "", None));
    let savings = plan.savings(lowered);
    let total: f64 = savings.values().map(|b| b.as_f64()).sum();
    for tech in [
        mpress_compaction::Technique::Recompute,
        mpress_compaction::Technique::GpuCpuSwap,
        mpress_compaction::Technique::D2dSwap,
    ] {
        let bytes = savings
            .get(&tech)
            .copied()
            .unwrap_or(mpress_hw::Bytes::ZERO);
        let pct = if total > 0.0 {
            100.0 * bytes.as_f64() / total
        } else {
            0.0
        };
        let _ = writeln!(out, "{tech:<14} {:>10}  ({pct:.1}%)", bytes.to_string());
    }
    if let Some(path) = args.get("out") {
        let json = serde_json::to_string_pretty(&plan.instrumentation)
            .map_err(|e| CliError::Output(format!("serializing plan: {e}")))?;
        std::fs::write(path, json).map_err(|e| CliError::Output(format!("writing {path}: {e}")))?;
        let _ = writeln!(out, "plan written to {path}");
    }
    // No final simulation in `plan`, so only search telemetry exists.
    let telemetry = TelemetryReport {
        sim: None,
        search: plan.search,
        refine_candidates: plan.refine_candidates.clone(),
    };
    match mode {
        MetricsMode::Off => Ok(out),
        MetricsMode::Json => telemetry_json(&telemetry),
        MetricsMode::Table => {
            out.push_str(&telemetry_table(&telemetry));
            Ok(out)
        }
    }
}

/// The human-readable `--bounds` section of `check`: the certified
/// makespan interval, verdict, and per-GPU residency envelope.
fn bounds_table(bounds: &mpress_analyze::PlanBounds) -> String {
    let mut out = format!(
        "bounds: {} (makespan within [{:.2}s, {:.2}s])\n",
        bounds.residency.verdict, bounds.makespan_lo, bounds.makespan_hi,
    );
    for (d, (lo, hi)) in bounds
        .residency
        .lo
        .iter()
        .zip(&bounds.residency.hi)
        .enumerate()
    {
        let _ = writeln!(out, "  gpu{d}: residency within [{lo}, {hi}]");
    }
    out
}

/// `check`: run the planner, then the static verifier (`mpress-analyze`)
/// on the chosen plan — no simulation. Prints the MP0xx diagnostic table
/// (or the JSON document under `--json`); any error-severity finding
/// turns into a non-zero exit. `--bounds` adds the certified
/// residency/makespan intervals from the abstract-interpretation pass
/// (one combined JSON document under `--bounds --json`).
pub fn check(args: &Args) -> Result<String, CliError> {
    use serde::Serialize as _;

    let req = plan_request_from(args)?;
    let outcome = run_check(&req, &ApiContext::new())?;
    let report = &outcome.report;
    let with_bounds = args.switch("bounds");
    let body = if args.switch("json") {
        let doc = if with_bounds {
            // One parseable document: diagnostics plus the intervals.
            serde_json::Value::Object(vec![
                ("report".to_owned(), report.to_json()),
                ("bounds".to_owned(), outcome.bounds.to_json()),
            ])
        } else {
            report.to_json()
        };
        serde_json::to_string_pretty(&doc)
            .map(|mut s| {
                s.push('\n');
                s
            })
            .map_err(|e| CliError::Output(format!("serializing diagnostics: {e}")))?
    } else {
        let mut out = format!(
            "checked {} directives on {} stages: {}\n",
            outcome.plan.instrumentation.len(),
            outcome.lowered.graph.n_stages(),
            report.summary(),
        );
        if !report.is_clean() {
            out.push_str(&report.render_table());
        }
        if with_bounds {
            out.push_str(&bounds_table(&outcome.bounds));
        }
        out
    };
    if report.error_count() > 0 {
        Err(CliError::Check(body))
    } else {
        Ok(body)
    }
}

/// `train`: plan + simulate, report throughput and optional charts.
pub fn train(args: &Args) -> Result<String, CliError> {
    let mode = metrics_mode(args)?;
    let req = plan_request_from(args)?;
    let outcome = run_train(&req, &ApiContext::new(), mode != MetricsMode::Off)?;
    let (report, mpress) = (&outcome.report, &outcome.mpress);
    if mode == MetricsMode::Json {
        // Machine-readable stdout: the telemetry document and nothing else.
        let telemetry = report
            .metrics
            .as_ref()
            .expect("metrics were enabled for this run");
        return telemetry_json(telemetry);
    }
    let mut out = if report.succeeded() {
        format!(
            "ok: {:.1} aggregate TFLOPS, {:.1} samples/s, peak {:.1} GiB/GPU\n\
             traffic: d2d {}, host {}, nvme {}; recompute time {:.2}s\n",
            report.tflops,
            report.throughput,
            report.max_device_peak().as_gib_f64(),
            report.sim.d2d_traffic,
            report.sim.host_traffic,
            report.sim.nvme_traffic,
            report.sim.recompute_time,
        )
    } else {
        format!(
            "OUT OF MEMORY: {}\n",
            report
                .sim
                .oom
                .as_ref()
                .expect("failed run has an OOM event")
        )
    };
    if args.switch("chart") || args.switch("gantt") || args.get("trace").is_some() {
        // Re-simulate with timelines for the charts (the plan cache in
        // the outcome's context makes the re-plan a lookup).
        let (plan, lowered) = mpress.plan()?;
        let sim = mpress_sim::Simulator::new(
            mpress.machine(),
            &lowered.graph,
            &plan.instrumentation,
            plan.device_map.clone(),
        )
        .with_config(
            mpress_sim::SimConfig::default()
                .track_timeline(true)
                .trace(args.get("trace").is_some()),
        )
        .run()
        .map_err(|e| CliError::Run(e.into()))?;
        if let Some(path) = args.get("trace") {
            let events = sim.trace.as_deref().unwrap_or(&[]);
            std::fs::write(path, mpress_sim::trace::to_chrome_trace(events))
                .map_err(|e| CliError::Output(format!("writing {path}: {e}")))?;
            let _ = writeln!(
                out,
                "chrome trace written to {path} ({} events)",
                events.len()
            );
        }
        if args.switch("chart") {
            out.push_str("\nper-device memory (full block = usable capacity):\n");
            out.push_str(&viz::memory_chart(
                &sim,
                mpress.machine().gpu().usable_memory(),
                72,
            ));
        }
        if args.switch("gantt") {
            out.push_str("\nexecution lanes (F fwd, B bwd, U opt, s send):\n");
            let stages: Vec<usize> = (0..lowered.graph.n_stages())
                .map(|dev| {
                    plan.device_map
                        .stage_of(mpress_hw::DeviceId(dev))
                        .expect("bijective map")
                })
                .collect();
            out.push_str(&viz::gantt(&sim, &lowered.graph, &stages, 100));
        }
    }
    if mode == MetricsMode::Table {
        let telemetry = report
            .metrics
            .as_ref()
            .expect("metrics were enabled for this run");
        out.push_str(&telemetry_table(telemetry));
    }
    Ok(out)
}

/// `insights`: the §V Grace-Hopper projection.
pub fn insights(args: &Args) -> Result<String, CliError> {
    let microbatch = args.usize_or("microbatch", 2)?;
    let projection = GraceHopperProjection::compute(&GraceHopperNode::default(), microbatch);
    Ok(format!(
        "Sec. V projection on a Grace-Hopper node (96 GB HBM + 512 GB CPU/GPU):\n{}\n",
        projection.summary()
    ))
}

/// `compare`: every system of Figs. 7/8 plus the §II baselines on one
/// job — the whole paper's evaluation for a single (model, machine) cell.
pub fn compare(args: &Args) -> Result<String, CliError> {
    let mode = metrics_mode(args)?;
    let req = compare_request_from(args)?;
    let outcome = run_compare(&req, &ApiContext::new(), mode != MetricsMode::Off)?;
    if args.switch("json") {
        return body_json(&outcome.response);
    }
    let job = &outcome.job;
    let mut out = format!(
        "{} on {} ({}, microbatch {}, {} microbatches)\n\n",
        job.model().name(),
        job.machine().name(),
        job.schedule(),
        job.microbatch_size(),
        job.microbatches(),
    );
    let cell = |v: Option<f64>| match v {
        Some(t) => format!("{t:8.1}"),
        None => format!("{:>8}", "OOM"),
    };
    for row in &outcome.response.rows {
        match row.gib_per_gpu {
            Some(gib) => {
                let _ = writeln!(
                    out,
                    "  {:<24} {} TFLOPS  ({gib:.1} GiB/GPU, balanced)",
                    row.system,
                    cell(row.tflops),
                );
            }
            None => {
                let _ = writeln!(out, "  {:<24} {} TFLOPS", row.system, cell(row.tflops));
            }
        }
    }
    match mode {
        MetricsMode::Off => Ok(out),
        MetricsMode::Json => telemetry_json(&outcome.telemetry),
        MetricsMode::Table => {
            for (label, t) in &outcome.telemetry {
                let _ = write!(out, "\n[{label}]{}", telemetry_table(t));
            }
            Ok(out)
        }
    }
}

/// `serve`: run the planning daemon until a `shutdown` request arrives.
pub fn serve(args: &Args) -> Result<String, CliError> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7077");
    let config = ServeConfig::default()
        .addr(addr)
        .queue_cap(args.usize_or("queue", 64)?)
        .batch_cap(args.usize_or("batch", 8)?);
    let mut handle = mpress_serve::start(config)
        .map_err(|e| CliError::Output(format!("binding {addr}: {e}")))?;
    let bound = handle.addr();
    // Stderr so scripts scraping stdout only see the final summary.
    eprintln!("mpress-serve listening on {bound}");
    handle.wait();
    Ok(format!("mpress-serve stopped on {bound}\n"))
}

/// `client`: send one request to a running daemon and print the `v1`
/// response body as one JSON line.
pub fn client(args: &Args) -> Result<String, CliError> {
    let addr = args.get("addr").unwrap_or("127.0.0.1:7077");
    let kind = args.get("kind").unwrap_or("plan");
    let request = match kind {
        "plan" => Request::Plan(plan_request_from(args)?),
        "train" => Request::Train(plan_request_from(args)?),
        "check" => Request::Check(plan_request_from(args)?),
        "compare" => Request::Compare(compare_request_from(args)?),
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(CliError::BadFlag(format!(
                "--kind expects plan|train|check|compare|stats|shutdown, got `{other}`"
            )))
        }
    };
    let mut client = Client::connect(addr)
        .map_err(|e| CliError::Output(format!("connecting to {addr}: {e}")))?;
    let decoded = client.request(&request)?;
    let (_, body) = decoded.result?;
    body_json(&body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Args {
        Args::parse(&raw.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn demands_flags_overflow_stages() {
        let out = demands(&args(&["--model", "gpt-10.3b"])).unwrap();
        assert!(out.contains("OVERFLOW"), "{out}");
        assert!(out.contains("fits"), "{out}");
    }

    #[test]
    fn plan_reports_breakdown_for_pressured_job() {
        let out = plan(&args(&["--model", "bert-0.64b", "--microbatches", "8"])).unwrap();
        assert!(out.contains("device map"), "{out}");
        assert!(out.contains("D2D swap"), "{out}");
    }

    #[test]
    fn plan_json_is_the_wire_body() {
        let out = plan(&args(&[
            "--model",
            "bert-0.64b",
            "--microbatches",
            "8",
            "--json",
        ]))
        .unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed.get("v").and_then(serde_json::Value::as_u64), Some(1));
        assert!(parsed.get("device_map").is_some(), "{out}");
        assert!(parsed.get("savings").is_some(), "{out}");
        // Volatile search counters must NOT leak into the wire body.
        assert!(parsed.get("search").is_none(), "{out}");
    }

    #[test]
    fn plan_writes_json_when_asked() {
        let dir = std::env::temp_dir().join("mpress_cli_test_plan.json");
        let path = dir.to_str().unwrap();
        let out = plan(&args(&[
            "--model",
            "bert-0.64b",
            "--microbatches",
            "8",
            "--out",
            path,
        ]))
        .unwrap();
        assert!(out.contains("written"), "{out}");
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("directives"), "{text}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn train_reports_success_for_small_model() {
        let out = train(&args(&["--model", "bert-0.35b", "--microbatches", "8"])).unwrap();
        assert!(out.contains("ok:"), "{out}");
    }

    #[test]
    fn train_reports_oom_for_unaided_run() {
        let out = train(&args(&[
            "--model",
            "gpt-10.3b",
            "--opts",
            "none",
            "--microbatches",
            "8",
        ]))
        .unwrap();
        assert!(out.contains("OUT OF MEMORY"), "{out}");
    }

    #[test]
    fn train_writes_chrome_trace() {
        let path = std::env::temp_dir().join("mpress_cli_test_trace.json");
        let path = path.to_str().unwrap();
        let out = train(&args(&[
            "--model",
            "bert-0.35b",
            "--microbatches",
            "6",
            "--trace",
            path,
        ]))
        .unwrap();
        assert!(out.contains("chrome trace written"), "{out}");
        let text = std::fs::read_to_string(path).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(parsed.as_array().unwrap().len() > 100);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn train_charts_render() {
        let out = train(&args(&[
            "--model",
            "bert-0.35b",
            "--microbatches",
            "6",
            "--chart",
            "--gantt",
        ]))
        .unwrap();
        assert!(out.contains("per-device memory"), "{out}");
        assert!(out.contains("execution lanes"), "{out}");
        assert!(out.contains("GPU7"), "{out}");
    }

    #[test]
    fn train_metrics_json_is_a_parseable_document() {
        let out = train(&args(&[
            "--model",
            "bert-0.35b",
            "--microbatches",
            "6",
            "--metrics=json",
        ]))
        .unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(parsed.get("sim").is_some(), "{out}");
        assert!(parsed.get("search").is_some(), "{out}");
    }

    #[test]
    fn train_metrics_table_renders_stall_columns() {
        let out = train(&args(&[
            "--model",
            "bert-0.35b",
            "--microbatches",
            "6",
            "--metrics",
        ]))
        .unwrap();
        assert!(out.contains("ok:"), "{out}");
        assert!(out.contains("telemetry:"), "{out}");
        assert!(out.contains("mem-wait"), "{out}");
    }

    #[test]
    fn metrics_rejects_unknown_mode() {
        let err = train(&args(&["--model", "bert-0.35b", "--metrics=csv"])).unwrap_err();
        assert!(matches!(err, CliError::BadFlag(_)));
        assert!(err.to_string().contains("csv"), "{err}");
    }

    #[test]
    fn compare_lists_every_system() {
        let out = compare(&args(&["--model", "gpt-5.3b", "--microbatches", "8"])).unwrap();
        for label in [
            "plain",
            "gpu-cpu swap",
            "recomputation",
            "mpress",
            "zero-offload",
            "zero-infinity",
            "megatron tp-8",
        ] {
            assert!(out.contains(label), "missing {label} in:\n{out}");
        }
    }

    #[test]
    fn compare_on_commodity_machine_resolves() {
        let out = compare(&args(&[
            "--model",
            "gpt-5.3b",
            "--machine",
            "commodity",
            "--microbatches",
            "8",
        ]))
        .unwrap();
        assert!(out.contains("PCIe-only"), "{out}");
    }

    #[test]
    fn client_rejects_unknown_kind() {
        let err = client(&args(&["--kind", "frobnicate"])).unwrap_err();
        assert!(matches!(err, CliError::BadFlag(_)));
        assert!(err.to_string().contains("frobnicate"), "{err}");
    }
}

//! Name → object lookups for CLI flags.
//!
//! Deprecated shims: the catalogs moved to [`mpress_api::names`] so the
//! CLI, the daemon and the load generator resolve request names through
//! one table. These wrappers only remap the error type for callers that
//! still expect [`CliError`].

use crate::CliError;
use mpress::OptimizationSet;
use mpress_api::ServeError;
use mpress_hw::Machine;
use mpress_model::{PrecisionPolicy, TransformerConfig};
use mpress_pipeline::ScheduleKind;

/// Remaps a catalog miss to the CLI's flag error, preserving the
/// message text exactly.
fn bad_flag(e: ServeError) -> CliError {
    match e {
        ServeError::BadRequest(msg) => CliError::BadFlag(msg),
        other => CliError::BadFlag(other.to_string()),
    }
}

/// All model variants with their CLI names.
#[deprecated(note = "use `mpress_api::names::model_catalog`")]
pub fn model_catalog() -> Vec<(&'static str, TransformerConfig)> {
    mpress_api::names::model_catalog()
}

/// Looks up a model by CLI name.
///
/// # Errors
///
/// Lists the valid names on failure.
#[deprecated(note = "use `mpress_api::names::model`")]
pub fn model(name: &str) -> Result<TransformerConfig, CliError> {
    mpress_api::names::model(name).map_err(bad_flag)
}

/// Looks up a machine by CLI name.
///
/// # Errors
///
/// Lists the valid names on failure.
#[deprecated(note = "use `mpress_api::names::machine`")]
pub fn machine(name: &str) -> Result<Machine, CliError> {
    mpress_api::names::machine(name).map_err(bad_flag)
}

/// Looks up a schedule by CLI name.
///
/// # Errors
///
/// Lists the valid names on failure.
#[deprecated(note = "use `mpress_api::names::schedule`")]
pub fn schedule(name: &str) -> Result<ScheduleKind, CliError> {
    mpress_api::names::schedule(name).map_err(bad_flag)
}

/// Looks up an optimization set by CLI name.
///
/// # Errors
///
/// Lists the valid names on failure.
#[deprecated(note = "use `mpress_api::names::optimizations`")]
pub fn optimizations(name: &str) -> Result<OptimizationSet, CliError> {
    mpress_api::names::optimizations(name).map_err(bad_flag)
}

/// The paper's default pairing: Bert runs PipeDream/FP32 at microbatch 12,
/// GPT runs DAPPLE/mixed at microbatch 2.
#[deprecated(note = "use `mpress_api::names::paper_defaults`")]
pub fn paper_defaults(model: &TransformerConfig) -> (ScheduleKind, usize, PrecisionPolicy) {
    mpress_api::names::paper_defaults(model)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use mpress_model::zoo;

    #[test]
    fn every_catalog_name_resolves() {
        for (name, cfg) in model_catalog() {
            assert_eq!(model(name).unwrap().name(), cfg.name());
        }
    }

    #[test]
    fn unknown_names_list_options() {
        assert!(model("gpt-99b")
            .unwrap_err()
            .to_string()
            .contains("gpt-25.5b"));
        assert!(machine("dgx9").unwrap_err().to_string().contains("dgx2"));
        assert!(schedule("fifo").unwrap_err().to_string().contains("gpipe"));
        assert!(optimizations("max")
            .unwrap_err()
            .to_string()
            .contains("recompute"));
    }

    #[test]
    fn paper_defaults_follow_family() {
        let (sched, mb, _) = paper_defaults(&zoo::bert_0_64b());
        assert_eq!(sched, ScheduleKind::PipeDream);
        assert_eq!(mb, 12);
        let (sched, mb, _) = paper_defaults(&zoo::gpt_5_3b());
        assert_eq!(sched, ScheduleKind::Dapple);
        assert_eq!(mb, 2);
    }

    #[test]
    fn shim_messages_match_the_shared_catalog() {
        let shim = model("gpt-99b").unwrap_err().to_string();
        let api = mpress_api::names::model("gpt-99b").unwrap_err();
        // Same message text — only the error type differs.
        assert!(api.to_string().ends_with(&shim));
    }
}

//! Standard job configurations shared by all experiments — the paper's
//! §IV-A setup.

use mpress::{Mpress, OptimizationSet, PlannerConfig};
use mpress_hw::Machine;
use mpress_model::{zoo, PrecisionPolicy, TransformerConfig};
use mpress_pipeline::{PipelineJob, ScheduleKind};

/// Microbatches simulated per window (DAPPLE: per minibatch).
pub const WINDOW_MICROBATCHES: usize = 16;

/// A Bert job as the paper runs it: PipeDream, microbatch 12, FP32.
pub fn bert_job(model: TransformerConfig, machine: Machine) -> PipelineJob {
    PipelineJob::builder()
        .model(model)
        .machine(machine)
        .schedule(ScheduleKind::PipeDream)
        .microbatch_size(zoo::BERT_MICROBATCH)
        .microbatches(WINDOW_MICROBATCHES)
        .precision(PrecisionPolicy::full())
        .build()
        .expect("paper Bert configuration is valid")
}

/// A GPT job as the paper runs it: DAPPLE, microbatch 2, mixed precision.
pub fn gpt_job(model: TransformerConfig, machine: Machine) -> PipelineJob {
    PipelineJob::builder()
        .model(model)
        .machine(machine)
        .schedule(ScheduleKind::Dapple)
        .microbatch_size(zoo::GPT_MICROBATCH)
        .microbatches(WINDOW_MICROBATCHES)
        .precision(PrecisionPolicy::mixed())
        .build()
        .expect("paper GPT configuration is valid")
}

/// The five Fig. 7 / Fig. 8 system configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemConfig {
    /// The unmodified host system (PipeDream or DAPPLE).
    Plain,
    /// vDNN-style GPU-CPU swap of every eligible tensor.
    GpuCpuSwap,
    /// The recomputation baseline.
    Recomputation,
    /// MPress restricted to D2D swap ("MPress (D2D)" in Fig. 7).
    MpressD2dOnly,
    /// Full MPress.
    Mpress,
}

impl SystemConfig {
    /// Column label used in the tables.
    pub fn label(self) -> &'static str {
        match self {
            SystemConfig::Plain => "plain",
            SystemConfig::GpuCpuSwap => "gpu-cpu-swap",
            SystemConfig::Recomputation => "recompute",
            SystemConfig::MpressD2dOnly => "mpress(d2d)",
            SystemConfig::Mpress => "mpress",
        }
    }

    /// The planner configuration realizing this system.
    pub fn planner_config(self) -> PlannerConfig {
        let mut cfg = PlannerConfig::default();
        match self {
            SystemConfig::Plain => cfg.optimizations = OptimizationSet::none(),
            SystemConfig::GpuCpuSwap => {
                cfg.optimizations = OptimizationSet::host_swap_only();
                cfg.exhaustive_swap = true;
            }
            SystemConfig::Recomputation => {
                cfg.optimizations = OptimizationSet::recompute_only();
                cfg.exhaustive_swap = true;
            }
            SystemConfig::MpressD2dOnly => cfg.optimizations = OptimizationSet::d2d_only(),
            SystemConfig::Mpress => {}
        }
        cfg
    }

    /// Runs a job under this system; `Some(tflops)` on success, `None` on
    /// OOM.
    pub fn run(self, job: PipelineJob) -> Option<f64> {
        let mpress = Mpress::builder()
            .job(job)
            .planner_config(self.planner_config())
            .build();
        let report = match self {
            SystemConfig::Plain => mpress.train_unmodified(),
            _ => mpress.train(),
        }
        .expect("simulation inputs are valid");
        report.succeeded().then_some(report.tflops)
    }
}

/// Formats an optional TFLOPS value the way the paper's figures mark OOM.
pub fn tflops_cell(v: Option<f64>) -> String {
    match v {
        Some(t) => format!("{t:.1}"),
        None => "OOM".to_owned(),
    }
}

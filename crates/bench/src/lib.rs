//! Experiment harness for the MPress reproduction.
//!
//! One function per table/figure of the paper's evaluation, each returning
//! a printable [`Table`] with the same rows/series the paper reports. The
//! `exp_*` binaries print them; `benches/experiments.rs` times the
//! underlying machinery with Criterion.
//!
//! | paper artifact | function |
//! |---|---|
//! | Fig. 1 (schedule timelines)            | [`experiments::fig1`] |
//! | Table I (memory breakdown %)           | [`experiments::table1`] |
//! | Fig. 2 (per-device imbalance)          | [`experiments::fig2`] |
//! | Fig. 4 (link bandwidth vs. size)       | [`experiments::fig4`] |
//! | Table II (memory demands)              | [`experiments::table2`] |
//! | Fig. 7 (Bert TFLOPS, 5 systems)        | [`experiments::fig7`] |
//! | Fig. 8a/8b (GPT TFLOPS, 5 systems)     | [`experiments::fig8`] |
//! | Fig. 9 (mapping/striping ablation)     | [`experiments::fig9`] |
//! | Table III (per-tensor technique costs) | [`experiments::table3`] |
//! | Table IV (chosen strategies)           | [`experiments::table4`] |
//! | §II-D scalars                          | [`experiments::sec2d`] |

#![forbid(unsafe_code)]

pub mod experiments;
pub mod jobs;
pub mod table;

pub use table::Table;

/// Parses the flags shared by every `exp_*` binary.
///
/// * `--jobs N` (or `--jobs=N`) — worker threads for the parallel sweep
///   layer; `0` restores auto-detection. The `MPRESS_JOBS` environment
///   variable is the equivalent knob when no flag is given.
/// * `--help` / `-h` — prints usage and exits.
///
/// Unknown flags abort with exit code 2 so typos don't silently run the
/// full (expensive) experiment suite.
pub fn init_cli(bin: &str) {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let jobs_value = if arg == "--jobs" {
            Some(args.next().unwrap_or_default())
        } else {
            arg.strip_prefix("--jobs=").map(str::to_owned)
        };
        if let Some(v) = jobs_value {
            match v.parse::<usize>() {
                Ok(n) => mpress_par::set_jobs(n),
                Err(_) => {
                    eprintln!("error: --jobs expects a non-negative integer, got {v:?}");
                    std::process::exit(2);
                }
            }
        } else if arg == "--help" || arg == "-h" {
            println!("usage: {bin} [--jobs N]");
            println!();
            println!("  --jobs N   worker threads for parallel plan search and sweeps");
            println!("             (0 = auto). Defaults to the MPRESS_JOBS environment");
            println!("             variable, else the machine's available cores.");
            std::process::exit(0);
        } else {
            eprintln!("error: unknown flag {arg:?} (see --help)");
            std::process::exit(2);
        }
    }
}

//! Experiment harness for the MPress reproduction.
//!
//! One function per table/figure of the paper's evaluation, each returning
//! a printable [`Table`] with the same rows/series the paper reports. The
//! `exp_*` binaries print them; `benches/experiments.rs` times the
//! underlying machinery with Criterion.
//!
//! | paper artifact | function |
//! |---|---|
//! | Fig. 1 (schedule timelines)            | [`experiments::fig1`] |
//! | Table I (memory breakdown %)           | [`experiments::table1`] |
//! | Fig. 2 (per-device imbalance)          | [`experiments::fig2`] |
//! | Fig. 4 (link bandwidth vs. size)       | [`experiments::fig4`] |
//! | Table II (memory demands)              | [`experiments::table2`] |
//! | Fig. 7 (Bert TFLOPS, 5 systems)        | [`experiments::fig7`] |
//! | Fig. 8a/8b (GPT TFLOPS, 5 systems)     | [`experiments::fig8`] |
//! | Fig. 9 (mapping/striping ablation)     | [`experiments::fig9`] |
//! | Table III (per-tensor technique costs) | [`experiments::table3`] |
//! | Table IV (chosen strategies)           | [`experiments::table4`] |
//! | §II-D scalars                          | [`experiments::sec2d`] |

pub mod experiments;
pub mod jobs;
pub mod table;

pub use table::Table;

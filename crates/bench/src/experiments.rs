//! One function per paper artifact.

use crate::jobs::{bert_job, gpt_job, tflops_cell, SystemConfig};
use crate::table::Table;
use mpress::{
    GraceHopperNode, GraceHopperProjection, Mpress, OptimizationSet, PlannerConfig, Profile,
    TensorClassKind,
};
use mpress_baselines::{MegatronBaseline, ZeroBaseline, ZeroVariant};
use mpress_compaction::{CostModel, StripePlan, Technique};
use mpress_hw::{BandwidthCurve, Bytes, DeviceId, Machine, Topology};
use mpress_model::{zoo, ModelMemory, PrecisionPolicy, TransformerConfig};
use mpress_pipeline::{timeline, PartitionGoal, PipelineJob, ScheduleKind, StagePartition};

/// Fig. 1 — PipeDream and DAPPLE schedule timelines with in-flight counts
/// (3 workers, 6 microbatches, as drawn in the paper).
pub fn fig1() -> String {
    let mut out = String::new();
    for kind in [ScheduleKind::PipeDream, ScheduleKind::Dapple] {
        out.push_str(&format!("--- {kind} ---\n"));
        out.push_str(&timeline::render(kind, 3, 6));
        out.push_str(&timeline::render_in_flight(kind, 3, 6));
    }
    out
}

/// Table I — GPU memory percentage by model-data category.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table I: memory consumption by data type (%)",
        &["model", "activation", "optimizer", "params+grads"],
    );
    // Average in-flight activation sets across an 8-stage 1F1B pipeline:
    // sum_{i}(8-i)/8 = 4.5. Bert is measured at microbatch 2 — the setting
    // at which PipeDream actually trains models of this scale (Fig. 2) —
    // since at microbatch 12 its activations dwarf everything else.
    let cases: [(TransformerConfig, usize, PrecisionPolicy); 2] = [
        (zoo::bert_0_64b(), 2, PrecisionPolicy::mixed()),
        (
            zoo::gpt_5_3b(),
            zoo::GPT_MICROBATCH,
            PrecisionPolicy::mixed(),
        ),
    ];
    for (model, mb, policy) in cases {
        let mm = ModelMemory::of(&model, mb, &policy);
        let (act, opt, pg) = mm.category_percentages(4.5);
        t.push(vec![
            model.name().to_owned(),
            format!("{act:.0}%"),
            format!("{opt:.0}%"),
            format!("{pg:.0}%"),
        ]);
    }
    t
}

/// Fig. 2 — per-device memory when training Bert-1.67B under PipeDream
/// (microbatch 2) and DAPPLE (microbatch 12).
pub fn fig2() -> Table {
    let mut t = Table::new(
        "Fig. 2: per-device GPU memory, Bert-1.67B (GiB)",
        &[
            "system", "GPU0", "GPU1", "GPU2", "GPU3", "GPU4", "GPU5", "GPU6", "GPU7", "max/min",
        ],
    );
    for (kind, mb, policy) in [
        (ScheduleKind::PipeDream, 2, PrecisionPolicy::full()),
        (ScheduleKind::Dapple, 12, PrecisionPolicy::mixed()),
    ] {
        let job = PipelineJob::builder()
            .model(zoo::bert_1_67b())
            .machine(Machine::dgx1())
            .schedule(kind)
            .microbatch_size(mb)
            .microbatches(crate::jobs::WINDOW_MICROBATCHES)
            .precision(policy)
            .build()
            .expect("valid");
        let demands = job.memory_demands();
        let mut row = vec![format!("{kind} (mb={mb})")];
        row.extend(
            demands
                .per_stage_peak
                .iter()
                .map(|b| format!("{:.1}", b.as_gib_f64())),
        );
        row.push(format!("{:.1}x", demands.imbalance_ratio()));
        t.push(row);
    }
    t
}

/// Fig. 4 — aggregated unidirectional bandwidth vs. transfer size for
/// PCIe and 2/4/6-lane NVLink aggregates (GB/s).
pub fn fig4() -> Table {
    let mut t = Table::new(
        "Fig. 4: effective unidirectional bandwidth (GB/s)",
        &["size", "PCIe", "NV2", "NV4", "NV6"],
    );
    let channels = [
        BandwidthCurve::pcie3_x16(),
        BandwidthCurve::nvlink_lanes(2),
        BandwidthCurve::nvlink_lanes(4),
        BandwidthCurve::nvlink_lanes(6),
    ];
    for mib in [1u64, 4, 16, 64, 256, 1024] {
        let n = Bytes::mib(mib);
        let mut row = vec![format!("{n}")];
        for c in &channels {
            row.push(format!("{:.1}", c.effective_bandwidth(n) / 1e9));
        }
        t.push(row);
    }
    t
}

/// Table II — memory demands of every model variant (GB): total,
/// per-stage max, per-stage min.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table II: GPU memory demands (GiB)",
        &["job", "config", "total", "per-stage max", "per-stage min"],
    );
    for model in zoo::bert_variants() {
        let job = bert_job(model.clone(), Machine::dgx1());
        let d = job.memory_demands();
        t.push(vec![
            "Bert+PipeDream".into(),
            model.name().to_owned(),
            format!("{:.1}", d.total().as_gib_f64()),
            format!("{:.1}", d.max_stage().as_gib_f64()),
            format!("{:.1}", d.min_stage().as_gib_f64()),
        ]);
    }
    for model in zoo::gpt_variants() {
        let job = gpt_job(model.clone(), Machine::dgx1());
        let d = job.memory_demands();
        t.push(vec![
            "GPT+DAPPLE".into(),
            model.name().to_owned(),
            format!("{:.1}", d.total().as_gib_f64()),
            format!("{:.1}", d.max_stage().as_gib_f64()),
            format!("{:.1}", d.min_stage().as_gib_f64()),
        ]);
    }
    t
}

/// Fig. 7 — Bert training performance (aggregate TFLOPS, "OOM" marks) of
/// the five systems on DGX-1.
pub fn fig7() -> Table {
    let systems = [
        SystemConfig::Plain,
        SystemConfig::GpuCpuSwap,
        SystemConfig::Recomputation,
        SystemConfig::MpressD2dOnly,
        SystemConfig::Mpress,
    ];
    let mut t = Table::new(
        "Fig. 7: Bert on DGX-1, aggregate TFLOPS (PipeDream host)",
        &[
            "model",
            SystemConfig::Plain.label(),
            SystemConfig::GpuCpuSwap.label(),
            SystemConfig::Recomputation.label(),
            SystemConfig::MpressD2dOnly.label(),
            SystemConfig::Mpress.label(),
        ],
    );
    // Every (model, system) cell is an independent plan-and-simulate run;
    // flatten the grid and let the work pool chew through it. Results come
    // back in input order, so the table is identical at any --jobs.
    let models = zoo::bert_variants();
    let cells: Vec<(usize, usize)> = (0..models.len())
        .flat_map(|m| (0..systems.len()).map(move |s| (m, s)))
        .collect();
    let results = mpress_par::par_map(&cells, |&(m, s)| {
        let job = bert_job(models[m].clone(), Machine::dgx1());
        tflops_cell(systems[s].run(job))
    });
    for (m, model) in models.iter().enumerate() {
        let mut row = vec![model.name().to_owned()];
        row.extend_from_slice(&results[m * systems.len()..(m + 1) * systems.len()]);
        t.push(row);
    }
    t
}

/// Fig. 8 — GPT training performance of DAPPLE, DAPPLE+Recomputation, the
/// ZeRO baselines and MPress, on the chosen machine (8a: DGX-1, 8b:
/// DGX-2).
pub fn fig8(machine: Machine) -> Table {
    let mut t = Table::new(
        format!("Fig. 8: GPT on {}, aggregate TFLOPS", machine.name()),
        &[
            "model",
            "dapple",
            "dapple+recomp",
            "zero-offload",
            "zero-infinity",
            "mpress",
        ],
    );
    // One parallel task per model row; row order is preserved.
    let models = zoo::gpt_variants();
    let rows = mpress_par::par_map(&models, |model| {
        let mut row = vec![model.name().to_owned()];
        for sys in [SystemConfig::Plain, SystemConfig::Recomputation] {
            let job = gpt_job(model.clone(), machine.clone());
            row.push(tflops_cell(sys.run(job)));
        }
        for variant in [ZeroVariant::Offload, ZeroVariant::Infinity] {
            let report = ZeroBaseline::new(machine.clone(), model.clone(), variant)
                .microbatch_size(zoo::GPT_MICROBATCH)
                .accumulation(crate::jobs::WINDOW_MICROBATCHES / machine.gpu_count())
                .report();
            row.push(tflops_cell(report.fits.then_some(report.tflops)));
        }
        let job = gpt_job(model.clone(), machine.clone());
        row.push(tflops_cell(SystemConfig::Mpress.run(job)));
        row
    });
    for row in rows {
        t.push(row);
    }
    t
}

/// Fig. 9 — impact of device mapping and data striping on MPress's D2D
/// swap (normalized to the no-mapping/no-striping default).
///
/// The paper measures GPT-15.4B; in this reproduction's calibration the
/// emulator-driven planner prefers recomputation there, which would make
/// the ablation a no-op. We therefore ablate on the job where D2D is
/// load-bearing — Bert-0.64B, which stand-alone D2D carries (Fig. 7's
/// "medium size") — and additionally report the paper's GPT-15.4B row.
pub fn fig9() -> Table {
    let mut t = Table::new(
        "Fig. 9: device-mapping & striping ablation (normalized; D2D round trip in ms)",
        &[
            "job",
            "machine",
            "default",
            "+device mapping",
            "+data striping",
            "rt unstriped",
            "rt striped",
        ],
    );
    fn bert_d2d(machine: Machine) -> PipelineJob {
        bert_job(zoo::bert_0_64b(), machine)
    }
    fn gpt_full(machine: Machine) -> PipelineJob {
        gpt_job(zoo::gpt_15_4b(), machine)
    }
    type JobOf = fn(Machine) -> PipelineJob;
    let cases: Vec<(&str, Machine, JobOf, OptimizationSet)> = vec![
        (
            "Bert-0.64B (D2D-only)",
            Machine::dgx1(),
            bert_d2d,
            OptimizationSet::d2d_only(),
        ),
        (
            "Bert-0.64B (D2D-only)",
            Machine::dgx2(),
            bert_d2d,
            OptimizationSet::d2d_only(),
        ),
        (
            "GPT-15.4B (full)",
            Machine::dgx1(),
            gpt_full,
            OptimizationSet::all(),
        ),
        (
            "GPT-15.4B (full)",
            Machine::dgx2(),
            gpt_full,
            OptimizationSet::all(),
        ),
    ];
    let run_case =
        |label: &str, machine: &Machine, job_of: JobOf, opts: OptimizationSet| -> Vec<String> {
            // Returns (throughput, mean D2D round-trip seconds).
            let run = |mapping: bool, striping: bool| -> (Option<f64>, Option<f64>) {
                let mut cfg = PlannerConfig::default();
                cfg.optimizations = opts;
                cfg.mapping_search = mapping;
                cfg.striping = striping;
                let mpress = Mpress::builder()
                    .job(job_of(machine.clone()))
                    .planner_config(cfg)
                    .build();
                let report = mpress.train().expect("valid inputs");
                let (plan, _) = mpress.plan().expect("valid inputs");
                let rts: Vec<f64> = plan
                    .instrumentation
                    .iter()
                    .filter_map(|(_, d)| match d {
                        mpress_compaction::MemoryDirective::SwapD2d(stripe) => {
                            Some(stripe.round_trip_time())
                        }
                        _ => None,
                    })
                    .collect();
                let mean_rt = (!rts.is_empty()).then(|| rts.iter().sum::<f64>() / rts.len() as f64);
                (report.succeeded().then_some(report.tflops), mean_rt)
            };
            let (base, _) = run(false, false);
            // Round trips are compared under the *same* (mapped) plan so the
            // two columns isolate striping alone.
            let (mapped, rt_unstriped) = run(true, false);
            let (striped, rt_striped) = run(true, true);
            // Normalize to the first configuration that fits (identity
            // mapping can outright OOM a D2D-only job — the strongest form of
            // the mapping effect).
            let reference = base.or(mapped).or(striped);
            let norm = |v: Option<f64>| match (v, reference) {
                (Some(x), Some(b)) => format!("{:.3}", x / b),
                _ => "OOM".to_owned(),
            };
            let rt_cell = |rt: Option<f64>| match rt {
                Some(v) => format!("{:.1}", v * 1e3),
                None => "-".to_owned(),
            };
            vec![
                label.to_owned(),
                machine.name().to_owned(),
                norm(base),
                norm(mapped),
                norm(striped),
                rt_cell(rt_unstriped),
                rt_cell(rt_striped),
            ]
        };
    let rows = mpress_par::par_map(&cases, |(label, machine, job_of, opts)| {
        run_case(label, machine, *job_of, *opts)
    });
    for row in rows {
        t.push(row);
    }
    t
}

/// Table III — time cost (ms) of the three memory-reduction techniques on
/// sampled tensors of Bert-1.67B and GPT-10.3B, plus their live intervals.
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table III: technique time costs on sampled tensors (ms)",
        &[
            "model",
            "tensor",
            "size",
            "live interval",
            "recompute",
            "gpu-cpu swap",
            "d2d swap (4 lanes)",
        ],
    );
    let machine = Machine::dgx1();
    let cost = CostModel::new(machine.clone());
    let mut sample = |name: &str, job: PipelineJob| {
        let lowered = job.lower().expect("valid");
        let profile = Profile::collect(&machine, &job, &lowered).expect("profiling succeeds");
        // The first layer of stage 0 (long interval), a mid-stage layer
        // (medium) and the final stage's last layer (short — its backward
        // starts right after its forward), mirroring the paper's t1..t6
        // spread.
        let n_stages = lowered.graph.n_stages();
        let picks = [(0usize, false), (n_stages / 2, false), (n_stages - 1, true)];
        for (idx, (stage, last_layer)) in picks.into_iter().enumerate() {
            let classes: Vec<_> = profile
                .stage_classes(stage)
                .filter(|c| matches!(c.kind, TensorClassKind::Activation { layer: Some(_) }))
                .collect();
            let class = if last_layer {
                classes.last().copied()
            } else {
                classes.first().copied()
            };
            let Some(class) = class else { continue };
            let bytes = class.bytes_per_instance;
            // Four NVLink lanes, as the paper's Table III footnote states.
            let stripe = StripePlan::weighted(bytes, &[(DeviceId(3), 2), (DeviceId(4), 2)]);
            let (rec, host, d2d) = cost.table3_row(bytes, class.recompute_time, &stripe);
            t.push(vec![
                name.to_owned(),
                format!("t{}", idx + 1),
                format!("{bytes}"),
                format!("{:.0}", class.live_interval * 1e3),
                format!("{:.0}", rec * 1e3),
                format!("{:.0}", host * 1e3),
                format!("{:.0}", d2d * 1e3),
            ]);
        }
    };
    sample("Bert-1.67B", bert_job(zoo::bert_1_67b(), machine.clone()));
    sample("GPT-10.3B", gpt_job(zoo::gpt_10_3b(), machine.clone()));
    t
}

/// Table IV — strategies chosen by MPress and per-technique memory-saving
/// contributions for four pressured jobs.
pub fn table4() -> Table {
    let mut t = Table::new(
        "Table IV: strategies chosen by MPress (stages; share of savings)",
        &["job", "recomputation", "gpu-cpu swap", "d2d swap"],
    );
    type JobThunk = fn() -> PipelineJob;
    let cases: Vec<(&str, JobThunk)> = vec![
        ("Bert-1.67B", || {
            bert_job(zoo::bert_1_67b(), Machine::dgx1())
        }),
        ("Bert-6.2B", || bert_job(zoo::bert_6_2b(), Machine::dgx1())),
        ("GPT-10.3B", || gpt_job(zoo::gpt_10_3b(), Machine::dgx1())),
        ("GPT-20.4B", || gpt_job(zoo::gpt_20_4b(), Machine::dgx1())),
    ];
    let rows = mpress_par::par_map(&cases, |&(name, job_of)| {
        let mpress = Mpress::builder().job(job_of()).build();
        let (plan, lowered) = mpress.plan().expect("planning succeeds");
        let savings = plan.savings(&lowered);
        let stages = plan.stages(&lowered);
        let total: f64 = savings.values().map(|b| b.as_f64()).sum();
        let cell = |tech: Technique| -> String {
            let bytes = savings.get(&tech).copied().unwrap_or(Bytes::ZERO);
            if bytes.is_zero() || total == 0.0 {
                return "N/A (0%)".to_owned();
            }
            let st = stages.get(&tech).cloned().unwrap_or_default();
            let span = match (st.first(), st.last()) {
                (Some(a), Some(b)) if a != b => format!("stage {a}-{b}"),
                (Some(a), _) => format!("stage {a}"),
                _ => "-".to_owned(),
            };
            format!(
                "{span}; {:.1} GiB ({:.0}%)",
                bytes.as_gib_f64(),
                100.0 * bytes.as_f64() / total
            )
        };
        vec![
            name.to_owned(),
            cell(Technique::Recompute),
            cell(Technique::GpuCpuSwap),
            cell(Technique::D2dSwap),
        ]
    });
    for row in rows {
        t.push(row);
    }
    t
}

/// §V — the Grace-Hopper projection, recomputed from this reproduction's
/// models.
pub fn sec5() -> Table {
    let mut t = Table::new(
        "Sec. V: Grace-Hopper projection (GPT-3 175B)",
        &["quantity", "paper", "measured"],
    );
    let p = GraceHopperProjection::compute(&GraceHopperNode::default(), 2);
    t.push(vec![
        "175B still OOMs on 96+512 GB/GPU".into(),
        "yes".into(),
        if p.still_oom { "yes" } else { "no" }.into(),
    ]);
    t.push(vec![
        "bandwidth to hide CPU-side swap".into(),
        ">140 GB/s".into(),
        format!("{:.0} GB/s", p.bandwidth_to_hide_swap / 1e9),
    ]);
    t.push(vec![
        "recompute waste D2D recovers".into(),
        "25%".into(),
        format!("{:.0}%", 100.0 * p.recompute_waste),
    ]);
    t.push(vec![
        "exposed-swap slowdown D2D avoids".into(),
        "13%".into(),
        format!("{:.0}%", 100.0 * p.exposed_swap_slowdown),
    ]);
    t
}

/// Extension — design-choice ablations DESIGN.md calls out, all on
/// GPT-10.3B/DGX-1: emulator-verified refinement, the PCIe channel
/// budget, and the GPipe vs 1F1B schedule trade-off.
pub fn ablations() -> Table {
    let mut t = Table::new(
        "Ablations: planner & schedule design choices (GPT-10.3B, DGX-1)",
        &["configuration", "tflops", "note"],
    );
    let run_cfg = |cfg: PlannerConfig| -> Option<f64> {
        let job = gpt_job(zoo::gpt_10_3b(), Machine::dgx1());
        let report = Mpress::builder()
            .job(job)
            .planner_config(cfg)
            .build()
            .train()
            .expect("valid inputs");
        report.succeeded().then_some(report.tflops)
    };
    let with = |tweak: fn(&mut PlannerConfig)| {
        let mut cfg = PlannerConfig::default();
        tweak(&mut cfg);
        cfg
    };
    let cfg_cases: [(&str, &str, PlannerConfig); 4] = [
        ("full planner", "reference", PlannerConfig::default()),
        (
            "no emulator refinement",
            "greedy initial assignment only",
            with(|c| c.refine_iters = 0),
        ),
        (
            "no device-mapping search",
            "identity stage placement",
            with(|c| c.mapping_search = false),
        ),
        (
            "no data striping",
            "single-donor D2D transfers",
            with(|c| c.striping = false),
        ),
    ];
    let results = mpress_par::par_map(&cfg_cases, |&(_, _, cfg)| run_cfg(cfg));
    for ((label, note, _), tflops) in cfg_cases.iter().zip(&results) {
        t.push(vec![(*label).into(), tflops_cell(*tflops), (*note).into()]);
    }
    // Striping policy on the asymmetric fabric: GPU0 exporting the
    // Table III Bert tensor to its neighbours (lanes 2/1/1).
    let donors = [(DeviceId(3), 2), (DeviceId(1), 1), (DeviceId(2), 1)];
    let tensor = Bytes::mib(1444);
    for (label, plan) in [
        (
            "single-donor stripe",
            StripePlan::single(tensor, DeviceId(3), 2),
        ),
        ("equal striping", StripePlan::equal_over(tensor, &donors)),
        ("weighted striping", StripePlan::weighted(tensor, &donors)),
    ] {
        t.push(vec![
            label.into(),
            "-".into(),
            format!(
                "1.41 GiB D2D round trip {:.1} ms",
                plan.round_trip_time() * 1e3
            ),
        ]);
    }
    // Schedule trade-off: GPipe holds every microbatch's activations.
    let sched_rows = mpress_par::par_map(&[ScheduleKind::Dapple, ScheduleKind::GPipe], |&kind| {
        let job = PipelineJob::builder()
            .model(zoo::gpt_5_3b())
            .machine(Machine::dgx1())
            .schedule(kind)
            .microbatch_size(zoo::GPT_MICROBATCH)
            .microbatches(crate::jobs::WINDOW_MICROBATCHES)
            .build()
            .expect("valid");
        let demand = job.memory_demands().max_stage();
        let report = Mpress::builder()
            .job(job)
            .build()
            .train()
            .expect("valid inputs");
        vec![
            format!("{kind} schedule (GPT-5.3B)"),
            tflops_cell(report.succeeded().then_some(report.tflops)),
            format!("hottest stage demands {:.1} GiB", demand.as_gib_f64()),
        ]
    });
    for row in sched_rows {
        t.push(row);
    }
    t
}

/// Extension — sensitivity sweeps over hardware parameters: how MPress's
/// throughput on a pressured job responds to PCIe bandwidth (the GPU-CPU
/// swap channel) and to the NVLink lane budget (the D2D channel), plus
/// the window-length sweep that shows pipeline-bubble amortization.
pub fn sweeps() -> Table {
    let mut t = Table::new(
        "Sensitivity sweeps (GPT-10.3B on DGX-1-class hardware)",
        &["sweep", "value", "mpress tflops"],
    );
    let run_machine = |machine: Machine, microbatches: usize| -> Option<f64> {
        let job = PipelineJob::builder()
            .model(zoo::gpt_10_3b())
            .machine(machine)
            .schedule(ScheduleKind::Dapple)
            .microbatch_size(zoo::GPT_MICROBATCH)
            .microbatches(microbatches)
            .build()
            .expect("valid");
        let report = Mpress::builder()
            .job(job)
            .refine_iters(8)
            .build()
            .train()
            .expect("valid inputs");
        report.succeeded().then_some(report.tflops)
    };

    // Flatten all three sweeps into one case list so the work pool keeps
    // every worker busy across sweep boundaries.
    let mut cases: Vec<(String, String, Machine, usize)> = Vec::new();
    // PCIe bandwidth sweep: the GPU-CPU swap channel.
    for gbps in [6.0, 12.0, 24.0] {
        let machine = Machine::builder()
            .name(format!("dgx1-pcie{gbps:.0}"))
            .pcie(BandwidthCurve::new(gbps * 1e9, 20e-6))
            .build();
        cases.push((
            "PCIe bandwidth".into(),
            format!("{gbps:.0} GB/s"),
            machine,
            crate::jobs::WINDOW_MICROBATCHES,
        ));
    }
    // Topology sweep: asymmetric cube-mesh vs. switched all-to-all.
    for (label, topo) in [
        ("DGX-1 cube-mesh", Topology::dgx1()),
        ("NVSwitch", Topology::dgx2()),
    ] {
        let machine = Machine::builder()
            .name(format!("dgx1-{label}"))
            .topology(topo)
            .build();
        cases.push((
            "NVLink topology".into(),
            label.into(),
            machine,
            crate::jobs::WINDOW_MICROBATCHES,
        ));
    }
    // Window length: longer windows amortize the pipeline fill/drain.
    for m in [8usize, 16, 32] {
        cases.push((
            "window microbatches".into(),
            format!("{m}"),
            Machine::dgx1(),
            m,
        ));
    }
    let rows = mpress_par::par_map(&cases, |(sweep, value, machine, microbatches)| {
        vec![
            sweep.clone(),
            value.clone(),
            tflops_cell(run_machine(machine.clone(), *microbatches)),
        ]
    });
    for row in rows {
        t.push(row);
    }
    t
}

/// §I/§II motivation — intra-operator (Megatron-LM tensor parallel) vs.
/// inter-operator parallelism across interconnect classes.
///
/// Intra-op balances memory perfectly but pays per-layer all-reduces on
/// the critical path; inter-op moves only boundary tensors but piles
/// memory onto early stages — which MPress then repairs. The last column
/// is the aggregate traffic ratio (intra / inter) per microbatch.
pub fn motivation() -> Table {
    let mut t = Table::new(
        "Sec. II motivation: intra-op (Megatron TP-8) vs inter-op (DAPPLE/MPress)",
        &[
            "machine",
            "model",
            "megatron",
            "GiB/GPU",
            "dapple",
            "mpress",
            "traffic x",
        ],
    );
    let mut cases: Vec<(Machine, TransformerConfig)> = Vec::new();
    for machine in [Machine::dgx1(), Machine::dgx2(), Machine::commodity()] {
        for model in [zoo::gpt_5_3b(), zoo::gpt_10_3b()] {
            cases.push((machine.clone(), model));
        }
    }
    let rows = mpress_par::par_map(&cases, |(machine, model)| {
        let mega = MegatronBaseline::new(machine.clone(), model.clone())
            .microbatch_size(zoo::GPT_MICROBATCH)
            .microbatches(16)
            .report();
        let dapple = SystemConfig::Plain.run(gpt_job(model.clone(), machine.clone()));
        let mpress = SystemConfig::Mpress.run(gpt_job(model.clone(), machine.clone()));
        // Aggregate bytes per microbatch: every GPU's ring traffic vs
        // the pipeline's once-per-boundary sends.
        let intra = mega.comm_bytes_per_microbatch.as_u64() as f64 * machine.gpu_count() as f64;
        let inter = (machine.gpu_count() - 1) as f64
            * model
                .boundary_activation_bytes(zoo::GPT_MICROBATCH, &PrecisionPolicy::mixed())
                .as_u64() as f64;
        vec![
            machine.name().to_owned(),
            model.name().to_owned(),
            tflops_cell(mega.fits.then_some(mega.tflops)),
            format!("{:.1}", mega.gpu_bytes.as_u64() as f64 / (1 << 30) as f64),
            tflops_cell(dapple),
            tflops_cell(mpress),
            format!("{:.0}x", intra / inter),
        ]
    });
    for row in rows {
        t.push(row);
    }
    t
}

/// §II-D scalar claims: memory-balanced partitioning's throughput loss,
/// GPU-CPU swap's throughput loss at Bert-0.64B, and recomputation's
/// added training time.
pub fn sec2d() -> Table {
    let mut t = Table::new("Sec. II-D scalar claims", &["claim", "paper", "measured"]);

    // (1) Memory-balanced partitioning loses throughput vs.
    //     computation-balanced (paper: 34% loss).
    {
        let machine = Machine::dgx1();
        let mk = |goal: PartitionGoal| -> f64 {
            let model = zoo::bert_0_35b();
            let policy = PrecisionPolicy::full();
            let partition =
                StagePartition::balanced(&model, 8, zoo::BERT_MICROBATCH, &policy, goal);
            let job = PipelineJob::builder()
                .model(model)
                .machine(machine.clone())
                .schedule(ScheduleKind::PipeDream)
                .microbatch_size(zoo::BERT_MICROBATCH)
                .microbatches(crate::jobs::WINDOW_MICROBATCHES)
                .precision(policy)
                .partition(partition)
                .build()
                .expect("valid");
            let report = Mpress::builder()
                .job(job)
                .optimizations(OptimizationSet::none())
                .build()
                .train_unmodified()
                .expect("valid");
            report.throughput
        };
        let goals = [PartitionGoal::Computation, PartitionGoal::Memory];
        let thr = mpress_par::par_map(&goals, |&goal| mk(goal));
        let (comp, mem) = (thr[0], thr[1]);
        t.push(vec![
            "memory-balanced partition throughput loss".into(),
            "34%".into(),
            format!("{:.0}%", 100.0 * (1.0 - mem / comp)),
        ]);
    }

    // (2) GPU-CPU swap loses throughput vs. no-pressure ideal at
    //     Bert-0.64B (paper: 67%), and
    // (3) recomputation's extra training time (paper: up to 33%).
    // Three distinct Bert-0.64B runs feed both claims; run them once,
    // concurrently.
    {
        let systems = [
            SystemConfig::GpuCpuSwap,
            SystemConfig::Mpress,
            SystemConfig::Recomputation,
        ];
        let results = mpress_par::par_map(&systems, |&sys| {
            sys.run(bert_job(zoo::bert_0_64b(), Machine::dgx1()))
        });
        let swap = results[0].unwrap_or(0.0);
        let ideal = results[1].unwrap_or(f64::NAN);
        let rec = results[2].unwrap_or(0.0);
        t.push(vec![
            "GPU-CPU swap throughput loss @ Bert-0.64B".into(),
            "67%".into(),
            format!("{:.0}%", 100.0 * (1.0 - swap / ideal)),
        ]);
        t.push(vec![
            "recomputation extra training time".into(),
            "up to 33%".into(),
            format!("{:.0}%", 100.0 * (ideal / rec - 1.0)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_draws_both_schedules() {
        let art = fig1();
        assert!(art.contains("PipeDream") && art.contains("DAPPLE"));
        assert!(art.contains("worker 3"));
    }

    #[test]
    fn table1_has_both_models() {
        let t = table1();
        assert_eq!(t.rows.len(), 2);
        // Optimizer states and activations both dominate params+grads.
        for r in 0..2 {
            let pg: f64 = t
                .cell(r, "params+grads")
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap();
            let opt: f64 = t
                .cell(r, "optimizer")
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!(opt > pg);
        }
    }

    #[test]
    fn fig4_bandwidth_is_monotone_in_lanes() {
        let t = fig4();
        let last = t.rows.last().unwrap();
        let vals: Vec<f64> = last[1..].iter().map(|s| s.parse().unwrap()).collect();
        assert!(vals.windows(2).all(|w| w[0] < w[1]), "{vals:?}");
    }

    #[test]
    fn table2_covers_all_ten_variants() {
        let t = table2();
        assert_eq!(t.rows.len(), 10);
    }

    #[test]
    fn fig2_shows_imbalance() {
        let t = fig2();
        for row in &t.rows {
            let ratio: f64 = row.last().unwrap().trim_end_matches('x').parse().unwrap();
            assert!(ratio > 2.0, "{row:?}");
        }
    }
}

//! Plain-text result tables.

use std::fmt;

/// A printable experiment result: title, column headers, string rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Title line (includes the paper artifact id).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells, each row as long as `headers`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Looks up a cell by row index and header name.
    pub fn cell(&self, row: usize, header: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == header)?;
        self.rows.get(row).map(|r| r[col].as_str())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}")?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_prints_aligned() {
        let mut t = Table::new("Demo", &["model", "tflops"]);
        t.push(vec!["Bert-0.64B".into(), "63.3".into()]);
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("Bert-0.64B"));
        assert_eq!(t.cell(0, "tflops"), Some("63.3"));
        assert_eq!(t.cell(0, "missing"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }
}

//! Regenerates the paper's fig1 artifact.
fn main() {
    println!("{}", mpress_bench::experiments::fig1());
}

//! Regenerates the paper's fig1 artifact.
fn main() {
    mpress_bench::init_cli("exp_fig1");
    println!("{}", mpress_bench::experiments::fig1());
}

//! Deterministic load generator for `mpress-serve`; writes
//! `BENCH_serve.json`.
//!
//! Drives a daemon with a fixed menu of mixed requests (plan, check,
//! train, compare over several models) from several concurrent client
//! connections, then verifies the service contract end to end:
//!
//! * every response body for a given menu entry is **byte-identical**
//!   across clients and repetitions,
//! * each body is byte-identical to executing the same request
//!   **locally** through `mpress_api::exec` with a cold context,
//! * the process-global plan cache reports **hits > 0** (repeat
//!   requests were served from cache, not re-searched),
//! * the daemon counted **zero protocol errors**.
//!
//! Output schema:
//!
//! ```json
//! {"clients": 4, "requests": 240, "p50_ms": 1.2, "p99_ms": 40.0,
//!  "plan_cache_hits": 56, "plan_cache_misses": 5, "batches": 30,
//!  "dedup_hits": 12, "overloaded": 0, "protocol_errors": 0,
//!  "byte_identical": true}
//! ```
//!
//! Flags: `--out PATH` (default `BENCH_serve.json`), `--addr HOST:PORT`
//! (drive an external daemon; default starts one in-process on an
//! ephemeral port), `--clients N` (default 4), `--requests N` (total,
//! default 240), `--max-p99-ms MS` (gate: exit 1 when exceeded),
//! `--shutdown` (send a `shutdown` request when done — for external
//! daemons started by scripts).

use mpress_api::{execute, ApiContext, PlanRequest, Request, ServeError};
use mpress_serve::{Client, ServeConfig};
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// The fixed request menu every client cycles through. Weighted toward
/// `plan` (the batching/caching fast path) with one of each other kind.
fn menu() -> Vec<Request> {
    vec![
        Request::Plan(PlanRequest::new("bert-0.64b").microbatches(8)),
        Request::Plan(PlanRequest::new("bert-1.67b").microbatches(8)),
        Request::Plan(
            PlanRequest::new("bert-0.64b")
                .microbatches(8)
                .opts("recompute"),
        ),
        Request::Check(PlanRequest::new("bert-0.64b").microbatches(8)),
        Request::Train(PlanRequest::new("bert-0.35b").microbatches(8)),
        Request::Plan(
            PlanRequest::new("bert-0.64b")
                .microbatches(8)
                .machine("dgx2"),
        ),
    ]
}

struct Flags {
    out: String,
    addr: Option<String>,
    clients: usize,
    requests: usize,
    max_p99_ms: Option<f64>,
    shutdown: bool,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        out: "BENCH_serve.json".to_owned(),
        addr: None,
        clients: 4,
        requests: 240,
        max_p99_ms: None,
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} expects a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => flags.out = value(&mut args, "--out"),
            "--addr" => flags.addr = Some(value(&mut args, "--addr")),
            "--clients" => {
                flags.clients = value(&mut args, "--clients").parse().unwrap_or_else(|_| {
                    eprintln!("error: --clients expects an integer");
                    std::process::exit(2);
                })
            }
            "--requests" => {
                flags.requests = value(&mut args, "--requests").parse().unwrap_or_else(|_| {
                    eprintln!("error: --requests expects an integer");
                    std::process::exit(2);
                })
            }
            "--max-p99-ms" => {
                flags.max_p99_ms = Some(value(&mut args, "--max-p99-ms").parse().unwrap_or_else(
                    |_| {
                        eprintln!("error: --max-p99-ms expects a number");
                        std::process::exit(2);
                    },
                ))
            }
            "--shutdown" => flags.shutdown = true,
            "--help" | "-h" => {
                println!(
                    "usage: exp_bench_serve [--out PATH] [--addr HOST:PORT] [--clients N]\n\
                     \x20                      [--requests N] [--max-p99-ms MS] [--shutdown]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other:?} (see --help)");
                std::process::exit(2);
            }
        }
    }
    flags.clients = flags.clients.max(1);
    flags
}

fn percentile(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * pct / 100.0).ceil() as usize).saturating_sub(1);
    sorted[idx.min(sorted.len() - 1)]
}

fn body_string(result: &Result<(String, Value), ServeError>) -> String {
    match result {
        Ok((_, body)) => serde_json::to_string(body).expect("body reserializes"),
        Err(e) => format!("error:{}", e.code()),
    }
}

fn counter(stats: &Value, section: &str, name: &str) -> u64 {
    stats
        .get(section)
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .or_else(|| {
            stats
                .get(section)
                .and_then(|s| s.get(name))
                .and_then(Value::as_u64)
        })
        .unwrap_or(0)
}

fn main() {
    let flags = parse_flags();
    // Started when no --addr was given; kept alive until the end.
    let mut local_server = None;
    let addr = match &flags.addr {
        Some(a) => a.clone(),
        None => {
            let handle = mpress_serve::start(ServeConfig::default()).unwrap_or_else(|e| {
                eprintln!("error: starting in-process daemon: {e}");
                std::process::exit(1);
            });
            let addr = handle.addr().to_string();
            local_server = Some(handle);
            addr
        }
    };

    let menu = menu();
    let per_client = flags.requests.div_ceil(flags.clients);
    // menu index → response-body bytes seen, across all clients.
    let seen: Mutex<BTreeMap<usize, Vec<String>>> = Mutex::new(BTreeMap::new());
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for client_idx in 0..flags.clients {
            let (menu, addr) = (&menu, addr.as_str());
            let (seen, latencies) = (&seen, &latencies);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap_or_else(|e| {
                    eprintln!("error: connecting to {addr}: {e}");
                    std::process::exit(1);
                });
                for i in 0..per_client {
                    // Offset by client index so concurrent clients hit
                    // different entries at the same instant — and the
                    // same entries at other instants (dedup + cache).
                    let entry = (client_idx + i) % menu.len();
                    // Latency is measured client-side: the daemon itself
                    // is clock-free by design.
                    #[allow(clippy::disallowed_methods)]
                    let start = std::time::Instant::now();
                    let decoded = client.request(&menu[entry]).unwrap_or_else(|e| {
                        eprintln!("error: request failed: {e}");
                        std::process::exit(1);
                    });
                    let ms = start.elapsed().as_secs_f64() * 1e3;
                    latencies.lock().expect("latency lock").push(ms);
                    seen.lock()
                        .expect("seen lock")
                        .entry(entry)
                        .or_default()
                        .push(body_string(&decoded.result));
                }
            });
        }
    });

    // Contract 1: byte identity across clients and repetitions.
    let seen = seen.into_inner().expect("seen lock");
    let mut byte_identical = true;
    for (entry, bodies) in &seen {
        if bodies.windows(2).any(|w| w[0] != w[1]) {
            eprintln!("FAIL: menu entry {entry} produced differing response bodies");
            byte_identical = false;
        }
    }
    // Contract 2: byte identity against local execution (cold context).
    let local_ctx = ApiContext::new();
    for (entry, bodies) in &seen {
        let local = execute(&menu[*entry], &local_ctx)
            .map(|r| serde_json::to_string(&r.body_value()).expect("body reserializes"))
            .unwrap_or_else(|e| format!("error:{}", e.code()));
        if let Some(first) = bodies.first() {
            if *first != local {
                eprintln!("FAIL: menu entry {entry} daemon body differs from local execution");
                byte_identical = false;
            }
        }
    }

    // Service counters + cache statistics.
    let mut stats_client = Client::connect(&addr).unwrap_or_else(|e| {
        eprintln!("error: connecting for stats: {e}");
        std::process::exit(1);
    });
    let stats = match stats_client.request(&Request::Stats) {
        Ok(d) => match d.result {
            Ok((_, body)) => body,
            Err(e) => {
                eprintln!("error: stats query failed: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: stats query failed: {e}");
            std::process::exit(1);
        }
    };
    let plan_cache_hits = counter(&stats, "cache", "plan_hits");
    let plan_cache_misses = counter(&stats, "cache", "plan_misses");
    let batches = counter(&stats, "service", "serve.batches");
    let dedup_hits = counter(&stats, "service", "serve.dedup_hits");
    let overloaded = counter(&stats, "service", "serve.rejected.overloaded");
    let protocol_errors = counter(&stats, "service", "serve.request_errors.protocol");

    if flags.shutdown {
        let _ = stats_client.request(&Request::Shutdown);
    }
    if let Some(mut handle) = local_server.take() {
        handle.shutdown();
    }

    let mut lat = latencies.into_inner().expect("latency lock");
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = percentile(&lat, 50.0);
    let p99 = percentile(&lat, 99.0);

    let json = format!(
        "{{\"clients\": {}, \"requests\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"plan_cache_hits\": {plan_cache_hits}, \"plan_cache_misses\": {plan_cache_misses}, \
         \"batches\": {batches}, \"dedup_hits\": {dedup_hits}, \"overloaded\": {overloaded}, \
         \"protocol_errors\": {protocol_errors}, \"byte_identical\": {byte_identical}}}\n",
        flags.clients,
        lat.len(),
        p50,
        p99,
    );
    std::fs::write(&flags.out, &json).unwrap_or_else(|e| {
        eprintln!("error: writing {}: {e}", flags.out);
        std::process::exit(1);
    });
    print!("{json}");

    let mut failed = false;
    if !byte_identical {
        eprintln!("FAIL: responses were not byte-identical");
        failed = true;
    }
    if plan_cache_hits == 0 {
        eprintln!("FAIL: plan cache reported zero hits under repeat load");
        failed = true;
    }
    if protocol_errors > 0 {
        eprintln!("FAIL: daemon counted {protocol_errors} protocol errors");
        failed = true;
    }
    if let Some(max) = flags.max_p99_ms {
        if p99 > max {
            eprintln!("FAIL: p99 {p99:.3} ms exceeds the {max:.3} ms gate");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

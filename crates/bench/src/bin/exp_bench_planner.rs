//! Times one planner-heavy case and writes `BENCH_planner.json`.
//!
//! The case (Bert-1.67B on DGX-1, full MPress) exercises the portfolio
//! search, emulator-verified refinement and the emulation cache — the
//! paths the parallel search layer accelerates. Output schema:
//!
//! ```json
//! {"wall_s": 1.23, "jobs": 4, "emulator_runs": 57, "cache_hits": 12,
//!  "cache_hits_canonical": 3, "cache_hit_rate": 0.174, "prefilter_skips": 18,
//!  "verifier_rejections": 0, "bounds_pruned": 18, "bounds_certified_fit": 3,
//!  "delta_replays": 21, "windows_replayed": 84,
//!  "windows_total": 352, "peak_workers": 4, "steals": 6,
//!  "speculative_runs": 31, "speculation_wasted": 4, "bound_aborts": 12,
//!  "refinement_rounds": 9, "refine_candidates": [4, 4, 1]}
//! ```
//!
//! `"jobs"` is the *resolved* pool width the search actually ran with
//! (after the hardware clamp), not the requested `--jobs` value.
//!
//! Pass `--out PATH` to redirect (default `BENCH_planner.json` in the
//! working directory); `--jobs N` / `MPRESS_JOBS` select the pool size.
use mpress::Mpress;
use mpress_bench::jobs::bert_job;
use mpress_hw::Machine;
use mpress_model::zoo;

fn main() {
    let mut out_path = "BENCH_planner.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let jobs_value = if arg == "--jobs" {
            Some(args.next().unwrap_or_default())
        } else {
            arg.strip_prefix("--jobs=").map(str::to_owned)
        };
        if let Some(v) = jobs_value {
            match v.parse::<usize>() {
                Ok(n) => mpress_par::set_jobs(n),
                Err(_) => {
                    eprintln!("error: --jobs expects a non-negative integer, got {v:?}");
                    std::process::exit(2);
                }
            }
        } else if arg == "--out" {
            out_path = args.next().unwrap_or_else(|| {
                eprintln!("error: --out expects a path");
                std::process::exit(2);
            });
        } else if arg == "--help" || arg == "-h" {
            println!("usage: exp_bench_planner [--jobs N] [--out PATH]");
            println!();
            println!("  --jobs N    worker threads (0 = auto; MPRESS_JOBS equivalent)");
            println!("  --out PATH  where to write the JSON (default BENCH_planner.json)");
            std::process::exit(0);
        } else {
            eprintln!("error: unknown flag {arg:?} (see --help)");
            std::process::exit(2);
        }
    }

    // Wall-clock timing is this binary's whole purpose — the one
    // sanctioned exception to the workspace's no-clock rule.
    #[allow(clippy::disallowed_methods)]
    let start = std::time::Instant::now();
    let mpress = Mpress::builder()
        .job(bert_job(zoo::bert_1_67b(), Machine::dgx1()))
        .build();
    let (plan, _) = mpress.plan().expect("planning succeeds");
    let wall_s = start.elapsed().as_secs_f64();

    let candidates = plan
        .refine_candidates
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\"wall_s\": {:.3}, \"jobs\": {}, \"emulator_runs\": {}, \"cache_hits\": {}, \
         \"cache_hits_canonical\": {}, \"cache_hit_rate\": {:.4}, \"prefilter_skips\": {}, \
         \"verifier_rejections\": {}, \"bounds_pruned\": {}, \"bounds_certified_fit\": {}, \
         \"delta_replays\": {}, \"windows_replayed\": {}, \
         \"windows_total\": {}, \"peak_workers\": {}, \"steals\": {}, \
         \"speculative_runs\": {}, \"speculation_wasted\": {}, \"bound_aborts\": {}, \
         \"refinement_rounds\": {}, \"refine_candidates\": [{}]}}\n",
        wall_s,
        plan.search.jobs,
        plan.search.emulator_runs,
        plan.search.cache_hits,
        plan.search.cache_hits_canonical,
        plan.search.cache_hit_rate(),
        plan.search.prefilter_skips,
        plan.search.verifier_rejections,
        plan.search.bounds_pruned,
        plan.search.bounds_certified_fit,
        plan.search.delta_replays,
        plan.search.windows_replayed,
        plan.search.windows_total,
        plan.search.peak_workers,
        plan.search.steals,
        plan.search.speculative_runs,
        plan.search.speculation_wasted,
        plan.search.bound_aborts,
        plan.refinement_rounds,
        candidates
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1);
    });
    print!("{json}");
    eprintln!(
        "planner wall {wall_s:.3}s at jobs={} (peak {} workers, {} steals), \
         {} emulator runs, {} cache hits (+{} canonical), {} bounds prunes, \
         {} delta replays, {} speculative runs ({} wasted), {} bound aborts \
         -> {out_path}",
        plan.search.jobs,
        plan.search.peak_workers,
        plan.search.steals,
        plan.search.emulator_runs,
        plan.search.cache_hits,
        plan.search.cache_hits_canonical,
        plan.search.bounds_pruned,
        plan.search.delta_replays,
        plan.search.speculative_runs,
        plan.search.speculation_wasted,
        plan.search.bound_aborts
    );
}

//! Regenerates the paper's fig2 artifact.
fn main() {
    mpress_bench::init_cli("exp_fig2");
    println!("{}", mpress_bench::experiments::fig2());
}

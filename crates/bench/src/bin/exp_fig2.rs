//! Regenerates the paper's fig2 artifact.
fn main() {
    println!("{}", mpress_bench::experiments::fig2());
}

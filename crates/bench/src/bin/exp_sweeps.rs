//! Runs the hardware-sensitivity sweeps.
fn main() {
    mpress_bench::init_cli("exp_sweeps");
    println!("{}", mpress_bench::experiments::sweeps());
}

//! Runs the hardware-sensitivity sweeps.
fn main() {
    println!("{}", mpress_bench::experiments::sweeps());
}

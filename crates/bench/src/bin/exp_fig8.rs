//! Regenerates the paper's Fig. 8 (both machines).
fn main() {
    mpress_bench::init_cli("exp_fig8");
    println!(
        "{}",
        mpress_bench::experiments::fig8(mpress_hw::Machine::dgx1())
    );
    println!(
        "{}",
        mpress_bench::experiments::fig8(mpress_hw::Machine::dgx2())
    );
}

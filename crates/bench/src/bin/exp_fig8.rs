//! Regenerates the paper's Fig. 8 (both machines).
fn main() {
    println!("{}", mpress_bench::experiments::fig8(mpress_hw::Machine::dgx1()));
    println!("{}", mpress_bench::experiments::fig8(mpress_hw::Machine::dgx2()));
}

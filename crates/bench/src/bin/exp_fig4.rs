//! Regenerates the paper's fig4 artifact.
fn main() {
    println!("{}", mpress_bench::experiments::fig4());
}

//! Regenerates the paper's fig4 artifact.
fn main() {
    mpress_bench::init_cli("exp_fig4");
    println!("{}", mpress_bench::experiments::fig4());
}

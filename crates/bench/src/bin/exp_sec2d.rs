//! Regenerates the paper's sec2d artifact.
fn main() {
    println!("{}", mpress_bench::experiments::sec2d());
}

//! Regenerates the paper's sec2d artifact.
fn main() {
    mpress_bench::init_cli("exp_sec2d");
    println!("{}", mpress_bench::experiments::sec2d());
}

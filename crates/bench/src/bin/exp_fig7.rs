//! Regenerates the paper's fig7 artifact.
fn main() {
    mpress_bench::init_cli("exp_fig7");
    println!("{}", mpress_bench::experiments::fig7());
}

//! Regenerates the paper's fig7 artifact.
fn main() {
    println!("{}", mpress_bench::experiments::fig7());
}

//! Checks that stdin is a JSON document that survives a parse →
//! serialize → parse round trip (`scripts/verify.sh` pipes
//! `mpress-cli train --metrics=json` through this).
//!
//! Exit status: 0 when the round trip is lossless, 1 on a parse failure
//! or a mismatch, 2 when stdin cannot be read.

use std::io::Read as _;

fn main() {
    let mut input = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("error: reading stdin: {e}");
        std::process::exit(2);
    }
    let first: serde_json::Value = match serde_json::from_str(&input) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: stdin is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    let reserialized = match serde_json::to_string(&first) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: re-serializing parsed document: {e}");
            std::process::exit(1);
        }
    };
    let second: serde_json::Value = match serde_json::from_str(&reserialized) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: re-parsing serialized document: {e}");
            std::process::exit(1);
        }
    };
    if first != second {
        eprintln!("error: document changed across the round trip");
        std::process::exit(1);
    }
    println!("json round trip ok ({} bytes)", input.len());
}

//! Regenerates the paper's table4 artifact.
fn main() {
    mpress_bench::init_cli("exp_table4");
    println!("{}", mpress_bench::experiments::table4());
}

//! Regenerates the paper's table4 artifact.
fn main() {
    println!("{}", mpress_bench::experiments::table4());
}

//! Regenerates the paper's fig9 artifact.
fn main() {
    mpress_bench::init_cli("exp_fig9");
    println!("{}", mpress_bench::experiments::fig9());
}

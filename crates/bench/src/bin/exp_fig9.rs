//! Regenerates the paper's fig9 artifact.
fn main() {
    println!("{}", mpress_bench::experiments::fig9());
}

//! Regenerates the paper's table1 artifact.
fn main() {
    mpress_bench::init_cli("exp_table1");
    println!("{}", mpress_bench::experiments::table1());
}

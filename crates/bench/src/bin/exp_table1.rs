//! Regenerates the paper's table1 artifact.
fn main() {
    println!("{}", mpress_bench::experiments::table1());
}

//! Soundness oracle for the certified-bounds pass; writes
//! `BENCH_bounds.json`.
//!
//! For every zoo model on both NVLink machines, the planner's chosen
//! plan and four directive-stripping mutations of it are (a) certified
//! by the abstract interpreter and (b) emulated by the engine, and the
//! emulated makespan and per-device peaks are checked against the
//! certified intervals:
//!
//! * `peak[d] <= hi[d]` and `makespan <= makespan_hi` on **every** run,
//!   OOM or not;
//! * `lo[d] <= peak[d]` and `makespan_lo <= makespan` on every run that
//!   completes without OOM (the lower bounds assume a completed
//!   schedule);
//! * a `certified-oom` verdict implies the engine actually reported an
//!   OOM, and `certified-fit` implies no *GPU-pool* OOM (host/NVMe
//!   overflow is outside the device-capacity claim).
//!
//! Any escape is printed to stderr and turns into a non-zero exit, so
//! `scripts/verify.sh` can gate on it. Output schema:
//!
//! ```json
//! {"wall_s": 1.23, "cases": 80, "violations": 0, "certified_fit": 31,
//!  "certified_oom": 12, "unknown": 37}
//! ```
//!
//! Pass `--out PATH` to redirect (default `BENCH_bounds.json`).
use mpress::Mpress;
use mpress_analyze::{BoundsAnalyzer, BoundsVerdict};
use mpress_bench::jobs::{bert_job, gpt_job};
use mpress_compaction::{InstrumentationPlan, MemoryDirective};
use mpress_hw::Machine;
use mpress_model::zoo;
use mpress_sim::{PoolKind, SimArena, Simulator};

/// Rebuilds `plan` keeping only the directives `keep` accepts. Dropping
/// a directive is always a valid plan spec (absence is the default), so
/// every mutation emulates without input errors.
fn filtered(
    plan: &InstrumentationPlan,
    keep: impl Fn(&MemoryDirective) -> bool,
) -> InstrumentationPlan {
    let mut out = InstrumentationPlan::new();
    for (t, d) in plan.iter() {
        if keep(d) {
            out.assign(t, d.clone());
        }
    }
    out
}

fn main() {
    let mut out_path = "BENCH_bounds.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            out_path = args.next().unwrap_or_else(|| {
                eprintln!("error: --out expects a path");
                std::process::exit(2);
            });
        } else if arg == "--help" || arg == "-h" {
            println!("usage: exp_bench_bounds [--out PATH]");
            println!();
            println!("  --out PATH  where to write the JSON (default BENCH_bounds.json)");
            std::process::exit(0);
        } else {
            eprintln!("error: unknown flag {arg:?} (see --help)");
            std::process::exit(2);
        }
    }

    // Wall-clock timing is reporting-only here, like the other bench
    // binaries — the oracle itself is deterministic.
    #[allow(clippy::disallowed_methods)]
    let start = std::time::Instant::now();

    let mut cases = 0usize;
    let mut violations = 0usize;
    let mut fit = 0usize;
    let mut oom_verdicts = 0usize;
    let mut unknown = 0usize;
    let mut arena = SimArena::new();

    for machine in [Machine::dgx1(), Machine::dgx2()] {
        let jobs: Vec<(String, mpress_pipeline::PipelineJob)> = zoo::bert_variants()
            .into_iter()
            .map(|m| (m.to_string(), bert_job(m, machine.clone())))
            .chain(
                zoo::gpt_variants()
                    .into_iter()
                    .map(|m| (m.to_string(), gpt_job(m, machine.clone()))),
            )
            .collect();
        for (name, job) in jobs {
            let mpress = Mpress::builder().job(job).build();
            let (plan, lowered) = mpress.plan().expect("planning succeeds");
            let graph = &lowered.graph;
            let analyzer = BoundsAnalyzer::new(mpress.machine(), graph);
            let mutations: [(&str, InstrumentationPlan); 5] = [
                ("chosen", plan.instrumentation.clone()),
                ("bare", InstrumentationPlan::new()),
                (
                    "no-d2d",
                    filtered(&plan.instrumentation, |d| {
                        !matches!(d, MemoryDirective::SwapD2d(_))
                    }),
                ),
                (
                    "no-host",
                    filtered(&plan.instrumentation, |d| {
                        !matches!(d, MemoryDirective::SwapToHost(_))
                    }),
                ),
                (
                    "no-recompute",
                    filtered(&plan.instrumentation, |d| {
                        !matches!(d, MemoryDirective::Recompute)
                    }),
                ),
            ];
            for (label, variant) in &mutations {
                cases += 1;
                let bounds = analyzer.certify_with_arena(variant, &plan.device_map, &mut arena);
                match bounds.residency.verdict {
                    BoundsVerdict::CertifiedFit => fit += 1,
                    BoundsVerdict::CertifiedOom => oom_verdicts += 1,
                    BoundsVerdict::Unknown => unknown += 1,
                }
                let sim = Simulator::new(mpress.machine(), graph, variant, plan.device_map.clone())
                    .run_in(&mut arena)
                    .expect("directive-stripping keeps the plan emulable");
                let case = format!("{name} on {} [{label}]", machine.name());
                let mut escape = |msg: String| {
                    violations += 1;
                    eprintln!("ESCAPE: {case}: {msg}");
                };
                if sim.makespan > bounds.makespan_hi * (1.0 + 1e-9) {
                    escape(format!(
                        "makespan {} above certified upper bound {}",
                        sim.makespan, bounds.makespan_hi
                    ));
                }
                for (d, peak) in sim.device_peak.iter().enumerate() {
                    if *peak > bounds.residency.hi[d] {
                        escape(format!(
                            "gpu{d} peak {peak} above certified upper bound {}",
                            bounds.residency.hi[d]
                        ));
                    }
                }
                if sim.oom.is_none() {
                    if sim.makespan < bounds.makespan_lo * (1.0 - 1e-9) {
                        escape(format!(
                            "makespan {} below certified lower bound {}",
                            sim.makespan, bounds.makespan_lo
                        ));
                    }
                    for (d, peak) in sim.device_peak.iter().enumerate() {
                        if *peak < bounds.residency.lo[d] {
                            escape(format!(
                                "gpu{d} peak {peak} below certified lower bound {}",
                                bounds.residency.lo[d]
                            ));
                        }
                    }
                }
                if bounds.residency.verdict == BoundsVerdict::CertifiedOom && sim.oom.is_none() {
                    escape("certified-oom verdict but the run completed".to_owned());
                }
                if bounds.residency.verdict == BoundsVerdict::CertifiedFit
                    && sim.oom.as_ref().is_some_and(|e| e.pool == PoolKind::Gpu)
                {
                    escape("certified-fit verdict but a GPU pool overflowed".to_owned());
                }
            }
        }
    }

    let wall_s = start.elapsed().as_secs_f64();
    let json = format!(
        "{{\"wall_s\": {wall_s:.3}, \"cases\": {cases}, \"violations\": {violations}, \
         \"certified_fit\": {fit}, \"certified_oom\": {oom_verdicts}, \"unknown\": {unknown}}}\n",
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1);
    });
    print!("{json}");
    eprintln!(
        "bounds oracle: {cases} cases, {violations} escapes \
         ({fit} certified-fit, {oom_verdicts} certified-oom, {unknown} unknown) -> {out_path}"
    );
    if violations > 0 {
        std::process::exit(1);
    }
}

//! Prints every paper artifact in sequence.
fn main() {
    println!("{}", mpress_bench::experiments::fig1());
    println!("{}", mpress_bench::experiments::table1());
    println!("{}", mpress_bench::experiments::fig2());
    println!("{}", mpress_bench::experiments::fig4());
    println!("{}", mpress_bench::experiments::table2());
    println!("{}", mpress_bench::experiments::fig7());
    println!("{}", mpress_bench::experiments::fig8(mpress_hw::Machine::dgx1()));
    println!("{}", mpress_bench::experiments::fig8(mpress_hw::Machine::dgx2()));
    println!("{}", mpress_bench::experiments::fig9());
    println!("{}", mpress_bench::experiments::table3());
    println!("{}", mpress_bench::experiments::table4());
    println!("{}", mpress_bench::experiments::motivation());
    println!("{}", mpress_bench::experiments::sec2d());
    println!("{}", mpress_bench::experiments::sec5());
    println!("{}", mpress_bench::experiments::ablations());
    println!("{}", mpress_bench::experiments::sweeps());
}

//! Prints every paper artifact in sequence.
//!
//! Artifacts are rendered concurrently through the shared work pool
//! (`--jobs N` / `MPRESS_JOBS`) but printed in the paper's order —
//! `par_map` returns results by input index, so the output is byte-for-
//! byte identical at any worker count.
use mpress_bench::experiments as exp;

fn main() {
    mpress_bench::init_cli("exp_all");
    type Artifact = fn() -> String;
    let artifacts: Vec<Artifact> = vec![
        || exp::fig1(),
        || exp::table1().to_string(),
        || exp::fig2().to_string(),
        || exp::fig4().to_string(),
        || exp::table2().to_string(),
        || exp::fig7().to_string(),
        || exp::fig8(mpress_hw::Machine::dgx1()).to_string(),
        || exp::fig8(mpress_hw::Machine::dgx2()).to_string(),
        || exp::fig9().to_string(),
        || exp::table3().to_string(),
        || exp::table4().to_string(),
        || exp::motivation().to_string(),
        || exp::sec2d().to_string(),
        || exp::sec5().to_string(),
        || exp::ablations().to_string(),
        || exp::sweeps().to_string(),
    ];
    for rendered in mpress_par::par_map(&artifacts, |f| f()) {
        println!("{rendered}");
    }
}

//! Regenerates the paper's Sec. V projection.
fn main() {
    mpress_bench::init_cli("exp_sec5");
    println!("{}", mpress_bench::experiments::sec5());
}

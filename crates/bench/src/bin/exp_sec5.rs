//! Regenerates the paper's Sec. V projection.
fn main() {
    println!("{}", mpress_bench::experiments::sec5());
}

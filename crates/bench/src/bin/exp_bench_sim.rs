//! Times the emulator fast path and writes `BENCH_sim.json`.
//!
//! Measurements on the Bert-1.67B × DGX-1 case:
//!
//! * steady-state emulation throughput through one reused [`SimArena`]
//!   (the planner's inner loop: the chosen plan re-simulated back to
//!   back),
//! * delta-replay throughput: the chosen plan is captured once as a
//!   [`RunBase`](mpress_sim::RunBase), then single-tensor swap
//!   retimings are re-emulated with `run_in_delta` — the shape of a
//!   refinement trial. Two cuts are timed: the mean over every
//!   candidate that takes the fast path (`delta_speedup_mean` — the
//!   divergence bound of an early-layer retiming forces most of the
//!   schedule to replay, so this averages modest), and the *frontier*
//!   eighth — the smallest-replay candidates, i.e. retimings of the
//!   latest-produced tensors, which replay only a short suffix
//!   (`delta_speedup` — the polish-phase trials the delta path exists
//!   for). `delta_speedup_peak` is the best single retiming timed
//!   alone: the shortest-suffix trial, bounding what the delta path
//!   delivers when the refinement loop polishes the schedule tail. `delta_fast_fraction` reports how many
//!   candidates take the fast path at all; the identity gate covers
//!   *every* candidate, fallbacks included,
//! * end-to-end plan-search wall clock at `jobs=1` and `jobs=8`,
//! * a prefilter transparency gate: planning with the analytic
//!   lower-bound prefilter on and off must choose the identical plan —
//!   any divergence exits nonzero so CI fails loudly,
//! * a delta identity gate: every delta replay must be byte-identical
//!   to the from-scratch report, or the binary exits nonzero,
//! * a parallel-search sanity gate: `jobs=8` wall must not exceed
//!   `jobs=1` wall by more than 10% (the serial-below-threshold cutoff
//!   keeps tiny batches inline).
//!
//! Output schema:
//!
//! ```json
//! {"emulate_ms": 0.91, "emulations_per_sec": 1098.9,
//!  "delta_emulate_ms": 0.09, "delta_emulations_per_sec": 11111.1,
//!  "delta_speedup": 10.1, "delta_speedup_peak": 12.3,
//!  "delta_speedup_mean": 2.1,
//!  "delta_fast_fraction": 0.78, "delta_identical": true,
//!  "plan_wall_s_jobs1": 0.061, "plan_wall_s_jobs8": 0.058,
//!  "prefilter_skips": 18, "prefilter_plan_identical": true}
//! ```
//!
//! Pass `--out PATH` to redirect (default `BENCH_sim.json` in the
//! working directory); `--min-eps N` fails the run (exit 1) when the
//! from-scratch `emulations_per_sec` falls below `N` — CI pins this to
//! a fraction of the checked-in baseline to catch regressions.
use mpress::Mpress;
use mpress_bench::jobs::bert_job;
use mpress_compaction::{HostTier, InstrumentationPlan, MemoryDirective};
use mpress_hw::Machine;
use mpress_model::zoo;
use mpress_sim::{SimArena, Simulator};

fn bench_system(prefilter: Option<bool>) -> Mpress {
    let builder = Mpress::builder().job(bert_job(zoo::bert_1_67b(), Machine::dgx1()));
    match prefilter {
        Some(on) => builder.prefilter(on).build(),
        None => builder.build(),
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut out_path = "BENCH_sim.json".to_owned();
    let mut min_eps: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            out_path = args.next().unwrap_or_else(|| {
                eprintln!("error: --out expects a path");
                std::process::exit(2);
            });
        } else if arg == "--min-eps" {
            let v = args.next().unwrap_or_default();
            match v.parse::<f64>() {
                Ok(n) if n >= 0.0 => min_eps = Some(n),
                _ => {
                    eprintln!("error: --min-eps expects a non-negative number, got {v:?}");
                    std::process::exit(2);
                }
            }
        } else if arg == "--help" || arg == "-h" {
            println!("usage: exp_bench_sim [--out PATH] [--min-eps N]");
            println!();
            println!("  --out PATH   where to write the JSON (default BENCH_sim.json)");
            println!("  --min-eps N  exit 1 if emulations_per_sec drops below N");
            std::process::exit(0);
        } else {
            eprintln!("error: unknown flag {arg:?} (see --help)");
            std::process::exit(2);
        }
    }

    // --- Steady-state emulation throughput (arena reuse) -----------------
    mpress_par::set_jobs(1);
    let mpress = bench_system(None);
    let (plan, lowered) = mpress.plan().expect("planning succeeds");
    let sim = Simulator::new(
        mpress.machine(),
        &lowered.graph,
        &plan.instrumentation,
        plan.device_map.clone(),
    );
    let mut arena = SimArena::new();
    sim.run_in(&mut arena).expect("emulation succeeds");
    const RUNS: usize = 200;
    // Wall-clock timing is this binary's whole purpose — the one
    // sanctioned exception to the workspace's no-clock rule.
    #[allow(clippy::disallowed_methods)]
    let start = std::time::Instant::now();
    for _ in 0..RUNS {
        sim.run_in(&mut arena).expect("emulation succeeds");
    }
    let emulate_s = start.elapsed().as_secs_f64() / RUNS as f64;

    // --- Delta-replay throughput and identity gate -----------------------
    // Capture the chosen plan once, then retime every swap directive one
    // tensor at a time — the shape of a refinement trial.
    let (_, base) = sim
        .run_in_captured(&mut arena, 64)
        .expect("captured emulation succeeds");
    let base = base.expect("plain-config run yields a delta base");
    let candidates: Vec<InstrumentationPlan> = plan
        .instrumentation
        .iter()
        .filter_map(|(t, d)| match d {
            MemoryDirective::SwapToHost(HostTier::Dram) => {
                Some((t, MemoryDirective::SwapToHost(HostTier::Nvme)))
            }
            MemoryDirective::SwapToHost(HostTier::Nvme) => {
                Some((t, MemoryDirective::SwapToHost(HostTier::Dram)))
            }
            _ => None,
        })
        .map(|(t, d)| {
            let mut cand = plan.instrumentation.clone();
            cand.assign(t, d);
            cand
        })
        .collect();
    assert!(
        !candidates.is_empty(),
        "chosen plan has no swap directives to retime"
    );
    let mut delta_identical = true;
    let mut fast = Vec::new();
    for cand in &candidates {
        let cand_sim = Simulator::new(
            mpress.machine(),
            &lowered.graph,
            cand,
            plan.device_map.clone(),
        );
        let scratch = cand_sim.run_in(&mut arena).expect("emulation succeeds");
        let delta = cand_sim
            .run_in_delta(&mut arena, &base)
            .expect("delta emulation succeeds");
        if delta.report != scratch {
            delta_identical = false;
        }
        if delta.used_delta {
            fast.push((cand, delta.windows_replayed));
        }
    }
    let delta_fast_fraction = fast.len() as f64 / candidates.len() as f64;
    // (mean delta seconds, mean scratch seconds) over a candidate set,
    // each loop sized to ~RUNS total emulations.
    let mut time_set = |set: &[&InstrumentationPlan]| -> (f64, f64) {
        let rounds = (RUNS / set.len().max(1)).max(1);
        let sims: Vec<_> = set
            .iter()
            .map(|cand| {
                Simulator::new(
                    mpress.machine(),
                    &lowered.graph,
                    cand,
                    plan.device_map.clone(),
                )
            })
            .collect();
        // The delta and scratch passes alternate within every round so
        // machine-load drift lands on both sides of the ratio equally.
        let mut delta_total = 0.0;
        let mut scratch_total = 0.0;
        for _ in 0..rounds {
            #[allow(clippy::disallowed_methods)]
            let start = std::time::Instant::now();
            for cand_sim in &sims {
                cand_sim
                    .run_in_delta(&mut arena, &base)
                    .expect("delta emulation succeeds");
            }
            delta_total += start.elapsed().as_secs_f64();
            #[allow(clippy::disallowed_methods)]
            let start = std::time::Instant::now();
            for cand_sim in &sims {
                cand_sim.run_in(&mut arena).expect("emulation succeeds");
            }
            scratch_total += start.elapsed().as_secs_f64();
        }
        let n = (rounds * sims.len()) as f64;
        (delta_total / n, scratch_total / n)
    };
    let all: Vec<&InstrumentationPlan> = fast.iter().map(|&(c, _)| c).collect();
    let (mean_delta_s, mean_scratch_s) = time_set(&all);
    let delta_speedup_mean = mean_scratch_s / mean_delta_s;
    // The frontier eighth: the candidates whose divergence bound lies
    // latest (fewest windows replayed) — the suffix-local retimings the
    // delta path exists for.
    let mut by_replay = fast.clone();
    by_replay.sort_by_key(|&(_, w)| w);
    let frontier: Vec<&InstrumentationPlan> = by_replay[..(by_replay.len() / 8).max(1)]
        .iter()
        .map(|&(c, _)| c)
        .collect();
    let (delta_s, scratch_s) = time_set(&frontier);
    let delta_speedup = scratch_s / delta_s;
    // Peak: the single best retiming (smallest replayed suffix), timed
    // alone — the latest-schedule polish trial the delta path targets.
    let delta_speedup_peak = by_replay[..4.min(by_replay.len())]
        .iter()
        .map(|&(c, _)| {
            let (d, s) = time_set(&[c]);
            s / d
        })
        .fold(0.0f64, f64::max);

    // --- Plan-search wall clock (best of 6, modes interleaved so load
    // drift cannot bias one side of the jobs=8 sanity gate) --------------
    let mut wall_jobs1 = f64::INFINITY;
    let mut wall_jobs8 = f64::INFINITY;
    for _ in 0..6 {
        for (jobs, slot) in [(1usize, &mut wall_jobs1), (8, &mut wall_jobs8)] {
            mpress_par::set_jobs(jobs);
            #[allow(clippy::disallowed_methods)]
            let start = std::time::Instant::now();
            bench_system(None).plan().expect("planning succeeds");
            *slot = slot.min(start.elapsed().as_secs_f64());
        }
    }

    // --- Prefilter transparency gate --------------------------------------
    mpress_par::set_jobs(1);
    let (plan_off, _) = bench_system(Some(false)).plan().expect("planning succeeds");
    let (plan_on, _) = bench_system(Some(true)).plan().expect("planning succeeds");
    let identical = plan_on.instrumentation == plan_off.instrumentation
        && plan_on.device_map == plan_off.device_map;

    let json = format!(
        "{{\"emulate_ms\": {:.3}, \"emulations_per_sec\": {:.1}, \
         \"delta_emulate_ms\": {:.3}, \"delta_emulations_per_sec\": {:.1}, \
         \"delta_speedup\": {:.1}, \"delta_speedup_peak\": {:.1}, \
         \"delta_speedup_mean\": {:.1}, \
         \"delta_fast_fraction\": {:.2}, \"delta_identical\": {}, \
         \"plan_wall_s_jobs1\": {:.3}, \"plan_wall_s_jobs8\": {:.3}, \
         \"prefilter_skips\": {}, \"prefilter_plan_identical\": {}}}\n",
        1e3 * emulate_s,
        1.0 / emulate_s,
        1e3 * delta_s,
        1.0 / delta_s,
        delta_speedup,
        delta_speedup_peak,
        delta_speedup_mean,
        delta_fast_fraction,
        delta_identical,
        wall_jobs1,
        wall_jobs8,
        plan_on.search.prefilter_skips,
        identical
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1);
    });
    print!("{json}");
    eprintln!(
        "sim {:.3} ms/emulation ({:.0}/s), delta {:.3} ms ({:.0}/s, frontier {:.1}x, \
         peak {:.1}x, mean {:.1}x, {:.0}% fast), plan wall {:.3}s (jobs=1) {:.3}s (jobs=8), \
         {} prefilter skips -> {out_path}",
        1e3 * emulate_s,
        1.0 / emulate_s,
        1e3 * delta_s,
        1.0 / delta_s,
        delta_speedup,
        delta_speedup_peak,
        delta_speedup_mean,
        100.0 * delta_fast_fraction,
        wall_jobs1,
        wall_jobs8,
        plan_on.search.prefilter_skips,
    );
    let mut failed = false;
    if !identical {
        eprintln!("error: prefilter changed the chosen plan");
        failed = true;
    }
    if !delta_identical {
        eprintln!("error: delta replay diverged from from-scratch emulation");
        failed = true;
    }
    // 10% margin: on the 1-core reference container both modes run the
    // identical serial code path, so any gap is scheduler noise on a
    // ~60 ms measurement — the gate only has to catch the old 2x+
    // oversubscription regression, not timer jitter.
    if wall_jobs8 > wall_jobs1 * 1.10 {
        eprintln!(
            "error: jobs=8 wall {wall_jobs8:.3}s exceeds jobs=1 wall {wall_jobs1:.3}s by >10%"
        );
        failed = true;
    }
    if let Some(floor) = min_eps {
        let eps = 1.0 / emulate_s;
        if eps < floor {
            eprintln!("error: emulations_per_sec {eps:.1} below --min-eps floor {floor:.1}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

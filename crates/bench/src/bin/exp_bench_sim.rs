//! Times the emulator fast path and writes `BENCH_sim.json`.
//!
//! Three measurements on the Bert-1.67B × DGX-1 case:
//!
//! * steady-state emulation throughput through one reused [`SimArena`]
//!   (the planner's inner loop: the chosen plan re-simulated back to
//!   back),
//! * end-to-end plan-search wall clock at `jobs=1` and `jobs=8`,
//! * a prefilter transparency gate: planning with the analytic
//!   lower-bound prefilter on and off must choose the identical plan —
//!   any divergence exits nonzero so CI fails loudly.
//!
//! Output schema:
//!
//! ```json
//! {"emulate_ms": 0.91, "emulations_per_sec": 1098.9,
//!  "plan_wall_s_jobs1": 0.061, "plan_wall_s_jobs8": 0.058,
//!  "prefilter_skips": 18, "prefilter_plan_identical": true}
//! ```
//!
//! Pass `--out PATH` to redirect (default `BENCH_sim.json` in the
//! working directory).
use mpress::Mpress;
use mpress_bench::jobs::bert_job;
use mpress_hw::Machine;
use mpress_model::zoo;
use mpress_sim::{SimArena, Simulator};

fn bench_system(prefilter: Option<bool>) -> Mpress {
    let builder = Mpress::builder().job(bert_job(zoo::bert_1_67b(), Machine::dgx1()));
    match prefilter {
        Some(on) => builder.prefilter(on).build(),
        None => builder.build(),
    }
}

fn main() {
    let mut out_path = "BENCH_sim.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            out_path = args.next().unwrap_or_else(|| {
                eprintln!("error: --out expects a path");
                std::process::exit(2);
            });
        } else if arg == "--help" || arg == "-h" {
            println!("usage: exp_bench_sim [--out PATH]");
            println!();
            println!("  --out PATH  where to write the JSON (default BENCH_sim.json)");
            std::process::exit(0);
        } else {
            eprintln!("error: unknown flag {arg:?} (see --help)");
            std::process::exit(2);
        }
    }

    // --- Steady-state emulation throughput (arena reuse) -----------------
    mpress_par::set_jobs(1);
    let mpress = bench_system(None);
    let (plan, lowered) = mpress.plan().expect("planning succeeds");
    let sim = Simulator::new(
        mpress.machine(),
        &lowered.graph,
        &plan.instrumentation,
        plan.device_map.clone(),
    );
    let mut arena = SimArena::new();
    sim.run_in(&mut arena).expect("emulation succeeds");
    const RUNS: usize = 200;
    // Wall-clock timing is this binary's whole purpose — the one
    // sanctioned exception to the workspace's no-clock rule.
    #[allow(clippy::disallowed_methods)]
    let start = std::time::Instant::now();
    for _ in 0..RUNS {
        sim.run_in(&mut arena).expect("emulation succeeds");
    }
    let emulate_s = start.elapsed().as_secs_f64() / RUNS as f64;

    // --- Plan-search wall clock ------------------------------------------
    let plan_wall = |jobs: usize| {
        mpress_par::set_jobs(jobs);
        #[allow(clippy::disallowed_methods)]
        let start = std::time::Instant::now();
        let system = bench_system(None);
        system.plan().expect("planning succeeds");
        start.elapsed().as_secs_f64()
    };
    let wall_jobs1 = plan_wall(1);
    let wall_jobs8 = plan_wall(8);

    // --- Prefilter transparency gate --------------------------------------
    mpress_par::set_jobs(1);
    let (plan_off, _) = bench_system(Some(false)).plan().expect("planning succeeds");
    let (plan_on, _) = bench_system(Some(true)).plan().expect("planning succeeds");
    let identical = plan_on.instrumentation == plan_off.instrumentation
        && plan_on.device_map == plan_off.device_map;

    let json = format!(
        "{{\"emulate_ms\": {:.3}, \"emulations_per_sec\": {:.1}, \
         \"plan_wall_s_jobs1\": {:.3}, \"plan_wall_s_jobs8\": {:.3}, \
         \"prefilter_skips\": {}, \"prefilter_plan_identical\": {}}}\n",
        1e3 * emulate_s,
        1.0 / emulate_s,
        wall_jobs1,
        wall_jobs8,
        plan_on.search.prefilter_skips,
        identical
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1);
    });
    print!("{json}");
    eprintln!(
        "sim {:.3} ms/emulation ({:.0}/s), plan wall {:.3}s (jobs=1) {:.3}s (jobs=8), \
         {} prefilter skips -> {out_path}",
        1e3 * emulate_s,
        1.0 / emulate_s,
        wall_jobs1,
        wall_jobs8,
        plan_on.search.prefilter_skips,
    );
    if !identical {
        eprintln!("error: prefilter changed the chosen plan");
        std::process::exit(1);
    }
}

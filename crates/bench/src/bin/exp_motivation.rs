//! Regenerates the §II motivation comparison (intra- vs inter-operator).
fn main() {
    mpress_bench::init_cli("exp_motivation");
    println!("{}", mpress_bench::experiments::motivation());
}

//! Regenerates the §II motivation comparison (intra- vs inter-operator).
fn main() {
    println!("{}", mpress_bench::experiments::motivation());
}

//! Runs the design-choice ablations DESIGN.md calls out.
fn main() {
    mpress_bench::init_cli("exp_ablations");
    println!("{}", mpress_bench::experiments::ablations());
}

//! Runs the design-choice ablations DESIGN.md calls out.
fn main() {
    println!("{}", mpress_bench::experiments::ablations());
}

//! Regenerates the paper's table3 artifact.
fn main() {
    mpress_bench::init_cli("exp_table3");
    println!("{}", mpress_bench::experiments::table3());
}

//! Regenerates the paper's table3 artifact.
fn main() {
    println!("{}", mpress_bench::experiments::table3());
}

//! Regenerates the paper's table2 artifact.
fn main() {
    println!("{}", mpress_bench::experiments::table2());
}

//! Regenerates the paper's table2 artifact.
fn main() {
    mpress_bench::init_cli("exp_table2");
    println!("{}", mpress_bench::experiments::table2());
}

//! Times the speculative frontier search on a widened refinement grid
//! and writes `BENCH_search.json`.
//!
//! The case (Bert-1.67B on DGX-1, full MPress with
//! [`PlannerConfig::explore`] widening the trial grid) is planned twice
//! from scratch — once at `jobs=1`, once at the wide worker count — and
//! the two chosen plans are compared byte-for-byte: the speculative
//! search, work stealing and bound-and-abort emulation must all be
//! invisible in the outcome. Output schema:
//!
//! ```json
//! {"wall_s_jobs1": 1.23, "wall_s_wide": 0.80, "jobs_wide": 8,
//!  "speedup": 1.54, "deterministic": true, "steals": 6,
//!  "speculative_runs": 31, "speculation_wasted": 4, "bound_aborts": 12,
//!  "bound_abort_probe": false, "emulator_runs": 57,
//!  "refinement_rounds": 9, "cores": 8, "scaling_gate": "pass"}
//! ```
//!
//! * `deterministic` — the jobs=1 and wide plans agreed exactly.
//! * `steals` / `speculative_runs` / `speculation_wasted` — from the
//!   wide run; the pool clamp is lifted (`MPRESS_POOL_UNCLAMPED`
//!   semantics) so the wide run oversubscribes even a small host and
//!   stealing is observable everywhere.
//! * `bound_aborts` — from the wide run; when the certified-bounds gate
//!   prunes every loser before emulation the counter can read zero, so
//!   a probe run with `bounds`/`prefilter` off re-measures it
//!   (`bound_abort_probe: true`) — the abort path itself, not the
//!   gates in front of it, is what the field certifies.
//! * `scaling_gate` — `pass`/`fail` against `wall_wide <= 0.6 *
//!   wall_jobs1` when the host has at least `jobs_wide` cores,
//!   otherwise `skipped: N cores` (the 1-core reference container
//!   cannot demonstrate parallel speedup; `scripts/verify.sh` treats
//!   only `fail` as an error).
//!
//! Pass `--out PATH` to redirect (default `BENCH_search.json`);
//! `--jobs-wide N` overrides the wide worker count (default 8).
use mpress::{Mpress, MpressPlan, PlannerConfig};
use mpress_bench::jobs::bert_job;
use mpress_hw::Machine;
use mpress_model::zoo;

/// Everything the planner chose, excluding the search statistics
/// (`steals`/`peak_workers`/… legitimately differ across widths).
fn plan_fingerprint(plan: &MpressPlan) -> String {
    format!(
        "{:?}|{:?}|{}|{:?}",
        plan.device_map, plan.instrumentation, plan.refinement_rounds, plan.refine_candidates,
    )
}

/// Plans the widened-grid case from scratch with `cfg` and returns the
/// plan plus its wall time. A fresh [`Mpress`] per call keeps the runs
/// honest: no plan cache or emulation cache crosses between them.
fn timed_plan(cfg: PlannerConfig) -> (MpressPlan, f64) {
    // Wall-clock timing is this binary's whole purpose — the one
    // sanctioned exception to the workspace's no-clock rule.
    #[allow(clippy::disallowed_methods)]
    let start = std::time::Instant::now();
    let mpress = Mpress::builder()
        .job(bert_job(zoo::bert_1_67b(), Machine::dgx1()))
        .planner_config(cfg)
        .build();
    let (plan, _) = mpress.plan().expect("planning succeeds");
    (plan, start.elapsed().as_secs_f64())
}

fn main() {
    let mut out_path = "BENCH_search.json".to_owned();
    let mut jobs_wide = 8usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let wide_value = if arg == "--jobs-wide" {
            Some(args.next().unwrap_or_default())
        } else {
            arg.strip_prefix("--jobs-wide=").map(str::to_owned)
        };
        if let Some(v) = wide_value {
            match v.parse::<usize>() {
                Ok(n) if n >= 2 => jobs_wide = n,
                _ => {
                    eprintln!("error: --jobs-wide expects an integer >= 2, got {v:?}");
                    std::process::exit(2);
                }
            }
        } else if arg == "--out" {
            out_path = args.next().unwrap_or_else(|| {
                eprintln!("error: --out expects a path");
                std::process::exit(2);
            });
        } else if arg == "--help" || arg == "-h" {
            println!("usage: exp_bench_search [--jobs-wide N] [--out PATH]");
            println!();
            println!("  --jobs-wide N  wide-run worker count (default 8)");
            println!("  --out PATH     where to write the JSON (default BENCH_search.json)");
            std::process::exit(0);
        } else {
            eprintln!("error: unknown flag {arg:?} (see --help)");
            std::process::exit(2);
        }
    }

    let grid = PlannerConfig::default().explore(true).bound_abort(true);

    mpress_par::set_jobs(1);
    let (plan_1, wall_1) = timed_plan(grid);

    // Lift the hardware clamp so the wide run really spawns `jobs_wide`
    // workers even on the 1-core reference container — stealing and
    // speculation are then observable (and must still be invisible in
    // the chosen plan).
    mpress_par::set_pool_unclamped(true);
    mpress_par::set_jobs(jobs_wide);
    let (plan_wide, wall_wide) = timed_plan(grid);
    mpress_par::set_jobs(0);
    mpress_par::set_pool_unclamped(false);

    let deterministic = plan_fingerprint(&plan_1) == plan_fingerprint(&plan_wide);
    if !deterministic {
        eprintln!("error: jobs=1 and jobs={jobs_wide} chose different plans");
    }

    // The certified-bounds gate can pre-empt every would-be abort on
    // this grid; probe the abort path directly when that happens.
    let mut bound_aborts = plan_wide.search.bound_aborts;
    let mut bound_abort_probe = false;
    if bound_aborts == 0 {
        mpress_par::set_jobs(1);
        let (probe, _) = timed_plan(grid.bounds(false).prefilter(false));
        mpress_par::set_jobs(0);
        bound_aborts = probe.search.bound_aborts;
        bound_abort_probe = true;
    }

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let speedup = wall_1 / wall_wide.max(1e-9);
    let scaling_gate = if cores < jobs_wide {
        format!("skipped: {cores} cores")
    } else if wall_wide <= 0.6 * wall_1 {
        "pass".to_owned()
    } else {
        "fail".to_owned()
    };

    let json = format!(
        "{{\"wall_s_jobs1\": {:.3}, \"wall_s_wide\": {:.3}, \"jobs_wide\": {}, \
         \"speedup\": {:.3}, \"deterministic\": {}, \"steals\": {}, \
         \"speculative_runs\": {}, \"speculation_wasted\": {}, \"bound_aborts\": {}, \
         \"bound_abort_probe\": {}, \"emulator_runs\": {}, \
         \"refinement_rounds\": {}, \"cores\": {}, \"scaling_gate\": {:?}}}\n",
        wall_1,
        wall_wide,
        jobs_wide,
        speedup,
        deterministic,
        plan_wide.search.steals,
        plan_wide.search.speculative_runs,
        plan_wide.search.speculation_wasted,
        bound_aborts,
        bound_abort_probe,
        plan_wide.search.emulator_runs,
        plan_wide.refinement_rounds,
        cores,
        scaling_gate
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1);
    });
    print!("{json}");
    eprintln!(
        "search wall {wall_1:.3}s (jobs=1) vs {wall_wide:.3}s (jobs={jobs_wide}, \
         {} steals, {} speculative runs, {} wasted), {} bound aborts{}, \
         deterministic={deterministic}, gate={scaling_gate} -> {out_path}",
        plan_wide.search.steals,
        plan_wide.search.speculative_runs,
        plan_wide.search.speculation_wasted,
        bound_aborts,
        if bound_abort_probe { " (probe)" } else { "" },
    );
    if !deterministic {
        std::process::exit(1);
    }
}

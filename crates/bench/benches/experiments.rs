//! Criterion benchmarks: one group per paper artifact, timing the
//! machinery that regenerates it (scaled-down where a full run would take
//! minutes). `cargo bench` therefore exercises every experiment's code
//! path and prints the rows alongside.

use criterion::{criterion_group, criterion_main, Criterion};
use mpress::{Mpress, OptimizationSet};
use mpress_bench::experiments;
use mpress_bench::jobs::{bert_job, gpt_job};
use mpress_hw::{BandwidthCurve, Bytes, Machine};
use mpress_model::{zoo, ModelFamily, PrecisionPolicy, TransformerConfig};
use mpress_pipeline::{PipelineJob, ScheduleKind};

/// A reduced-size pipeline job for per-iteration benchmarking.
fn small_job() -> PipelineJob {
    PipelineJob::builder()
        .model(
            TransformerConfig::builder(ModelFamily::Gpt)
                .layers(16)
                .hidden(1024)
                .seq_len(512)
                .build(),
        )
        .machine(Machine::dgx1())
        .schedule(ScheduleKind::Dapple)
        .microbatch_size(2)
        .microbatches(8)
        .precision(PrecisionPolicy::mixed())
        .build()
        .expect("valid")
}

fn bench_fig1_schedules(c: &mut Criterion) {
    c.bench_function("fig1_schedule_timelines", |b| b.iter(experiments::fig1));
}

fn bench_table1_breakdown(c: &mut Criterion) {
    c.bench_function("table1_memory_breakdown", |b| b.iter(experiments::table1));
}

fn bench_fig2_imbalance(c: &mut Criterion) {
    c.bench_function("fig2_per_device_memory", |b| b.iter(experiments::fig2));
}

fn bench_fig4_bandwidth(c: &mut Criterion) {
    c.bench_function("fig4_bandwidth_curve", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for lanes in [2u32, 4, 6] {
                acc += BandwidthCurve::nvlink_lanes(lanes).effective_bandwidth(Bytes::mib(256));
            }
            acc
        })
    });
}

fn bench_table2_demands(c: &mut Criterion) {
    c.bench_function("table2_memory_demands", |b| {
        b.iter(|| {
            let job = gpt_job(zoo::gpt_5_3b(), Machine::dgx1());
            job.memory_demands().total()
        })
    });
}

fn bench_fig7_system_run(c: &mut Criterion) {
    // One representative Fig. 7 cell: the uninstrumented simulation of a
    // Bert-sized (reduced) job.
    c.bench_function("fig7_plain_simulation", |b| {
        let job = small_job();
        let mpress = Mpress::builder()
            .job(job)
            .optimizations(OptimizationSet::none())
            .build();
        b.iter(|| mpress.train_unmodified().expect("valid").throughput)
    });
}

fn bench_fig8_mpress_plan(c: &mut Criterion) {
    // One representative Fig. 8 cell: MPress planning + simulation on a
    // reduced job.
    c.bench_function("fig8_mpress_plan_and_train", |b| {
        let mpress = Mpress::builder().job(small_job()).refine_iters(2).build();
        b.iter(|| mpress.train().expect("valid").tflops)
    });
}

fn bench_fig9_mapping_search(c: &mut Criterion) {
    // Fig. 9's device-mapping search over all 8! permutations.
    c.bench_function("fig9_device_mapping_search", |b| {
        let machine = Machine::dgx1();
        let search = mpress::MappingSearch::new(&machine);
        let mut overflow = vec![Bytes::ZERO; 8];
        overflow[0] = Bytes::gib(10);
        overflow[1] = Bytes::gib(4);
        let mut spare = vec![Bytes::ZERO; 8];
        spare[4..8].fill(Bytes::gib(6));
        b.iter(|| search.search(&overflow, &spare).2)
    });
}

fn bench_table3_costs(c: &mut Criterion) {
    c.bench_function("table3_profile_and_costs", |b| b.iter(experiments::table3));
}

fn bench_table4_planner(c: &mut Criterion) {
    // The full planner on a reduced job (Table IV machinery).
    c.bench_function("table4_planner", |b| {
        let mpress = Mpress::builder().job(small_job()).refine_iters(2).build();
        b.iter(|| mpress.plan().expect("valid").0.instrumentation.len())
    });
}

fn bench_sec2d_partitioner(c: &mut Criterion) {
    use mpress_pipeline::{PartitionGoal, StagePartition};
    c.bench_function("sec2d_partitioners", |b| {
        let model = zoo::bert_1_67b();
        b.iter(|| {
            let c = StagePartition::balanced(
                &model,
                8,
                12,
                &PrecisionPolicy::full(),
                PartitionGoal::Computation,
            );
            let m = StagePartition::balanced(
                &model,
                8,
                12,
                &PrecisionPolicy::full(),
                PartitionGoal::Memory,
            );
            (c.n_stages(), m.n_stages())
        })
    });
}

fn bench_full_scale_lowering(c: &mut Criterion) {
    // Lowering the real paper-scale Bert job (graph construction cost).
    c.bench_function("lowering_bert_1_67b", |b| {
        let job = bert_job(zoo::bert_1_67b(), Machine::dgx1());
        b.iter(|| job.lower().expect("valid").graph.ops().len())
    });
}

fn bench_motivation_megatron(c: &mut Criterion) {
    // The analytic intra-operator baseline: closed-form, so this times the
    // whole report path.
    c.bench_function("motivation_megatron_report", |b| {
        b.iter(|| {
            mpress_baselines::MegatronBaseline::new(Machine::commodity(), zoo::gpt_10_3b())
                .report()
                .tflops
        })
    });
}

criterion_group!(
    name = experiments_suite;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig1_schedules,
        bench_table1_breakdown,
        bench_fig2_imbalance,
        bench_fig4_bandwidth,
        bench_table2_demands,
        bench_fig7_system_run,
        bench_fig8_mpress_plan,
        bench_fig9_mapping_search,
        bench_table3_costs,
        bench_table4_planner,
        bench_sec2d_partitioner,
        bench_full_scale_lowering,
        bench_motivation_megatron,
);
criterion_main!(experiments_suite);

//! A minimal blocking client for the daemon's wire protocol.
//!
//! Shared by the CLI's `client` subcommand, the load generator and the
//! integration suite, so they all speak the exact same bytes.

use mpress_api::{decode_response_line, encode_request_line, DecodedResponse, Request, ServeError};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One TCP connection to a running daemon.
///
/// Requests may be pipelined: [`Client::send`] returns the assigned
/// request id, and [`Client::recv`] returns responses in server
/// completion order (match them up by [`DecodedResponse::id`]).
/// [`Client::request`] is the simple one-at-a-time wrapper.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates socket connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            next_id: 1,
        })
    }

    /// Sends one request without waiting, returning its id.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failure.
    pub fn send(&mut self, request: &Request) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        let line = encode_request_line(id, request);
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| ServeError::Io(format!("send: {e}")))?;
        Ok(id)
    }

    /// Sends one raw line verbatim (protocol testing).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failure.
    pub fn send_raw(&mut self, line: &str) -> Result<(), ServeError> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| ServeError::Io(format!("send: {e}")))
    }

    /// Receives the next response line, raw.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failure or a closed connection.
    pub fn recv_raw(&mut self) -> Result<String, ServeError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| ServeError::Io(format!("recv: {e}")))?;
        if n == 0 {
            return Err(ServeError::Io("connection closed".to_owned()));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_owned())
    }

    /// Receives and decodes the next response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failure,
    /// [`ServeError::Protocol`] on an undecodable line.
    pub fn recv(&mut self) -> Result<DecodedResponse, ServeError> {
        let line = self.recv_raw()?;
        decode_response_line(&line)
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures as in [`Client::send`] and
    /// [`Client::recv`]; a response id mismatch is a
    /// [`ServeError::Protocol`].
    pub fn request(&mut self, request: &Request) -> Result<DecodedResponse, ServeError> {
        let id = self.send(request)?;
        let decoded = self.recv()?;
        if decoded.id != id {
            return Err(ServeError::Protocol(format!(
                "response id {} does not match request id {id}",
                decoded.id
            )));
        }
        Ok(decoded)
    }
}

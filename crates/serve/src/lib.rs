//! **mpress-serve** — planning-as-a-service.
//!
//! A std-only, long-running daemon that serves the MPress planner over
//! TCP as newline-delimited versioned JSON (the `v1` envelope from
//! [`mpress_api::wire`]). No async runtime: one OS thread per
//! connection on top of the workspace's own [`mpress_par`] pool.
//!
//! The request path is a fixed five-stage pipeline:
//!
//! 1. **Admission** — a bounded queue; when it is full the request is
//!    rejected *immediately* with an explicit
//!    [`Overloaded`](mpress_api::ServeError::Overloaded) error rather
//!    than queued into unbounded latency.
//! 2. **Batching** — a single batcher thread drains up to a configured
//!    number of queued requests into one wave.
//! 3. **Dedup + cache** — identical requests within a wave collapse to
//!    one execution; across waves (and across clients) the
//!    process-global [`PlanCache`](mpress::PlanCache) keyed by the
//!    planner's structural digest serves repeat plans without search.
//! 4. **Plan** — unique requests execute concurrently in one
//!    [`mpress_par::par_map`] wave, all sharing the cache and the
//!    simulator arena pool.
//! 5. **Respond** — each response is routed back to its connection by
//!    request id (a client may therefore pipeline requests; responses
//!    carry ids precisely because waves can complete out of order).
//!
//! Determinism contract: for any request, the daemon's response body is
//! byte-identical to what `mpress-cli` prints for the same request with
//! `--json`, whether the plan came from a cold search, the plan cache,
//! or in-wave dedup. The integration suite enforces this.
//!
//! `stats` and `shutdown` are answered inline on the connection thread:
//! they read server state, not planner state, and must keep working
//! even when the admission queue is full.

#![forbid(unsafe_code)]

pub mod client;
pub mod server;

pub use client::Client;
pub use server::{start, ServeConfig, ServerHandle};

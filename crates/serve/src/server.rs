//! The daemon: admission queue, batcher, connection threads.

use mpress::CancelToken;
use mpress_api::{
    decode_request_line, encode_request_line, encode_response_line, execute, ApiContext, Request,
    Response, ServeError,
};
use mpress_obs::MetricsRecorder;
use serde::Serialize as _;
use serde_json::Value;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;

/// Daemon configuration, with builder-style setters.
///
/// `#[non_exhaustive]`: construct with [`ServeConfig::default`] and
/// chain overrides, so new knobs can be added compatibly.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    addr: String,
    queue_cap: usize,
    batch_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            queue_cap: 64,
            batch_cap: 8,
        }
    }
}

impl ServeConfig {
    /// Sets the listen address (default `127.0.0.1:0`, an ephemeral
    /// port — read the bound address from [`ServerHandle::addr`]).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the admission-queue capacity (default 64). Requests
    /// arriving while the queue holds this many are rejected with
    /// [`ServeError::Overloaded`]. A capacity of zero rejects every
    /// plannable request — useful for testing admission control.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Sets the maximum requests drained into one batch wave
    /// (default 8, minimum 1).
    pub fn batch_cap(mut self, cap: usize) -> Self {
        self.batch_cap = cap.max(1);
        self
    }
}

/// One admitted request waiting for its batch wave.
struct Job {
    id: u64,
    /// Canonical request encoding (id-independent), the in-wave dedup
    /// key.
    key: String,
    request: Request,
    reply: mpsc::Sender<String>,
}

/// State shared by the accept loop, the batcher and every connection.
struct Shared {
    ctx: ApiContext,
    cancel: CancelToken,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    stop: AtomicBool,
    metrics: Mutex<MetricsRecorder>,
    queue_cap: usize,
    batch_cap: usize,
    addr: SocketAddr,
}

impl Shared {
    fn record(&self, f: impl FnOnce(&mut MetricsRecorder)) {
        f(&mut self.metrics.lock().expect("metrics lock"));
    }
}

/// A running daemon. Dropping the handle shuts the daemon down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    batcher: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Blocks until the daemon stops on its own — i.e. until a client
    /// sends a `shutdown` request. Does not trigger a shutdown itself.
    pub fn wait(&mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.batcher.take() {
            let _ = t.join();
        }
    }

    /// Triggers a graceful shutdown and waits for the accept loop and
    /// the batcher to finish. In-flight planning is cancelled through
    /// the context's [`CancelToken`]; still-queued requests are
    /// answered with an internal error.
    pub fn shutdown(&mut self) {
        trigger_shutdown(&self.shared);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.batcher.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.shared.addr)
            .finish_non_exhaustive()
    }
}

/// Starts the daemon.
///
/// # Errors
///
/// Propagates socket bind failures.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let cancel = CancelToken::new();
    let shared = Arc::new(Shared {
        ctx: ApiContext::new().with_cancel(cancel.clone()),
        cancel,
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        stop: AtomicBool::new(false),
        metrics: Mutex::new(MetricsRecorder::new()),
        queue_cap: config.queue_cap,
        batch_cap: config.batch_cap,
        addr,
    });
    let batcher = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || run_batcher(&shared))
    };
    let accept = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shared = Arc::clone(&shared);
                thread::spawn(move || handle_connection(&shared, stream));
            }
        })
    };
    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        batcher: Some(batcher),
    })
}

/// Flips the stop flag once, cancels in-flight planning, wakes the
/// batcher, and unblocks the accept loop with a self-connection.
fn trigger_shutdown(shared: &Shared) {
    if shared.stop.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.cancel.cancel();
    shared.ready.notify_all();
    let _ = TcpStream::connect(shared.addr);
}

/// The single batch thread: drain → dedup → one `par_map` wave → route
/// responses by id. Waves run sequentially, which (together with the
/// plan cache) is what makes identical requests byte-identical no
/// matter how they interleave across clients.
fn run_batcher(shared: &Shared) {
    loop {
        let mut batch: Vec<Job> = Vec::new();
        {
            let mut q = shared.queue.lock().expect("queue lock");
            while q.is_empty() && !shared.stop.load(Ordering::SeqCst) {
                q = shared.ready.wait(q).expect("queue wait");
            }
            if shared.stop.load(Ordering::SeqCst) {
                batch.extend(q.drain(..));
                drop(q);
                for job in batch {
                    let err = Err(ServeError::Internal(
                        "server shut down before this request ran".to_owned(),
                    ));
                    let _ = job.reply.send(encode_response_line(job.id, &err));
                }
                return;
            }
            while batch.len() < shared.batch_cap {
                match q.pop_front() {
                    Some(job) => batch.push(job),
                    None => break,
                }
            }
        }
        // In-wave dedup: identical canonical encodings run once.
        let mut uniques: Vec<(String, Request)> = Vec::new();
        let mut slots: Vec<usize> = Vec::with_capacity(batch.len());
        for job in &batch {
            match uniques.iter().position(|(key, _)| *key == job.key) {
                Some(i) => slots.push(i),
                None => {
                    uniques.push((job.key.clone(), job.request.clone()));
                    slots.push(uniques.len() - 1);
                }
            }
        }
        let dedup_hits = (batch.len() - uniques.len()) as u64;
        let results = mpress_par::par_map(&uniques, |(_, req)| execute(req, &shared.ctx));
        shared.record(|m| {
            m.inc("serve.batches");
            m.observe("serve.batch_size", batch.len() as f64);
            m.add("serve.dedup_hits", dedup_hits);
        });
        for (job, slot) in batch.into_iter().zip(slots) {
            let _ = job.reply.send(encode_response_line(job.id, &results[slot]));
        }
    }
}

/// The `stats` response body: service counters plus cache statistics.
fn stats_body(shared: &Shared) -> Value {
    let depth = shared.queue.lock().expect("queue lock").len();
    let mut m = shared.metrics.lock().expect("metrics lock");
    m.set_gauge("serve.queue_depth", depth as f64);
    m.set_gauge("serve.arenas_idle", shared.ctx.arenas.idle() as f64);
    let service = m.snapshot().to_json();
    drop(m);
    Value::Object(vec![
        ("service".to_owned(), service),
        ("cache".to_owned(), shared.ctx.cache.stats().to_json()),
    ])
}

/// One connection: a reader loop on this thread plus a writer thread
/// fed over a channel (the batcher routes responses into the same
/// channel, so writes never interleave mid-line).
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let (tx, rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || {
        let mut stream = stream;
        for line in rx {
            if stream.write_all(line.as_bytes()).is_err() || stream.write_all(b"\n").is_err() {
                break;
            }
            let _ = stream.flush();
        }
        let _ = stream.shutdown(Shutdown::Both);
    });
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (id, decoded) = decode_request_line(&line);
        match decoded {
            Err(e) => {
                shared.record(|m| m.inc(&format!("serve.request_errors.{}", e.code())));
                let _ = tx.send(encode_response_line(id, &Err(e)));
            }
            Ok(Request::Stats) => {
                shared.record(|m| m.inc("serve.requests.stats"));
                let body = stats_body(shared);
                let _ = tx.send(encode_response_line(id, &Ok(Response::Stats(body))));
            }
            Ok(Request::Shutdown) => {
                shared.record(|m| m.inc("serve.requests.shutdown"));
                let _ = tx.send(encode_response_line(id, &Ok(Response::Shutdown)));
                trigger_shutdown(shared);
                break;
            }
            Ok(request) => {
                shared.record(|m| m.inc(&format!("serve.requests.{}", request.kind())));
                let verdict = {
                    let mut q = shared.queue.lock().expect("queue lock");
                    if shared.stop.load(Ordering::SeqCst) {
                        Some(ServeError::Internal("server is shutting down".to_owned()))
                    } else if q.len() >= shared.queue_cap {
                        Some(ServeError::Overloaded {
                            queue: shared.queue_cap,
                        })
                    } else {
                        q.push_back(Job {
                            id,
                            // Re-encode with a fixed id so identical
                            // requests dedup regardless of client ids.
                            key: encode_request_line(0, &request),
                            request,
                            reply: tx.clone(),
                        });
                        shared.ready.notify_one();
                        None
                    }
                };
                if let Some(e) = verdict {
                    shared.record(|m| m.inc(&format!("serve.rejected.{}", e.code())));
                    let _ = tx.send(encode_response_line(id, &Err(e)));
                }
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

//! Identity of a physical transfer channel, for per-link accounting.
//!
//! The simulator attributes every swap's traffic to the channel that
//! carried it: an NVLink pair for D2D swaps, a device's PCIe lane for
//! host swaps, and the shared NVMe drive for the SSD tier. [`LinkKey`]
//! is the map key that accounting uses; its `Ord` makes per-link tables
//! iterate in a stable order (all NVLink pairs, then PCIe by device,
//! then NVMe).

use crate::topology::DeviceId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One physical channel of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkKey {
    /// The NVLink lanes between a device pair (undirected; construct via
    /// [`LinkKey::nvlink`] so `{a, b}` and `{b, a}` collapse to one key).
    Nvlink {
        /// Lower-numbered endpoint.
        a: DeviceId,
        /// Higher-numbered endpoint.
        b: DeviceId,
    },
    /// One device's PCIe connection to host memory.
    Pcie(DeviceId),
    /// The shared NVMe drive behind the host.
    Nvme,
}

impl LinkKey {
    /// The canonical key for the NVLink pair `{a, b}` regardless of
    /// argument order.
    pub fn nvlink(a: DeviceId, b: DeviceId) -> Self {
        if a <= b {
            LinkKey::Nvlink { a, b }
        } else {
            LinkKey::Nvlink { a: b, b: a }
        }
    }
}

impl fmt::Display for LinkKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkKey::Nvlink { a, b } => write!(f, "nvlink:{}-{}", a.0, b.0),
            LinkKey::Pcie(dev) => write!(f, "pcie:{}", dev.0),
            LinkKey::Nvme => write!(f, "nvme"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvlink_key_is_order_independent() {
        let ab = LinkKey::nvlink(DeviceId(3), DeviceId(0));
        let ba = LinkKey::nvlink(DeviceId(0), DeviceId(3));
        assert_eq!(ab, ba);
        assert_eq!(ab.to_string(), "nvlink:0-3");
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(LinkKey::Pcie(DeviceId(2)).to_string(), "pcie:2");
        assert_eq!(LinkKey::Nvme.to_string(), "nvme");
    }

    #[test]
    fn ordering_groups_by_kind() {
        let mut keys = vec![
            LinkKey::Nvme,
            LinkKey::Pcie(DeviceId(0)),
            LinkKey::nvlink(DeviceId(1), DeviceId(2)),
            LinkKey::nvlink(DeviceId(0), DeviceId(3)),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                LinkKey::nvlink(DeviceId(0), DeviceId(3)),
                LinkKey::nvlink(DeviceId(1), DeviceId(2)),
                LinkKey::Pcie(DeviceId(0)),
                LinkKey::Nvme,
            ]
        );
    }
}

//! Hardware substrate for the MPress reproduction.
//!
//! MPress (HPCA 2023) was evaluated on real DGX-1 (8x V100, asymmetric
//! NVLink) and DGX-2-class (8x A100, symmetric NVSwitch) servers. This crate
//! replaces that hardware with an analytic model that captures exactly the
//! properties MPress's design depends on:
//!
//! * per-device memory capacity (the "GPU memory wall"),
//! * compute throughput (peak FLOP/s scaled by an efficiency factor),
//! * the interconnect topology between GPUs — how many NVLink lanes connect
//!   each pair of devices (paper Fig. 3), and
//! * size-dependent effective bandwidth of NVLink, PCIe and NVMe channels
//!   (paper Fig. 4).
//!
//! # Example
//!
//! ```
//! use mpress_hw::{Machine, DeviceId, Bytes};
//!
//! let dgx1 = Machine::dgx1();
//! assert_eq!(dgx1.gpu_count(), 8);
//! // GPU0 and GPU3 are connected by two NVLink lanes on DGX-1.
//! let lanes = dgx1.topology().nvlink_lanes(DeviceId(0), DeviceId(3));
//! assert_eq!(lanes, 2);
//! // Transferring 64 MiB over those two lanes is much faster than over PCIe.
//! let d2d = dgx1.nvlink_transfer_time(Bytes::mib(64), lanes);
//! let pcie = dgx1.pcie_transfer_time(Bytes::mib(64));
//! assert!(d2d < pcie / 2.0);
//! ```

#![forbid(unsafe_code)]

pub mod bandwidth;
pub mod link;
pub mod machine;
pub mod topology;
pub mod units;

pub use bandwidth::{BandwidthCurve, Channel, NVLINK2_LANE_BW, PCIE3_X16_BW};
pub use link::LinkKey;
pub use machine::{CpuSpec, GpuSpec, Machine, MachineBuilder, NvmeSpec};
pub use topology::{DeviceId, LinkKind, Topology, TopologyKind};
pub use units::{Bytes, Secs};

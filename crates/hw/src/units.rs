//! Byte-count and time units used across the whole workspace.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Simulated wall-clock time in seconds.
///
/// The simulator works in plain `f64` seconds; this alias documents intent
/// at API boundaries.
pub type Secs = f64;

/// A number of bytes.
///
/// A newtype so that byte counts cannot be confused with other integer
/// quantities (layer indices, device ids, FLOP counts) at compile time.
///
/// # Example
///
/// ```
/// use mpress_hw::Bytes;
///
/// let act = Bytes::mib(216);
/// assert_eq!(act.as_u64(), 216 * 1024 * 1024);
/// assert!(act + Bytes::gib(1) > Bytes::gib(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count from kibibytes.
    pub const fn kib(n: u64) -> Self {
        Bytes(n * 1024)
    }

    /// Creates a byte count from mebibytes.
    pub const fn mib(n: u64) -> Self {
        Bytes(n * 1024 * 1024)
    }

    /// Creates a byte count from gibibytes.
    pub const fn gib(n: u64) -> Self {
        Bytes(n * 1024 * 1024 * 1024)
    }

    /// Creates a byte count from a fractional number of gibibytes.
    ///
    /// # Panics
    ///
    /// Panics if `gib` is negative or not finite.
    pub fn from_gib_f64(gib: f64) -> Self {
        assert!(gib.is_finite() && gib >= 0.0, "invalid GiB value: {gib}");
        Bytes((gib * 1024.0 * 1024.0 * 1024.0).round() as u64)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The byte count as `f64`, for bandwidth arithmetic.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// This byte count expressed in mebibytes.
    pub fn as_mib_f64(self) -> f64 {
        self.as_f64() / (1024.0 * 1024.0)
    }

    /// This byte count expressed in gibibytes.
    pub fn as_gib_f64(self) -> f64 {
        self.as_f64() / (1024.0 * 1024.0 * 1024.0)
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Bytes) -> Option<Bytes> {
        self.0.checked_sub(rhs.0).map(Bytes)
    }

    /// Saturating addition: clamps at `u64::MAX` instead of overflowing.
    pub fn saturating_add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }

    /// Checked addition: `None` when the sum would overflow. Static
    /// analysis sums arbitrary (possibly adversarial) tensor sizes, so
    /// it must not rely on the panicking `+` operator.
    pub fn checked_add(self, rhs: Bytes) -> Option<Bytes> {
        self.0.checked_add(rhs.0).map(Bytes)
    }

    /// Scales the byte count by a non-negative factor, rounding to nearest.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> Bytes {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale factor: {factor}"
        );
        Bytes((self.as_f64() * factor).round() as u64)
    }

    /// Splits the byte count into `n` near-equal chunks (first chunks absorb
    /// the remainder). Returns an empty vector when `n == 0`.
    pub fn split_even(self, n: usize) -> Vec<Bytes> {
        if n == 0 {
            return Vec::new();
        }
        let base = self.0 / n as u64;
        let rem = (self.0 % n as u64) as usize;
        (0..n).map(|i| Bytes(base + u64::from(i < rem))).collect()
    }

    /// Minimum of two byte counts.
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }

    /// Maximum of two byte counts.
    pub fn max(self, other: Bytes) -> Bytes {
        Bytes(self.0.max(other.0))
    }

    /// True when the count is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    /// # Panics
    ///
    /// Panics on underflow in debug builds (standard integer semantics).
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Div<u64> for Bytes {
    type Output = Bytes;
    fn div(self, rhs: u64) -> Bytes {
        Bytes(self.0 / rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if self.0 >= 1024 * 1024 * 1024 {
            write!(f, "{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
        } else if self.0 >= 1024 * 1024 {
            write!(f, "{:.2} MiB", b / (1024.0 * 1024.0))
        } else if self.0 >= 1024 {
            write!(f, "{:.2} KiB", b / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Bytes::kib(1).as_u64(), 1024);
        assert_eq!(Bytes::mib(1).as_u64(), 1024 * 1024);
        assert_eq!(Bytes::gib(1).as_u64(), 1024 * 1024 * 1024);
        assert_eq!(Bytes::from_gib_f64(0.5), Bytes::mib(512));
    }

    #[test]
    fn arithmetic_behaves_like_integers() {
        let a = Bytes(100);
        let b = Bytes(40);
        assert_eq!(a + b, Bytes(140));
        assert_eq!(a - b, Bytes(60));
        assert_eq!(a * 3, Bytes(300));
        assert_eq!(a / 4, Bytes(25));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        assert_eq!(a.checked_sub(b), Some(Bytes(60)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    fn addition_has_checked_and_saturating_forms() {
        let near_max = Bytes(u64::MAX - 5);
        assert_eq!(near_max.checked_add(Bytes(5)), Some(Bytes(u64::MAX)));
        assert_eq!(near_max.checked_add(Bytes(6)), None);
        assert_eq!(near_max.saturating_add(Bytes(100)), Bytes(u64::MAX));
        assert_eq!(Bytes(1).saturating_add(Bytes(2)), Bytes(3));
    }

    #[test]
    fn split_even_conserves_total_and_balances() {
        let total = Bytes(1003);
        let chunks = total.split_even(4);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks.iter().copied().sum::<Bytes>(), total);
        let max = chunks.iter().max().unwrap().as_u64();
        let min = chunks.iter().min().unwrap().as_u64();
        assert!(max - min <= 1);
    }

    #[test]
    fn split_even_zero_chunks_is_empty() {
        assert!(Bytes(10).split_even(0).is_empty());
    }

    #[test]
    fn scale_rounds_to_nearest() {
        assert_eq!(Bytes(10).scale(0.25), Bytes(3)); // 2.5 rounds to 3
        assert_eq!(Bytes(100).scale(1.5), Bytes(150));
        assert_eq!(Bytes(100).scale(0.0), Bytes::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid scale factor")]
    fn scale_rejects_negative() {
        let _ = Bytes(1).scale(-1.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Bytes(512).to_string(), "512 B");
        assert_eq!(Bytes::kib(2).to_string(), "2.00 KiB");
        assert_eq!(Bytes::mib(3).to_string(), "3.00 MiB");
        assert_eq!(Bytes::gib(5).to_string(), "5.00 GiB");
    }

    #[test]
    fn sum_of_iterator() {
        let v = vec![Bytes(1), Bytes(2), Bytes(3)];
        assert_eq!(v.into_iter().sum::<Bytes>(), Bytes(6));
    }
}

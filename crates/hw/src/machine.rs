//! Whole-server hardware descriptions (DGX-1 and DGX-2 presets).

use crate::bandwidth::BandwidthCurve;
use crate::topology::{DeviceId, Topology};
use crate::units::{Bytes, Secs};
use serde::{Deserialize, Serialize};

/// Compute/memory specification of one GPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name ("V100-32GB", "A100-40GB").
    pub name: String,
    /// Device memory capacity.
    pub memory: Bytes,
    /// Peak dense FP16 tensor-core throughput, FLOP/s.
    pub peak_flops_fp16: f64,
    /// Peak dense FP32 throughput, FLOP/s.
    pub peak_flops_fp32: f64,
    /// Model-FLOPs utilization on FP16 tensor cores (memory-bound
    /// epilogues keep large transformer stacks at 0.3-0.5 of peak).
    pub efficiency_fp16: f64,
    /// Model-FLOPs utilization at FP32 (plain GEMM pipelines run much
    /// closer to peak, typically 0.7-0.85).
    pub efficiency_fp32: f64,
    /// Memory unavailable to tensors: CUDA context, NCCL buffers,
    /// framework workspace and allocator fragmentation slack.
    pub reserved: Bytes,
}

impl GpuSpec {
    /// NVIDIA Tesla V100 SXM2 with 32 GB HBM2 (DGX-1 generation).
    pub fn v100_32gb() -> Self {
        GpuSpec {
            name: "V100-32GB".to_owned(),
            memory: Bytes::gib(32),
            peak_flops_fp16: 125.0e12,
            peak_flops_fp32: 15.7e12,
            efficiency_fp16: 0.42,
            efficiency_fp32: 0.75,
            reserved: Bytes::mib(512),
        }
    }

    /// NVIDIA A100 with 40 GB HBM2e (DGX-2-class server in the paper).
    pub fn a100_40gb() -> Self {
        GpuSpec {
            name: "A100-40GB".to_owned(),
            memory: Bytes::gib(40),
            peak_flops_fp16: 312.0e12,
            peak_flops_fp32: 19.5e12,
            efficiency_fp16: 0.38,
            efficiency_fp32: 0.75,
            reserved: Bytes::mib(512),
        }
    }

    /// NVIDIA H100 SXM with 80 GB HBM3 (the paper's §V: "the latest GPU
    /// has only 80GB HBM").
    pub fn h100_80gb() -> Self {
        GpuSpec {
            name: "H100-80GB".to_owned(),
            memory: Bytes::gib(80),
            peak_flops_fp16: 989.0e12,
            peak_flops_fp32: 67.0e12,
            efficiency_fp16: 0.42,
            efficiency_fp32: 0.75,
            reserved: Bytes::mib(512),
        }
    }

    /// The Hopper GPU of a Grace-Hopper superchip: 96 GB HBM3 plus a
    /// dedicated 512 GB LPDDR5X CPU-side pool per GPU (paper §V).
    pub fn grace_hopper() -> Self {
        GpuSpec {
            name: "GH200-96GB".to_owned(),
            memory: Bytes::gib(96),
            peak_flops_fp16: 989.0e12,
            peak_flops_fp32: 67.0e12,
            efficiency_fp16: 0.42,
            efficiency_fp32: 0.75,
            reserved: Bytes::mib(512),
        }
    }

    /// Achievable FLOP/s at the given precision.
    pub fn achievable_flops(&self, fp16: bool) -> f64 {
        if fp16 {
            self.peak_flops_fp16 * self.efficiency_fp16
        } else {
            self.peak_flops_fp32 * self.efficiency_fp32
        }
    }

    /// Memory actually available for tensors.
    pub fn usable_memory(&self) -> Bytes {
        self.memory.saturating_sub(self.reserved)
    }

    /// Time to execute `flops` floating-point operations on this GPU.
    pub fn compute_time(&self, flops: f64, fp16: bool) -> Secs {
        assert!(flops >= 0.0, "flops must be non-negative");
        flops / self.achievable_flops(fp16)
    }
}

/// Host CPU side of the server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Host DRAM capacity available for pinned swap buffers.
    pub memory: Bytes,
    /// Aggregate host FLOP/s usable for a CPU Adam optimizer
    /// (relevant to the ZeRO-Offload baseline).
    pub flops: f64,
}

/// NVMe SSD array (relevant to the ZeRO-Infinity baseline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NvmeSpec {
    /// Usable capacity.
    pub capacity: Bytes,
    /// Sustained read bandwidth, bytes/s.
    pub read_bw: f64,
    /// Sustained write bandwidth, bytes/s.
    pub write_bw: f64,
}

/// A complete multi-GPU server: GPUs, interconnect, host memory, NVMe.
///
/// # Example
///
/// ```
/// use mpress_hw::Machine;
///
/// let m = Machine::dgx2();
/// assert_eq!(m.gpu_count(), 8);
/// assert!(m.gpu().memory > mpress_hw::Bytes::gib(39));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    name: String,
    gpu: GpuSpec,
    cpu: CpuSpec,
    nvme: Option<NvmeSpec>,
    topology: Topology,
    pcie: BandwidthCurve,
}

impl Machine {
    /// The paper's DGX-1 testbed: AWS p3dn.24xlarge, 8x V100-32GB,
    /// asymmetric NVLink, 768 GB host memory.
    pub fn dgx1() -> Self {
        Machine {
            name: "DGX-1 (8x V100-32GB)".to_owned(),
            gpu: GpuSpec::v100_32gb(),
            cpu: CpuSpec {
                memory: Bytes::gib(768),
                flops: 3.0e12,
            },
            nvme: Some(NvmeSpec {
                capacity: Bytes::gib(1800),
                read_bw: 16.0e9,
                write_bw: 12.0e9,
            }),
            topology: Topology::dgx1(),
            pcie: BandwidthCurve::pcie3_x16(),
        }
    }

    /// The paper's DGX-2-class testbed: 8x A100-40GB behind NVSwitch,
    /// 948 GB host memory, 6 TB NVMe whose sustained bandwidth is notably
    /// *lower* than the DGX-1's (the paper calls this out to explain the
    /// ZeRO-Infinity inversion in Fig. 8b).
    pub fn dgx2() -> Self {
        Machine {
            name: "DGX-2 (8x A100-40GB)".to_owned(),
            gpu: GpuSpec::a100_40gb(),
            cpu: CpuSpec {
                memory: Bytes::gib(948),
                flops: 4.0e12,
            },
            nvme: Some(NvmeSpec {
                capacity: Bytes::gib(6000),
                read_bw: 6.0e9,
                write_bw: 4.0e9,
            }),
            topology: Topology::dgx2(),
            pcie: BandwidthCurve::pcie3_x16(),
        }
    }

    /// A commodity 8-GPU server with **no NVLink**: same V100-class GPUs
    /// as the DGX-1 but PCIe-only peer communication and a smaller host.
    ///
    /// The floor of the paper's "democratizing" claim (§I): most multi-GPU
    /// servers are not DGX boxes. On this machine D2D swap has no donors to
    /// reach and intra-operator parallelism pays PCIe prices for every
    /// per-layer collective, so the inter-operator + host-swap/recompute
    /// side of MPress is all that remains — useful for sensitivity studies
    /// and the §II motivation experiment.
    pub fn commodity() -> Self {
        Machine {
            name: "Commodity (8x V100-32GB, PCIe-only)".to_owned(),
            gpu: GpuSpec::v100_32gb(),
            cpu: CpuSpec {
                memory: Bytes::gib(384),
                flops: 2.0e12,
            },
            nvme: Some(NvmeSpec {
                capacity: Bytes::gib(2000),
                read_bw: 3.0e9,
                write_bw: 2.0e9,
            }),
            topology: Topology::pcie_only(8),
            pcie: BandwidthCurve::pcie3_x16(),
        }
    }

    /// Starts building a custom machine.
    pub fn builder() -> MachineBuilder {
        MachineBuilder::default()
    }

    /// Human-readable machine name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The GPU model installed in every slot.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Host CPU description.
    pub fn cpu(&self) -> &CpuSpec {
        &self.cpu
    }

    /// NVMe array, if present.
    pub fn nvme(&self) -> Option<&NvmeSpec> {
        self.nvme.as_ref()
    }

    /// The NVLink topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// PCIe curve between any one GPU and host memory.
    pub fn pcie(&self) -> &BandwidthCurve {
        &self.pcie
    }

    /// Number of GPUs.
    pub fn gpu_count(&self) -> usize {
        self.topology.gpu_count()
    }

    /// Total GPU memory across all devices.
    pub fn total_gpu_memory(&self) -> Bytes {
        self.gpu.memory * self.gpu_count() as u64
    }

    /// Time to move `n` bytes between two GPUs over `lanes` parallel NVLink
    /// lanes. Returns `None` when `lanes == 0` (unreachable pair).
    pub fn try_nvlink_transfer_time(&self, n: Bytes, lanes: u32) -> Option<Secs> {
        if lanes == 0 {
            return None;
        }
        Some(BandwidthCurve::nvlink_lanes(lanes).transfer_time(n))
    }

    /// Like [`Machine::try_nvlink_transfer_time`] but panics on zero lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn nvlink_transfer_time(&self, n: Bytes, lanes: u32) -> Secs {
        self.try_nvlink_transfer_time(n, lanes)
            .expect("cannot transfer over zero NVLink lanes")
    }

    /// Time to move `n` bytes between one GPU and pinned host memory.
    pub fn pcie_transfer_time(&self, n: Bytes) -> Secs {
        self.pcie.transfer_time(n)
    }

    /// Time to read (`write == false`) or write `n` bytes on NVMe.
    ///
    /// # Panics
    ///
    /// Panics when the machine has no NVMe array.
    pub fn nvme_transfer_time(&self, n: Bytes, write: bool) -> Secs {
        let nvme = self.nvme.as_ref().expect("machine has no NVMe array");
        let bw = if write { nvme.write_bw } else { nvme.read_bw };
        BandwidthCurve::nvme(bw).transfer_time(n)
    }

    /// Time of a striped D2D transfer from `source` to several peers in
    /// parallel: the slowest stripe dominates.
    ///
    /// Stripes with zero lanes toward their importer are rejected.
    ///
    /// # Panics
    ///
    /// Panics if a stripe targets an NVLink-unreachable peer or the source
    /// itself.
    pub fn striped_transfer_time(&self, source: DeviceId, stripes: &[(DeviceId, Bytes)]) -> Secs {
        let mut worst: Secs = 0.0;
        for &(dst, bytes) in stripes {
            assert_ne!(dst, source, "stripe cannot target the source GPU");
            let lanes = self.topology.nvlink_lanes(source, dst);
            assert!(lanes > 0, "{source} cannot reach {dst} over NVLink");
            let t = self.nvlink_transfer_time(bytes, lanes);
            if t > worst {
                worst = t;
            }
        }
        worst
    }
}

/// Builder for custom [`Machine`]s (used by tests and sensitivity studies).
///
/// # Example
///
/// ```
/// use mpress_hw::{Machine, GpuSpec, Topology, Bytes};
///
/// let m = Machine::builder()
///     .name("mini")
///     .gpu(GpuSpec::v100_32gb())
///     .topology(Topology::dgx1())
///     .cpu_memory(Bytes::gib(256))
///     .build();
/// assert_eq!(m.gpu_count(), 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MachineBuilder {
    name: Option<String>,
    gpu: Option<GpuSpec>,
    cpu_memory: Option<Bytes>,
    cpu_flops: Option<f64>,
    nvme: Option<NvmeSpec>,
    topology: Option<Topology>,
    pcie: Option<BandwidthCurve>,
}

impl MachineBuilder {
    /// Sets the machine name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the GPU model.
    pub fn gpu(mut self, gpu: GpuSpec) -> Self {
        self.gpu = Some(gpu);
        self
    }

    /// Sets host memory capacity.
    pub fn cpu_memory(mut self, memory: Bytes) -> Self {
        self.cpu_memory = Some(memory);
        self
    }

    /// Sets host compute throughput (for CPU optimizers).
    pub fn cpu_flops(mut self, flops: f64) -> Self {
        self.cpu_flops = Some(flops);
        self
    }

    /// Installs an NVMe array.
    pub fn nvme(mut self, nvme: NvmeSpec) -> Self {
        self.nvme = Some(nvme);
        self
    }

    /// Sets the NVLink topology.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Overrides the PCIe curve.
    pub fn pcie(mut self, pcie: BandwidthCurve) -> Self {
        self.pcie = Some(pcie);
        self
    }

    /// Finishes the machine. Missing fields default to DGX-1 components.
    pub fn build(self) -> Machine {
        let base = Machine::dgx1();
        Machine {
            name: self.name.unwrap_or_else(|| "custom".to_owned()),
            gpu: self.gpu.unwrap_or(base.gpu),
            cpu: CpuSpec {
                memory: self.cpu_memory.unwrap_or(base.cpu.memory),
                flops: self.cpu_flops.unwrap_or(base.cpu.flops),
            },
            nvme: self.nvme.or(base.nvme),
            topology: self.topology.unwrap_or(base.topology),
            pcie: self.pcie.unwrap_or(base.pcie),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx1_preset_matches_paper_hardware() {
        let m = Machine::dgx1();
        assert_eq!(m.gpu_count(), 8);
        assert_eq!(m.gpu().memory, Bytes::gib(32));
        assert_eq!(m.total_gpu_memory(), Bytes::gib(256));
        assert_eq!(m.cpu().memory, Bytes::gib(768));
    }

    #[test]
    fn dgx2_preset_matches_paper_hardware() {
        let m = Machine::dgx2();
        assert_eq!(m.gpu().memory, Bytes::gib(40));
        assert_eq!(m.cpu().memory, Bytes::gib(948));
        assert!(m.nvme().is_some());
        // The rented DGX-2's SSD bandwidth is lower than DGX-1's (paper IV-C).
        assert!(m.nvme().unwrap().read_bw < Machine::dgx1().nvme().unwrap().read_bw);
    }

    #[test]
    fn a100_faster_than_v100() {
        let v = GpuSpec::v100_32gb();
        let a = GpuSpec::a100_40gb();
        assert!(a.achievable_flops(true) > 2.0 * v.achievable_flops(true));
    }

    #[test]
    fn compute_time_scales_linearly() {
        let g = GpuSpec::v100_32gb();
        let t1 = g.compute_time(1.0e12, true);
        let t2 = g.compute_time(2.0e12, true);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn d2d_transfer_beats_pcie() {
        let m = Machine::dgx1();
        let n = Bytes::mib(256);
        let d2d = m.nvlink_transfer_time(n, 2);
        let host = m.pcie_transfer_time(n);
        assert!(d2d < host / 3.0);
    }

    #[test]
    fn zero_lane_transfer_is_none() {
        let m = Machine::dgx1();
        assert!(m.try_nvlink_transfer_time(Bytes::mib(1), 0).is_none());
    }

    #[test]
    fn striped_transfer_bounded_by_slowest_stripe() {
        let m = Machine::dgx1();
        let src = DeviceId(0);
        // GPU0 -> GPU3 (2 lanes) and GPU0 -> GPU1 (1 lane), equal bytes:
        // the single-lane stripe dominates.
        let stripes = vec![
            (DeviceId(3), Bytes::mib(100)),
            (DeviceId(1), Bytes::mib(100)),
        ];
        let t = m.striped_transfer_time(src, &stripes);
        let single = m.nvlink_transfer_time(Bytes::mib(100), 1);
        assert!((t - single).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot reach")]
    fn striped_transfer_rejects_unreachable_peer() {
        let m = Machine::dgx1();
        let _ = m.striped_transfer_time(DeviceId(0), &[(DeviceId(5), Bytes::mib(1))]);
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let m = Machine::builder()
            .name("x")
            .cpu_memory(Bytes::gib(64))
            .build();
        assert_eq!(m.name(), "x");
        assert_eq!(m.cpu().memory, Bytes::gib(64));
        assert_eq!(m.gpu().name, "V100-32GB");
    }

    #[test]
    fn nvme_times_use_direction() {
        let m = Machine::dgx1();
        let rd = m.nvme_transfer_time(Bytes::gib(1), false);
        let wr = m.nvme_transfer_time(Bytes::gib(1), true);
        assert!(wr > rd, "writes are slower than reads on this preset");
    }
}

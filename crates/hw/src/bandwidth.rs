//! Size-dependent effective bandwidth model (paper Fig. 4).
//!
//! Real interconnects only reach their peak bandwidth for large transfers;
//! small messages are dominated by launch latency. The paper's Fig. 4 shows
//! exactly this ramp for PCIe and 2/4/6-lane NVLink aggregates. We model a
//! channel as
//!
//! ```text
//! time(n)   = latency + n / peak
//! bw_eff(n) = n / time(n) = peak * n / (n + peak * latency)
//! ```
//!
//! which is the classic latency/bandwidth ("n-half") model: effective
//! bandwidth is half the peak when `n = peak * latency`.

use crate::units::{Bytes, Secs};
use serde::{Deserialize, Serialize};

/// Peak unidirectional bandwidth of one NVLink 2.0 lane, bytes/second.
pub const NVLINK2_LANE_BW: f64 = 25.0e9;

/// Peak unidirectional bandwidth of a PCIe 3.0 x16 host link, bytes/second.
/// The paper measures NVLink aggregates at 3.9-12.5x PCIe, putting PCIe near
/// 12 GB/s achievable.
pub const PCIE3_X16_BW: f64 = 12.0e9;

/// A latency/peak-bandwidth channel.
///
/// # Example
///
/// ```
/// use mpress_hw::{BandwidthCurve, Bytes};
///
/// let lane = BandwidthCurve::nvlink_lanes(2);
/// // Small transfers see far less than peak bandwidth...
/// assert!(lane.effective_bandwidth(Bytes::kib(64)) < 25.0e9);
/// // ...large ones approach 2 lanes * 25 GB/s.
/// assert!(lane.effective_bandwidth(Bytes::gib(1)) > 45.0e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthCurve {
    /// Asymptotic peak bandwidth in bytes/second.
    peak: f64,
    /// Fixed per-transfer launch latency in seconds.
    latency: Secs,
}

impl BandwidthCurve {
    /// Creates a curve from a peak bandwidth (bytes/s) and launch latency.
    ///
    /// # Panics
    ///
    /// Panics if `peak` is not strictly positive or `latency` is negative.
    pub fn new(peak: f64, latency: Secs) -> Self {
        assert!(peak.is_finite() && peak > 0.0, "peak must be positive");
        assert!(
            latency.is_finite() && latency >= 0.0,
            "latency must be >= 0"
        );
        BandwidthCurve { peak, latency }
    }

    /// An aggregate of `lanes` NVLink 2.0 lanes used in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn nvlink_lanes(lanes: u32) -> Self {
        assert!(lanes > 0, "need at least one lane");
        // Striping across more lanes adds a small coordination overhead,
        // which is why the paper measures 146 GB/s (not 150) on six lanes.
        BandwidthCurve::new(NVLINK2_LANE_BW * f64::from(lanes) * 0.975, 15e-6)
    }

    /// A PCIe 3.0 x16 host link (GPU <-> pinned CPU memory).
    pub fn pcie3_x16() -> Self {
        BandwidthCurve::new(PCIE3_X16_BW, 20e-6)
    }

    /// An NVMe SSD channel with the given sustained bandwidth (bytes/s).
    pub fn nvme(sustained_bw: f64) -> Self {
        BandwidthCurve::new(sustained_bw, 100e-6)
    }

    /// Asymptotic peak bandwidth, bytes/second.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Fixed per-transfer latency, seconds.
    pub fn latency(&self) -> Secs {
        self.latency
    }

    /// Time to move `n` bytes across the channel.
    pub fn transfer_time(&self, n: Bytes) -> Secs {
        self.latency + n.as_f64() / self.peak
    }

    /// Effective (achieved) bandwidth for an `n`-byte transfer, bytes/s.
    ///
    /// Returns 0 for an empty transfer.
    pub fn effective_bandwidth(&self, n: Bytes) -> f64 {
        if n.is_zero() {
            return 0.0;
        }
        n.as_f64() / self.transfer_time(n)
    }

    /// The transfer size at which effective bandwidth reaches half the peak.
    pub fn half_peak_size(&self) -> Bytes {
        Bytes((self.peak * self.latency).round() as u64)
    }
}

/// A named channel of the machine, pairing a curve with its [`LinkKind`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// What medium the channel crosses.
    pub kind: crate::topology::LinkKind,
    /// Its latency/bandwidth curve.
    pub curve: BandwidthCurve,
}

impl Channel {
    /// Convenience constructor.
    pub fn new(kind: crate::topology::LinkKind, curve: BandwidthCurve) -> Self {
        Channel { kind, curve }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_linear() {
        let c = BandwidthCurve::new(10.0e9, 10e-6);
        let t = c.transfer_time(Bytes::gib(1));
        let expected = 10e-6 + Bytes::gib(1).as_f64() / 10.0e9;
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn effective_bandwidth_ramps_with_size() {
        let c = BandwidthCurve::nvlink_lanes(6);
        let small = c.effective_bandwidth(Bytes::kib(64));
        let medium = c.effective_bandwidth(Bytes::mib(16));
        let large = c.effective_bandwidth(Bytes::gib(1));
        assert!(small < medium && medium < large);
        assert!(large <= c.peak());
    }

    #[test]
    fn six_lanes_land_near_paper_measurement() {
        // Paper Fig. 4: six NVLinks aggregate to ~146 GB/s unidirectional.
        let c = BandwidthCurve::nvlink_lanes(6);
        let bw = c.effective_bandwidth(Bytes::gib(1));
        assert!(
            (140.0e9..150.0e9).contains(&bw),
            "six-lane bandwidth {bw:.3e} outside paper range"
        );
    }

    #[test]
    fn two_lanes_land_near_paper_measurement() {
        // Paper Fig. 4: two NVLinks aggregate to ~45-50 GB/s.
        let c = BandwidthCurve::nvlink_lanes(2);
        let bw = c.effective_bandwidth(Bytes::gib(1));
        assert!((44.0e9..50.0e9).contains(&bw));
    }

    #[test]
    fn nvlink_beats_pcie_by_paper_factors() {
        // Paper: NVLink aggregates are 3.9-12.5x PCIe bandwidth.
        let pcie = BandwidthCurve::pcie3_x16().effective_bandwidth(Bytes::gib(1));
        let nv2 = BandwidthCurve::nvlink_lanes(2).effective_bandwidth(Bytes::gib(1));
        let nv6 = BandwidthCurve::nvlink_lanes(6).effective_bandwidth(Bytes::gib(1));
        assert!(nv2 / pcie >= 3.5, "NV2/PCIe = {}", nv2 / pcie);
        assert!(nv6 / pcie <= 13.0, "NV6/PCIe = {}", nv6 / pcie);
        assert!(nv6 / pcie >= 10.0, "NV6/PCIe = {}", nv6 / pcie);
    }

    #[test]
    fn half_peak_size_matches_definition() {
        let c = BandwidthCurve::new(10.0e9, 10e-6);
        let n = c.half_peak_size();
        let bw = c.effective_bandwidth(n);
        assert!((bw / c.peak() - 0.5).abs() < 0.01);
    }

    #[test]
    fn zero_bytes_zero_bandwidth() {
        let c = BandwidthCurve::pcie3_x16();
        assert_eq!(c.effective_bandwidth(Bytes::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "peak must be positive")]
    fn rejects_nonpositive_peak() {
        let _ = BandwidthCurve::new(0.0, 0.0);
    }
}

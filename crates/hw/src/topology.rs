//! GPU interconnect topologies.
//!
//! Reproduces the two server generations evaluated in the paper:
//!
//! * **DGX-1** (paper Fig. 3): 8 V100s in a hybrid cube-mesh. Each GPU has
//!   six NVLink lanes distributed *asymmetrically* over four neighbours —
//!   e.g. GPU0-GPU3 get two lanes (50 GB/s) while GPU0-GPU1 get one
//!   (25 GB/s), and some pairs (GPU0-GPU5) have no direct link at all.
//! * **DGX-2**: 8 A100s behind NVSwitch. Every pair is reachable and a GPU
//!   can drive its full six-lane bandwidth toward any single peer, limited
//!   only by its per-device ingress/egress capacity.

use crate::units::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a GPU device within one server (0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DeviceId(pub usize);

impl DeviceId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPU{}", self.0)
    }
}

impl From<usize> for DeviceId {
    fn from(v: usize) -> Self {
        DeviceId(v)
    }
}

/// The kind of channel a transfer crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Direct GPU-to-GPU NVLink lane(s).
    NvLink,
    /// Host PCIe link between one GPU and CPU memory.
    Pcie,
    /// NVMe SSD behind the host.
    Nvme,
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkKind::NvLink => write!(f, "NVLink"),
            LinkKind::Pcie => write!(f, "PCIe"),
            LinkKind::Nvme => write!(f, "NVMe"),
        }
    }
}

/// Which connection style a [`Topology`] implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Point-to-point lanes, possibly uneven (DGX-1 hybrid cube-mesh).
    Asymmetric,
    /// Switched all-to-all (DGX-2 NVSwitch).
    Symmetric,
}

/// The NVLink topology of one multi-GPU server.
///
/// Stores the number of NVLink lanes between every device pair plus the
/// per-device lane budget (six on both V100 and A100).
///
/// # Example
///
/// ```
/// use mpress_hw::{Topology, DeviceId};
///
/// let t = Topology::dgx1();
/// assert_eq!(t.nvlink_lanes(DeviceId(0), DeviceId(3)), 2);
/// assert_eq!(t.nvlink_lanes(DeviceId(0), DeviceId(5)), 0);
/// assert_eq!(t.lane_budget(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    kind: TopologyKind,
    gpu_count: usize,
    /// `lanes[a][b]` = number of NVLink lanes between GPUs `a` and `b`.
    lanes: Vec<Vec<u32>>,
    /// Max simultaneous lanes a single GPU can drive (in or out).
    lane_budget: u32,
}

impl Topology {
    /// Builds a topology from an explicit symmetric lane matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square, not symmetric, has a non-zero
    /// diagonal, or if any row exceeds the lane budget.
    pub fn from_lane_matrix(kind: TopologyKind, lanes: Vec<Vec<u32>>, lane_budget: u32) -> Self {
        let n = lanes.len();
        for (i, row) in lanes.iter().enumerate() {
            assert_eq!(row.len(), n, "lane matrix must be square");
            assert_eq!(row[i], 0, "diagonal must be zero");
            let total: u32 = row.iter().sum();
            assert!(
                total <= lane_budget,
                "GPU{i} uses {total} lanes, budget is {lane_budget}"
            );
        }
        for (i, row) in lanes.iter().enumerate() {
            for (j, &l) in row.iter().enumerate() {
                assert_eq!(l, lanes[j][i], "lane matrix must be symmetric");
            }
        }
        Topology {
            kind,
            gpu_count: n,
            lanes,
            lane_budget,
        }
    }

    /// The DGX-1 (V100) hybrid cube-mesh of the paper's Fig. 3.
    ///
    /// Each GPU has exactly six lanes spread over four neighbours; two
    /// neighbours get double lanes.
    pub fn dgx1() -> Self {
        // (a, b, lanes) edges of the hybrid cube-mesh; 24 lanes in total.
        const EDGES: &[(usize, usize, u32)] = &[
            (0, 1, 1),
            (0, 2, 1),
            (0, 3, 2),
            (0, 4, 2),
            (1, 2, 2),
            (1, 3, 1),
            (1, 5, 2),
            (2, 3, 1),
            (2, 6, 2),
            (3, 7, 2),
            (4, 5, 1),
            (4, 6, 1),
            (4, 7, 2),
            (5, 6, 2),
            (5, 7, 1),
            (6, 7, 1),
        ];
        let mut lanes = vec![vec![0u32; 8]; 8];
        for &(a, b, l) in EDGES {
            lanes[a][b] = l;
            lanes[b][a] = l;
        }
        Topology::from_lane_matrix(TopologyKind::Asymmetric, lanes, 6)
    }

    /// The DGX-2-class NVSwitch fabric: all-to-all, six lanes of capacity
    /// per GPU usable toward any subset of peers.
    pub fn dgx2() -> Self {
        let n = 8;
        // Behind NVSwitch the per-pair lane count is not fixed; we record the
        // full budget for every pair and enforce the per-device budget at
        // transfer-planning time.
        let mut lanes = vec![vec![6u32; n]; n];
        for (i, row) in lanes.iter_mut().enumerate() {
            row[i] = 0;
        }
        Topology {
            kind: TopologyKind::Symmetric,
            gpu_count: n,
            lanes,
            lane_budget: 6,
        }
    }

    /// A commodity server with **no NVLink at all**: every GPU pair talks
    /// over PCIe only.
    ///
    /// This is the "multi-GPU servers" floor of the paper's democratization
    /// argument (§I): no D2D donors are reachable, and intra-operator
    /// parallelism's per-layer collectives must cross PCIe. The kind is
    /// [`TopologyKind::Symmetric`] because every placement is equivalent —
    /// device-mapping search correctly degenerates to the identity.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn pcie_only(n: usize) -> Self {
        assert!(n > 0, "a server needs at least one GPU");
        Topology {
            kind: TopologyKind::Symmetric,
            gpu_count: n,
            lanes: vec![vec![0; n]; n],
            lane_budget: 0,
        }
    }

    /// Which connection style this topology implements.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of GPUs in the server.
    pub fn gpu_count(&self) -> usize {
        self.gpu_count
    }

    /// Per-device simultaneous lane budget.
    pub fn lane_budget(&self) -> u32 {
        self.lane_budget
    }

    /// Number of NVLink lanes between `a` and `b` (0 when unreachable).
    ///
    /// For a symmetric (switched) topology this is the per-pair *capacity*,
    /// i.e. the full lane budget.
    ///
    /// # Panics
    ///
    /// Panics if either device index is out of range.
    pub fn nvlink_lanes(&self, a: DeviceId, b: DeviceId) -> u32 {
        assert!(
            a.0 < self.gpu_count && b.0 < self.gpu_count,
            "bad device id"
        );
        if a == b {
            return 0;
        }
        self.lanes[a.0][b.0]
    }

    /// True when `a` and `b` are directly NVLink-reachable.
    pub fn reachable(&self, a: DeviceId, b: DeviceId) -> bool {
        a != b && self.nvlink_lanes(a, b) > 0
    }

    /// All NVLink neighbours of `dev`, with their lane counts.
    pub fn neighbors(&self, dev: DeviceId) -> Vec<(DeviceId, u32)> {
        (0..self.gpu_count)
            .filter(|&j| j != dev.0 && self.lanes[dev.0][j] > 0)
            .map(|j| (DeviceId(j), self.lanes[dev.0][j]))
            .collect()
    }

    /// All device ids in the server.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.gpu_count).map(DeviceId)
    }

    /// Total lanes a device can drive simultaneously: the sum over its
    /// neighbours on a point-to-point fabric, the per-device budget behind a
    /// switch.
    pub fn total_lanes(&self, dev: DeviceId) -> u32 {
        match self.kind {
            TopologyKind::Asymmetric => self.lanes[dev.0].iter().sum(),
            TopologyKind::Symmetric => self.lane_budget,
        }
    }
}

/// A multi-lane striped route between one exporter GPU and several peers.
///
/// Used by D2D swap planning: each entry says how many bytes flow to which
/// importer over how many lanes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripedRoute {
    /// Exporting (memory-pressured) device.
    pub source: DeviceId,
    /// `(importer, lanes, bytes)` per stripe.
    pub stripes: Vec<(DeviceId, u32, Bytes)>,
}

impl StripedRoute {
    /// Total bytes moved by the route.
    pub fn total_bytes(&self) -> Bytes {
        self.stripes.iter().map(|&(_, _, b)| b).sum()
    }

    /// Total lanes engaged by the route.
    pub fn total_lanes(&self) -> u32 {
        self.stripes.iter().map(|&(_, l, _)| l).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx1_every_gpu_has_six_lanes() {
        let t = Topology::dgx1();
        for d in t.devices() {
            let total: u32 = t.neighbors(d).iter().map(|&(_, l)| l).sum();
            assert_eq!(total, 6, "{d} should own exactly 6 lanes");
        }
    }

    #[test]
    fn dgx1_matches_paper_figure3_examples() {
        let t = Topology::dgx1();
        // Paper: GPU0 -> GPU3 has two NVLinks (50 GB/s), twice GPU0 -> GPU1.
        assert_eq!(t.nvlink_lanes(DeviceId(0), DeviceId(3)), 2);
        assert_eq!(t.nvlink_lanes(DeviceId(0), DeviceId(1)), 1);
        // Cross-cube pairs without a direct link exist on DGX-1.
        assert!(!t.reachable(DeviceId(0), DeviceId(5)));
        assert!(!t.reachable(DeviceId(1), DeviceId(4)));
    }

    #[test]
    fn dgx1_is_symmetric_matrix() {
        let t = Topology::dgx1();
        for a in t.devices() {
            for b in t.devices() {
                assert_eq!(t.nvlink_lanes(a, b), t.nvlink_lanes(b, a));
            }
        }
    }

    #[test]
    fn dgx2_all_pairs_reachable() {
        let t = Topology::dgx2();
        for a in t.devices() {
            for b in t.devices() {
                if a != b {
                    assert!(t.reachable(a, b));
                    assert_eq!(t.nvlink_lanes(a, b), 6);
                }
            }
        }
        assert_eq!(t.kind(), TopologyKind::Symmetric);
    }

    #[test]
    fn neighbors_excludes_self_and_unreachable() {
        let t = Topology::dgx1();
        let nbhs = t.neighbors(DeviceId(0));
        assert_eq!(nbhs.len(), 4);
        assert!(nbhs.iter().all(|&(d, l)| d != DeviceId(0) && l > 0));
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_lane_matrix_rejects_asymmetric_input() {
        let lanes = vec![vec![0, 1], vec![2, 0]];
        let _ = Topology::from_lane_matrix(TopologyKind::Asymmetric, lanes, 6);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn from_lane_matrix_rejects_over_budget_row() {
        let lanes = vec![vec![0, 7], vec![7, 0]];
        let _ = Topology::from_lane_matrix(TopologyKind::Asymmetric, lanes, 6);
    }

    #[test]
    fn striped_route_totals() {
        let r = StripedRoute {
            source: DeviceId(0),
            stripes: vec![
                (DeviceId(3), 2, Bytes::mib(100)),
                (DeviceId(4), 2, Bytes::mib(100)),
                (DeviceId(1), 1, Bytes::mib(50)),
            ],
        };
        assert_eq!(r.total_bytes(), Bytes::mib(250));
        assert_eq!(r.total_lanes(), 5);
    }
}

//! Static analysis for the MPress reproduction.
//!
//! Three passes, none of which runs the emulator:
//!
//! * **Plan verification** ([`PlanVerifier`]): checks a compaction plan
//!   and device map against the training graph, the machine topology
//!   and the memory model, reporting findings as stable `MP0xx`
//!   [`Diagnostic`]s. Exposed as `mpress-cli check` and as a planner
//!   hook that rejects structurally invalid candidates before
//!   emulation (`SearchStats::verifier_rejections`).
//! * **Certified bounds** ([`BoundsAnalyzer`]): an abstract
//!   interpretation computing per-device residency envelopes and a
//!   makespan interval with a three-way capacity verdict
//!   (certified-OOM / certified-fit / unknown). Drives sound incumbent
//!   pruning in the planner (`SearchStats::bounds_pruned`) and the
//!   `check --bounds` report.
//! * **Source linting** ([`lint`]): the `mpress-lint` binary's engine —
//!   token-level determinism/robustness lints over the workspace
//!   sources with a ratcheting allowlist.
//!
//! The verifier is deliberately **one-sided**: it only reports what it
//! can prove (a structural malformation, or a residency *lower bound*
//! already over capacity), so a plan the planner emits and the
//! emulator accepts is never rejected. That soundness property is what
//! allows wiring it into the search without changing any chosen plan.

#![forbid(unsafe_code)]

pub mod bounds;
pub mod diag;
pub mod lint;
pub mod verifier;

pub use bounds::{certify_plan, BoundsAnalyzer, BoundsVerdict, PlanBounds, ResidencyBounds};
pub use diag::{Code, Context, Diagnostic, Report, Severity};
pub use verifier::{check_plan, PlanVerifier};

//! Certified plan bounds: an abstract interpretation over lowered plans.
//!
//! Where the verifier ([`crate::verifier`]) answers "is this plan
//! well-formed?", the bounds pass answers "what can the emulator's
//! numbers possibly be?" — without running it. For one candidate
//! `(plan, device_map)` it computes
//!
//! * a **per-device residency envelope** `[lo, hi]` in exact,
//!   overflow-checked u64 bytes, and
//! * a **makespan interval** `[makespan_lo, makespan_hi]` from the
//!   arena's cost profile (critical path / copy-engine occupancy below,
//!   total task time plus the engine's bounded eviction work above).
//!
//! Both sides are *certified* against the emulator's actual accounting
//! rules, giving a three-way verdict the planner can act on soundly:
//!
//! * [`BoundsVerdict::CertifiedOom`] — some device's residency **lower**
//!   bound exceeds capacity. Emulation is guaranteed to end
//!   out-of-memory; the planner may reject pre-emulation (MP013).
//! * [`BoundsVerdict::CertifiedFit`] — every device's residency
//!   **upper** bound fits. No device-capacity OOM is possible (host/NVMe
//!   pools are out of scope), so the analytic residency re-checks
//!   (MP007/MP008) are redundant.
//! * [`BoundsVerdict::Unknown`] — neither side is conclusive; emulate.
//!
//! # The residency lattice
//!
//! The emulator allocates a tensor only on its **home** device
//! (`device_map.device_of(tensor.stage)`) and d2d stripe chunks only on
//! their **target** devices. That home-only invariant makes the per-device
//! interval arithmetic exact rather than heuristic:
//!
//! * `hi[d]` = every byte that could ever be simultaneously resident on
//!   `d`: all tensors homed on stages mapped to `d` plus all stripe
//!   chunks targeting `d`.
//! * `lo[d]` = the larger of two witnesses that hold in *every* run:
//!   the exact `t = 0` allocation (statics resident per their
//!   directives, static stripe chunks at their targets) and the
//!   permanent core (never-freed, never-evictable statics) plus the
//!   largest single-op write working set (the bytes the engine allocates
//!   at op start and cannot release before the op completes).
//!
//! Saturating arithmetic keeps `lo` sound under overflow (a saturated
//! sum understates the true demand), while any overflow on the `hi`
//! side withdraws the certified-fit verdict.

use crate::diag::{Code, Context, Diagnostic, Report};
use mpress_compaction::{InstrumentationPlan, MemoryDirective};
use mpress_graph::{TensorKind, TrainingGraph};
use mpress_hw::{Bytes, Machine, Secs};
use mpress_sim::{DeviceMap, SimArena};
use serde::{Serialize, Value};
use std::collections::BTreeMap;

/// The three-way outcome of the residency interval comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundsVerdict {
    /// Some device's residency lower bound exceeds capacity: emulation
    /// is guaranteed to report out-of-memory.
    CertifiedOom,
    /// Every device's residency upper bound fits: no device-capacity
    /// OOM is possible (host/NVMe exhaustion remains possible).
    CertifiedFit,
    /// Neither bound is conclusive; only emulation can decide.
    Unknown,
}

impl BoundsVerdict {
    /// Stable wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            BoundsVerdict::CertifiedOom => "certified-oom",
            BoundsVerdict::CertifiedFit => "certified-fit",
            BoundsVerdict::Unknown => "unknown",
        }
    }
}

impl std::fmt::Display for BoundsVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for BoundsVerdict {
    fn to_json(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

/// Per-device certified residency envelope for one candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidencyBounds {
    /// Certified lower bound on peak residency, one entry per machine
    /// GPU (devices hosting no stage get their stripe-chunk floor).
    pub lo: Vec<Bytes>,
    /// Certified upper bound on peak residency, same indexing.
    pub hi: Vec<Bytes>,
    /// The capacity verdict the envelopes imply.
    pub verdict: BoundsVerdict,
    /// Byte arithmetic saturated somewhere; `lo` stays sound, but
    /// certified-fit is withdrawn.
    pub overflowed: bool,
}

impl ResidencyBounds {
    /// MP013 diagnostics for a certified-OOM verdict (empty report
    /// otherwise), against the given per-device capacity.
    pub fn report(&self, usable: Bytes) -> Report {
        let mut report = Report::new();
        if self.verdict != BoundsVerdict::CertifiedOom {
            return report;
        }
        for (d, &lo) in self.lo.iter().enumerate() {
            if lo > usable {
                report.push(Diagnostic::error(
                    Code::CertifiedOom,
                    Context::none().device(d),
                    format!(
                        "device {d} residency is certified to reach at least {lo}, \
                         capacity is {usable}"
                    ),
                ));
            }
        }
        report
    }
}

impl Serialize for ResidencyBounds {
    fn to_json(&self) -> Value {
        let lo: Vec<u64> = self.lo.iter().map(|b| b.0).collect();
        let hi: Vec<u64> = self.hi.iter().map(|b| b.0).collect();
        Value::Object(vec![
            ("lo_bytes".to_string(), lo.to_json()),
            ("hi_bytes".to_string(), hi.to_json()),
            ("verdict".to_string(), self.verdict.to_json()),
            ("overflowed".to_string(), self.overflowed.to_json()),
        ])
    }
}

/// The full certified interval set for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanBounds {
    /// Certified makespan lower bound (critical path / copy occupancy).
    /// Holds for every run that completes without OOM.
    pub makespan_lo: Secs,
    /// Certified makespan upper bound (total task time plus the
    /// engine's eviction-cap-bounded swap work). Holds for every run,
    /// OOM or not.
    pub makespan_hi: Secs,
    /// Per-device residency envelope and capacity verdict.
    pub residency: ResidencyBounds,
}

impl Serialize for PlanBounds {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("makespan_lo_s".to_string(), self.makespan_lo.to_json()),
            ("makespan_hi_s".to_string(), self.makespan_hi.to_json()),
            ("residency".to_string(), self.residency.to_json()),
        ])
    }
}

/// The bounds analyzer. Construct once per `(machine, graph)`; call
/// [`BoundsAnalyzer::certify`] per candidate plan — it is arena-free
/// (pure byte math), so it can run before the verifier and before any
/// emulation state exists.
#[derive(Debug)]
pub struct BoundsAnalyzer<'a> {
    machine: &'a Machine,
    graph: &'a TrainingGraph,
    /// Per-stage total bytes over ALL tensors homed on the stage.
    stage_total: Vec<Bytes>,
    /// Per-stage total bytes of static tensors (the exact `t = 0`
    /// residency before directive adjustments).
    static_total: Vec<Bytes>,
    /// Per-stage bytes of statics with no free site: resident forever
    /// unless a swap directive makes them evictable.
    perm_static: Vec<Bytes>,
    /// Per-stage `(op_ws, op_index)` sorted descending by bytes, where
    /// `op_ws` is the op's distinct same-stage non-static write bytes
    /// (the engine allocates exactly these at op start when absent).
    /// Sorted for fast re-maximization under per-plan reductions.
    stage_ws_sorted: Vec<Vec<(Bytes, u32)>>,
    /// Per-tensor deduped list of same-stage non-static writer ops.
    write_sites: Vec<Vec<u32>>,
    /// Per-tensor count of free sites (permanence test).
    free_sites: Vec<u32>,
    /// A byte sum saturated during precomputation.
    precompute_overflow: bool,
}

impl<'a> BoundsAnalyzer<'a> {
    /// Precomputes the per-stage residency tables.
    pub fn new(machine: &'a Machine, graph: &'a TrainingGraph) -> Self {
        let n_stages = graph.n_stages();
        let n_tensors = graph.tensors().len();
        let mut overflowed = false;
        let mut add = |acc: &mut Bytes, b: Bytes| {
            *acc = match acc.checked_add(b) {
                Some(sum) => sum,
                None => {
                    overflowed = true;
                    acc.saturating_add(b)
                }
            };
        };

        let mut free_sites = vec![0u32; n_tensors];
        for op in graph.ops() {
            for &t in &op.frees {
                if let Some(c) = free_sites.get_mut(t.index()) {
                    *c += 1;
                }
            }
        }

        let mut stage_total = vec![Bytes::ZERO; n_stages];
        let mut static_total = vec![Bytes::ZERO; n_stages];
        let mut perm_static = vec![Bytes::ZERO; n_stages];
        for t in graph.tensors() {
            if t.stage >= n_stages {
                continue;
            }
            add(&mut stage_total[t.stage], t.bytes);
            if t.kind.is_static() {
                add(&mut static_total[t.stage], t.bytes);
                if free_sites[t.id.index()] == 0 {
                    add(&mut perm_static[t.stage], t.bytes);
                }
            }
        }

        let mut stage_ws_sorted: Vec<Vec<(Bytes, u32)>> = vec![Vec::new(); n_stages];
        let mut write_sites: Vec<Vec<u32>> = vec![Vec::new(); n_tensors];
        let mut seen = Vec::new();
        for (i, op) in graph.ops().iter().enumerate() {
            if op.stage >= n_stages {
                continue;
            }
            seen.clear();
            let mut ws = Bytes::ZERO;
            for &t in &op.writes {
                let Some(tensor) = graph.tensors().get(t.index()) else {
                    continue;
                };
                if tensor.kind.is_static() || tensor.stage != op.stage || seen.contains(&t) {
                    continue;
                }
                seen.push(t);
                add(&mut ws, tensor.bytes);
                write_sites[t.index()].push(i as u32);
            }
            stage_ws_sorted[op.stage].push((ws, i as u32));
        }
        for per_stage in &mut stage_ws_sorted {
            per_stage.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        }

        BoundsAnalyzer {
            machine,
            graph,
            stage_total,
            static_total,
            perm_static,
            stage_ws_sorted,
            write_sites,
            free_sites,
            precompute_overflow: overflowed,
        }
    }

    /// Computes the certified per-device residency envelope for one
    /// candidate. Malformed input (short device map, out-of-range
    /// devices, directives on unknown or boundary tensors) degrades the
    /// verdict to [`BoundsVerdict::Unknown`] — the verifier owns those
    /// rejections.
    pub fn certify(&self, plan: &InstrumentationPlan, device_map: &DeviceMap) -> ResidencyBounds {
        let n_stages = self.graph.n_stages();
        let n_tensors = self.graph.tensors().len();
        let gpus = self.machine.gpu_count();
        let usable = self.machine.gpu().usable_memory();
        let mut overflowed = self.precompute_overflow;
        let mut untrusted = device_map.len() != n_stages;

        // Resolve each stage's device once; out-of-range maps are the
        // verifier's MP011 problem, not ours.
        let device_of: Vec<Option<usize>> = (0..n_stages)
            .map(|s| {
                let d = (s < device_map.len()).then(|| device_map.device_of(s).index());
                match d {
                    Some(d) if d < gpus => Some(d),
                    Some(_) => {
                        untrusted = true;
                        None
                    }
                    None => {
                        untrusted = true;
                        None
                    }
                }
            })
            .collect();

        let add = |acc: &mut Bytes, b: Bytes, overflowed: &mut bool| {
            *acc = match acc.checked_add(b) {
                Some(sum) => sum,
                None => {
                    *overflowed = true;
                    acc.saturating_add(b)
                }
            };
        };

        // Upper envelope seed and t=0 seed: everything homed per stage.
        let mut hi = vec![Bytes::ZERO; gpus];
        let mut init = vec![Bytes::ZERO; gpus];
        for (s, dev) in device_of.iter().enumerate().take(n_stages) {
            if let Some(d) = *dev {
                add(&mut hi[d], self.stage_total[s], &mut overflowed);
                add(&mut init[d], self.static_total[s], &mut overflowed);
            }
        }

        // Walk the directives: adjust the t=0 picture, accumulate
        // stripe-chunk bytes, and collect per-op working-set reductions.
        let mut perm = self.perm_static.clone();
        let mut ws_cut: BTreeMap<u32, Bytes> = BTreeMap::new();
        for (t, directive) in plan.iter() {
            if t.index() >= n_tensors {
                untrusted = true;
                continue;
            }
            let tensor = self.graph.tensor(t);
            if tensor.kind == TensorKind::Boundary {
                untrusted = true;
                continue;
            }
            // Any directive removes the tensor from its writers' start
            // allocations (swapped tensors are imported later and
            // recomputed tensors are re-materialized by their readers).
            if !tensor.kind.is_static() {
                for &op in &self.write_sites[t.index()] {
                    let cut = ws_cut.entry(op).or_insert(Bytes::ZERO);
                    *cut = cut.saturating_add(tensor.bytes);
                }
            }
            let is_swap = !matches!(directive, MemoryDirective::Recompute);
            if tensor.kind.is_static() && is_swap && tensor.stage < n_stages {
                // Swapped statics start elsewhere (host or peers) and
                // stop being part of the permanent core.
                if let Some(d) = device_of[tensor.stage] {
                    init[d] = init[d].saturating_sub(tensor.bytes);
                }
                if self.free_sites[t.index()] == 0 {
                    perm[tensor.stage] = perm[tensor.stage].saturating_sub(tensor.bytes);
                }
            }
            if let MemoryDirective::SwapD2d(stripe) = directive {
                for chunk in stripe.chunks() {
                    let d = chunk.target.index();
                    if d >= gpus {
                        untrusted = true;
                        continue;
                    }
                    add(&mut hi[d], chunk.bytes, &mut overflowed);
                    if tensor.kind.is_static() {
                        // Static stripe chunks are materialized at t=0.
                        add(&mut init[d], chunk.bytes, &mut overflowed);
                    }
                }
            }
        }

        // Lower envelope: max of the exact t=0 residency and the
        // permanent core plus the largest surviving op write set.
        let mut lo = init.clone();
        for (s, per_stage) in self.stage_ws_sorted.iter().enumerate() {
            let Some(d) = device_of[s] else { continue };
            let mut ws_max = Bytes::ZERO;
            for &(base, op) in per_stage {
                match ws_cut.get(&op) {
                    // Unreduced entry: nothing later in the descending
                    // order can beat it.
                    None => {
                        ws_max = ws_max.max(base);
                        break;
                    }
                    Some(&cut) => ws_max = ws_max.max(base.saturating_sub(cut)),
                }
                if base <= ws_max {
                    break;
                }
            }
            let floor = perm[s].saturating_add(ws_max);
            lo[d] = lo[d].max(floor);
        }

        let certified_oom = !untrusted && lo.iter().any(|&b| b > usable);
        let certified_fit = !untrusted && !overflowed && hi.iter().all(|&b| b <= usable);
        let verdict = if certified_oom {
            BoundsVerdict::CertifiedOom
        } else if certified_fit {
            BoundsVerdict::CertifiedFit
        } else {
            BoundsVerdict::Unknown
        };
        ResidencyBounds {
            lo,
            hi,
            verdict,
            overflowed,
        }
    }

    /// [`BoundsAnalyzer::certify`] plus the makespan interval from the
    /// arena's cost profile.
    pub fn certify_with_arena(
        &self,
        plan: &InstrumentationPlan,
        device_map: &DeviceMap,
        arena: &mut SimArena,
    ) -> PlanBounds {
        let residency = self.certify(plan, device_map);
        let profile = arena.cost_profile(self.machine, self.graph, plan, device_map);
        PlanBounds {
            makespan_lo: profile.makespan_lo,
            makespan_hi: profile.makespan_hi(),
            residency,
        }
    }
}

/// One-shot convenience: build an analyzer and certify a single plan.
pub fn certify_plan(
    machine: &Machine,
    graph: &TrainingGraph,
    plan: &InstrumentationPlan,
    device_map: &DeviceMap,
    arena: &mut SimArena,
) -> PlanBounds {
    BoundsAnalyzer::new(machine, graph).certify_with_arena(plan, device_map, arena)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpress_compaction::{HostTier, StripePlan};
    use mpress_graph::{OpKind, TensorId};
    use mpress_hw::DeviceId;

    /// A 2-stage toy job mirroring the verifier's fixture.
    fn toy_graph() -> (TrainingGraph, Vec<TensorId>) {
        let mut b = TrainingGraph::builder(2);
        let p0 = b.add_tensor(TensorKind::Parameter, Bytes::gib(1), 0, Some(0), None);
        let p1 = b.add_tensor(TensorKind::Parameter, Bytes::gib(1), 1, Some(1), None);
        let a0 = b.add_tensor(TensorKind::Activation, Bytes::gib(2), 0, Some(0), Some(0));
        let a1 = b.add_tensor(TensorKind::Activation, Bytes::gib(2), 1, Some(1), Some(0));
        let bd = b.add_tensor(TensorKind::Boundary, Bytes::mib(64), 0, None, Some(0));
        let f0 = b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| {
            op.reads.push(p0);
            op.writes.extend([a0, bd]);
        });
        let f1 = b.add_op(OpKind::Forward, 1, Some(0), 0.01, |op| {
            op.reads.extend([p1, bd]);
            op.writes.push(a1);
        });
        let b1 = b.add_op(OpKind::Backward, 1, Some(0), 0.02, |op| {
            op.reads.push(a1);
            op.frees.push(a1);
        });
        let b0 = b.add_op(OpKind::Backward, 0, Some(0), 0.02, |op| {
            op.reads.push(a0);
            op.frees.extend([a0, bd]);
        });
        b.add_dep(f0, f1);
        b.add_dep(b1, b0);
        let g = b.build().expect("toy graph is valid");
        (g, vec![p0, p1, a0, a1, bd])
    }

    #[test]
    fn toy_plan_is_certified_fit() {
        let (g, _) = toy_graph();
        let machine = Machine::dgx1();
        let analyzer = BoundsAnalyzer::new(&machine, &g);
        let bounds = analyzer.certify(&InstrumentationPlan::new(), &DeviceMap::identity(2));
        assert_eq!(bounds.verdict, BoundsVerdict::CertifiedFit);
        assert!(!bounds.overflowed);
        // Stage 0 hosts 1 GiB param + 2 GiB activation + 64 MiB boundary.
        assert_eq!(bounds.hi[0], Bytes::gib(3).saturating_add(Bytes::mib(64)));
        // t=0 exact residency covers at least the statics.
        assert!(bounds.lo[0] >= Bytes::gib(1));
        assert!(bounds.lo[0] <= bounds.hi[0]);
        // Spare devices (2..7) host nothing.
        assert_eq!(bounds.hi[7], Bytes::ZERO);
    }

    #[test]
    fn lo_includes_largest_write_set_over_permanent_core() {
        let (g, _) = toy_graph();
        let machine = Machine::dgx1();
        let analyzer = BoundsAnalyzer::new(&machine, &g);
        let bounds = analyzer.certify(&InstrumentationPlan::new(), &DeviceMap::identity(2));
        // f0 writes a0 (2 GiB) + bd (64 MiB) on stage 0; the parameter
        // (1 GiB, never freed) is permanent. lo must cover both.
        assert!(bounds.lo[0] >= Bytes::gib(3));
    }

    #[test]
    fn certified_oom_on_oversized_activation() {
        // The verifier's MP007 fixture: a 100 GiB activation on a
        // 32 GiB V100. The bounds pass certifies the OOM.
        let mut b = TrainingGraph::builder(1);
        let a = b.add_tensor(TensorKind::Activation, Bytes::gib(100), 0, Some(0), Some(0));
        b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| op.writes.push(a));
        b.add_op(OpKind::Backward, 0, Some(0), 0.01, |op| {
            op.reads.push(a);
            op.frees.push(a);
        });
        let g = b.build().expect("valid shape");
        let machine = Machine::dgx1();
        let analyzer = BoundsAnalyzer::new(&machine, &g);
        let bounds = analyzer.certify(&InstrumentationPlan::new(), &DeviceMap::identity(1));
        assert_eq!(bounds.verdict, BoundsVerdict::CertifiedOom);
        let report = bounds.report(machine.gpu().usable_memory());
        assert!(
            report.has_code(Code::CertifiedOom),
            "{}",
            report.render_table()
        );
        // Predicted OOM must not be a structural rejection.
        assert!(!report.has_structural_errors());
    }

    #[test]
    fn directive_on_the_big_tensor_withdraws_the_oom_verdict() {
        let mut b = TrainingGraph::builder(1);
        let a = b.add_tensor(TensorKind::Activation, Bytes::gib(100), 0, Some(0), Some(0));
        b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| op.writes.push(a));
        b.add_op(OpKind::Backward, 0, Some(0), 0.01, |op| {
            op.reads.push(a);
            op.frees.push(a);
        });
        let g = b.build().expect("valid shape");
        let machine = Machine::dgx1();
        let analyzer = BoundsAnalyzer::new(&machine, &g);
        let mut plan = InstrumentationPlan::new();
        plan.assign(a, MemoryDirective::SwapToHost(HostTier::Dram));
        let bounds = analyzer.certify(&plan, &DeviceMap::identity(1));
        // lo no longer proves the OOM (the plan may page the tensor),
        // but hi still counts it, so the verdict degrades to Unknown.
        assert_eq!(bounds.verdict, BoundsVerdict::Unknown);
        assert!(bounds.report(machine.gpu().usable_memory()).is_clean());
    }

    #[test]
    fn d2d_chunks_raise_hi_and_init_on_the_victim() {
        let (g, t) = toy_graph();
        let machine = Machine::dgx1();
        let analyzer = BoundsAnalyzer::new(&machine, &g);
        let mut plan = InstrumentationPlan::new();
        // Swap stage 0's parameter to GPU2 (a spare device).
        plan.assign(
            t[0],
            MemoryDirective::SwapD2d(StripePlan::single(Bytes::gib(1), DeviceId(2), 1)),
        );
        let bounds = analyzer.certify(&plan, &DeviceMap::identity(2));
        let baseline = analyzer.certify(&InstrumentationPlan::new(), &DeviceMap::identity(2));
        assert_eq!(bounds.hi[2], baseline.hi[2].saturating_add(Bytes::gib(1)));
        // Static chunks exist at t=0: the victim's lower bound sees them.
        assert!(bounds.lo[2] >= Bytes::gib(1));
        // The source device's hi keeps the tensor (it is refetched).
        assert_eq!(bounds.hi[0], baseline.hi[0]);
    }

    #[test]
    fn malformed_input_degrades_to_unknown() {
        let (g, _) = toy_graph();
        let machine = Machine::dgx1();
        let analyzer = BoundsAnalyzer::new(&machine, &g);
        // Short device map.
        let short = analyzer.certify(&InstrumentationPlan::new(), &DeviceMap::identity(1));
        assert_eq!(short.verdict, BoundsVerdict::Unknown);
        // Directive on an unknown tensor.
        let mut plan = InstrumentationPlan::new();
        plan.assign(TensorId(999), MemoryDirective::SwapToHost(HostTier::Dram));
        let bogus = analyzer.certify(&plan, &DeviceMap::identity(2));
        assert_eq!(bogus.verdict, BoundsVerdict::Unknown);
    }

    #[test]
    fn overflow_withdraws_certified_fit_but_not_oom() {
        let mut b = TrainingGraph::builder(1);
        let h1 = b.add_tensor(
            TensorKind::Parameter,
            Bytes(u64::MAX / 2 + 1),
            0,
            None,
            None,
        );
        let h2 = b.add_tensor(
            TensorKind::Parameter,
            Bytes(u64::MAX / 2 + 1),
            0,
            None,
            None,
        );
        b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| {
            op.reads.extend([h1, h2]);
        });
        let g = b.build().expect("valid shape");
        let machine = Machine::dgx1();
        let analyzer = BoundsAnalyzer::new(&machine, &g);
        let bounds = analyzer.certify(&InstrumentationPlan::new(), &DeviceMap::identity(1));
        assert!(bounds.overflowed);
        // The saturated t=0 sum still exceeds capacity: the OOM verdict
        // survives overflow (saturation only understates lo).
        assert_eq!(bounds.verdict, BoundsVerdict::CertifiedOom);
    }

    #[test]
    fn makespan_interval_is_ordered_and_positive() {
        let (g, _) = toy_graph();
        let machine = Machine::dgx1();
        let mut arena = SimArena::new();
        let bounds = certify_plan(
            &machine,
            &g,
            &InstrumentationPlan::new(),
            &DeviceMap::identity(2),
            &mut arena,
        );
        assert!(bounds.makespan_lo > 0.0);
        assert!(bounds.makespan_hi >= bounds.makespan_lo);
    }

    #[test]
    fn json_shape_is_stable() {
        let (g, _) = toy_graph();
        let machine = Machine::dgx1();
        let mut arena = SimArena::new();
        let bounds = certify_plan(
            &machine,
            &g,
            &InstrumentationPlan::new(),
            &DeviceMap::identity(2),
            &mut arena,
        );
        let v = bounds.to_json();
        assert!(v.get("makespan_lo_s").and_then(Value::as_f64).is_some());
        assert!(v.get("makespan_hi_s").and_then(Value::as_f64).is_some());
        let res = v.get("residency").expect("residency object");
        assert_eq!(
            res.get("verdict").and_then(Value::as_str),
            Some("certified-fit")
        );
        assert_eq!(
            res.get("lo_bytes")
                .and_then(Value::as_array)
                .map(|a| a.len()),
            Some(8)
        );
    }
}

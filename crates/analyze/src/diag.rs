//! The diagnostics engine shared by the static passes.
//!
//! Every finding carries a **stable** `MP0xx` code (the catalogue below
//! is append-only: codes are never renumbered, so scripts and CI logs
//! can match on them), a severity, a human message and span-like
//! context pointing at the stage/device/tensor/op concerned. A
//! [`Report`] renders either as an aligned table (for terminals) or as
//! one JSON document (stable key order, `mpress-obs` conventions).

use serde::{Serialize, Value};
use std::fmt;

/// Stable diagnostic codes of the static plan verifier.
///
/// | code | meaning |
/// |------|---------|
/// | MP001 | dependency cycle in the combined op graph |
/// | MP002 | stream-order inconsistency (an op touches another stage's tensor) |
/// | MP003 | tensor used before any producer can have run |
/// | MP004 | tensor used after an op already freed it |
/// | MP005 | tensor freed more than once |
/// | MP006 | invalid D2D stripe (unreachable link, bad lanes, size mismatch) |
/// | MP007 | analytic residency lower bound exceeds device capacity |
/// | MP008 | D2D victim device lacks headroom for an incoming stripe chunk |
/// | MP009 | invalid recompute (non-recomputable tensor, or never dropped) |
/// | MP010 | directive targets an unknown or boundary tensor |
/// | MP011 | device map inconsistent with the job or machine |
/// | MP012 | byte arithmetic overflowed during analysis |
/// | MP013 | certified residency lower bound exceeds device capacity (bounds pass) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// MP001: the program-order + cross-stage dependency graph is cyclic.
    Cycle,
    /// MP002: an op reads/writes/frees a non-boundary tensor homed on a
    /// different stage — its stream could never own that memory.
    StreamOrder,
    /// MP003: a read is not ordered after any producer of the tensor.
    UseBeforeProduce,
    /// MP004: a read is ordered after an op that frees the tensor.
    UseAfterFree,
    /// MP005: two distinct ops free the same tensor.
    DoubleFree,
    /// MP006: a D2D stripe names a non-existent link, bad lane counts, a
    /// missing host tier, or does not cover the tensor's bytes.
    BadStripe,
    /// MP007: even the sound per-device residency *lower bound* exceeds
    /// usable capacity after swap/recompute effects — the emulator is
    /// guaranteed to report OOM.
    CapacityExceeded,
    /// MP008: a stripe chunk lands on a victim device whose own static
    /// residency leaves no headroom for it.
    VictimOverflow,
    /// MP009: recompute on a non-recomputable tensor, or a recomputed
    /// tensor no op ever drops (it would never leave the device).
    BadRecompute,
    /// MP010: a directive targets an unknown tensor or an inter-stage
    /// boundary tensor (which the schedule itself transfers).
    BadDirectiveTarget,
    /// MP011: the device map does not cover the job's stages or names
    /// devices the machine does not have.
    BadDeviceMap,
    /// MP012: a byte sum overflowed `u64` during analysis; capacity
    /// verdicts for the affected stage are unreliable.
    Overflow,
    /// MP013: the bounds pass certified a device's residency *lower*
    /// envelope above usable capacity — the emulator is guaranteed to
    /// report OOM (abstract-interpretation counterpart of MP007).
    CertifiedOom,
}

impl Code {
    /// The stable `MP0xx` string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Cycle => "MP001",
            Code::StreamOrder => "MP002",
            Code::UseBeforeProduce => "MP003",
            Code::UseAfterFree => "MP004",
            Code::DoubleFree => "MP005",
            Code::BadStripe => "MP006",
            Code::CapacityExceeded => "MP007",
            Code::VictimOverflow => "MP008",
            Code::BadRecompute => "MP009",
            Code::BadDirectiveTarget => "MP010",
            Code::BadDeviceMap => "MP011",
            Code::Overflow => "MP012",
            Code::CertifiedOom => "MP013",
        }
    }

    /// Whether the diagnostic means the plan is *malformed* (as opposed
    /// to merely guaranteed to run out of memory).
    ///
    /// The planner hook rejects candidates only on structural codes:
    /// capacity findings (MP007/MP008/MP013) and analysis overflow
    /// (MP012) must still reach the emulator, whose OOM verdict drives
    /// the feasibility loop — rejecting them could change the chosen
    /// plan. (The bounds *gate* handles MP013 itself, and only when a
    /// non-OOM incumbent makes the prune outcome-equivalent.)
    pub fn is_structural(self) -> bool {
        !matches!(
            self,
            Code::CapacityExceeded | Code::VictimOverflow | Code::Overflow | Code::CertifiedOom
        )
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Code {
    fn to_json(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing, does not invalidate the plan.
    Warning,
    /// The plan is wrong (or certain to OOM).
    Error,
}

impl Severity {
    /// Lower-case label used in both renderings.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Severity {
    fn to_json(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

/// Span-like context: where in the plan/graph the finding points.
///
/// All fields are optional; a finding fills in whatever it knows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Context {
    /// Pipeline stage concerned.
    pub stage: Option<usize>,
    /// Device index concerned.
    pub device: Option<usize>,
    /// Tensor id concerned (raw index).
    pub tensor: Option<u32>,
    /// Op id concerned (raw index).
    pub op: Option<u32>,
}

impl Context {
    /// An empty context.
    pub fn none() -> Self {
        Context::default()
    }

    /// Sets the stage.
    pub fn stage(mut self, stage: usize) -> Self {
        self.stage = Some(stage);
        self
    }

    /// Sets the device.
    pub fn device(mut self, device: usize) -> Self {
        self.device = Some(device);
        self
    }

    /// Sets the tensor.
    pub fn tensor(mut self, tensor: u32) -> Self {
        self.tensor = Some(tensor);
        self
    }

    /// Sets the op.
    pub fn op(mut self, op: u32) -> Self {
        self.op = Some(op);
        self
    }

    /// Compact `stage 2 · GPU3 · t17 · op4` rendering; empty when the
    /// context carries nothing.
    fn render(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(s) = self.stage {
            parts.push(format!("stage {s}"));
        }
        if let Some(d) = self.device {
            parts.push(format!("GPU{d}"));
        }
        if let Some(t) = self.tensor {
            parts.push(format!("t{t}"));
        }
        if let Some(o) = self.op {
            parts.push(format!("op{o}"));
        }
        parts.join(" · ")
    }
}

impl Serialize for Context {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("stage".to_string(), self.stage.to_json()),
            ("device".to_string(), self.device.to_json()),
            ("tensor".to_string(), self.tensor.to_json()),
            ("op".to_string(), self.op.to_json()),
        ])
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Where it points.
    pub context: Context,
}

impl Diagnostic {
    /// An error-severity finding.
    pub fn error(code: Code, context: Context, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            context,
        }
    }

    /// A warning-severity finding.
    pub fn warning(code: Code, context: Context, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            context,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ctx = self.context.render();
        if ctx.is_empty() {
            write!(f, "{} [{}] {}", self.code, self.severity, self.message)
        } else {
            write!(
                f,
                "{} [{}] {}: {}",
                self.code, self.severity, ctx, self.message
            )
        }
    }
}

impl Serialize for Diagnostic {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("code".to_string(), self.code.to_json()),
            ("severity".to_string(), self.severity.to_json()),
            ("message".to_string(), self.message.to_json()),
            ("context".to_string(), self.context.to_json()),
        ])
    }
}

/// The outcome of one verification: zero or more [`Diagnostic`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Adds one finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// All findings, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether any *structural* error is present (see
    /// [`Code::is_structural`]) — the planner hook's rejection test.
    pub fn has_structural_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && d.code.is_structural())
    }

    /// Whether a given code fired at least once.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// One-line summary, e.g. `3 errors, 1 warning (MP003 MP006 MP006 MP008)`.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return "no diagnostics".to_string();
        }
        let codes: Vec<&str> = self.diagnostics.iter().map(|d| d.code.as_str()).collect();
        format!(
            "{} error(s), {} warning(s) ({})",
            self.error_count(),
            self.warning_count(),
            codes.join(" ")
        )
    }

    /// Aligned-table rendering for terminals.
    pub fn render_table(&self) -> String {
        if self.is_clean() {
            return "check: no diagnostics\n".to_string();
        }
        let mut rows: Vec<[String; 4]> = Vec::with_capacity(self.diagnostics.len());
        for d in &self.diagnostics {
            rows.push([
                d.code.as_str().to_string(),
                d.severity.as_str().to_string(),
                d.context.render(),
                d.message.clone(),
            ]);
        }
        let mut width = [4usize, 8, 5, 7]; // header widths
        for row in &rows {
            for (w, cell) in width.iter_mut().zip(row.iter()).take(3) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<w0$}  {:<w1$}  {:<w2$}  MESSAGE\n",
            "CODE",
            "SEVERITY",
            "WHERE",
            w0 = width[0],
            w1 = width[1],
            w2 = width[2],
        ));
        for row in &rows {
            out.push_str(&format!(
                "{:<w0$}  {:<w1$}  {:<w2$}  {}\n",
                row[0],
                row[1],
                row[2],
                row[3],
                w0 = width[0],
                w1 = width[1],
                w2 = width[2],
            ));
        }
        out.push_str(&format!("{}\n", self.summary()));
        out
    }
}

impl Serialize for Report {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("clean".to_string(), self.is_clean().to_json()),
            ("errors".to_string(), self.error_count().to_json()),
            ("warnings".to_string(), self.warning_count().to_json()),
            ("diagnostics".to_string(), self.diagnostics.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::Cycle.as_str(), "MP001");
        assert_eq!(Code::StreamOrder.as_str(), "MP002");
        assert_eq!(Code::UseBeforeProduce.as_str(), "MP003");
        assert_eq!(Code::UseAfterFree.as_str(), "MP004");
        assert_eq!(Code::DoubleFree.as_str(), "MP005");
        assert_eq!(Code::BadStripe.as_str(), "MP006");
        assert_eq!(Code::CapacityExceeded.as_str(), "MP007");
        assert_eq!(Code::VictimOverflow.as_str(), "MP008");
        assert_eq!(Code::BadRecompute.as_str(), "MP009");
        assert_eq!(Code::BadDirectiveTarget.as_str(), "MP010");
        assert_eq!(Code::BadDeviceMap.as_str(), "MP011");
        assert_eq!(Code::Overflow.as_str(), "MP012");
        assert_eq!(Code::CertifiedOom.as_str(), "MP013");
    }

    #[test]
    fn capacity_codes_are_not_structural() {
        assert!(Code::BadStripe.is_structural());
        assert!(Code::Cycle.is_structural());
        assert!(!Code::CapacityExceeded.is_structural());
        assert!(!Code::VictimOverflow.is_structural());
        assert!(!Code::Overflow.is_structural());
        assert!(!Code::CertifiedOom.is_structural());
    }

    #[test]
    fn report_counts_and_summary() {
        let mut r = Report::new();
        assert!(r.is_clean());
        assert_eq!(r.summary(), "no diagnostics");
        r.push(Diagnostic::error(
            Code::BadStripe,
            Context::none().stage(1).tensor(4),
            "stripe targets unreachable device",
        ));
        r.push(Diagnostic::warning(
            Code::CapacityExceeded,
            Context::none().device(0),
            "close to capacity",
        ));
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_code(Code::BadStripe));
        assert!(!r.has_code(Code::Cycle));
        assert!(r.has_structural_errors());
        assert!(r.summary().contains("MP006"));
    }

    #[test]
    fn capacity_errors_do_not_trip_the_structural_gate() {
        let mut r = Report::new();
        r.push(Diagnostic::error(
            Code::CapacityExceeded,
            Context::none(),
            "over capacity",
        ));
        assert_eq!(r.error_count(), 1);
        assert!(!r.has_structural_errors());
    }

    #[test]
    fn table_lists_every_row() {
        let mut r = Report::new();
        r.push(Diagnostic::error(
            Code::UseAfterFree,
            Context::none().tensor(3).op(7),
            "t3 read after free",
        ));
        let table = r.render_table();
        assert!(table.contains("MP004"), "{table}");
        assert!(table.contains("t3 · op7"), "{table}");
        assert!(table.contains("CODE"), "{table}");
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = Report::new();
        r.push(Diagnostic::error(
            Code::BadDeviceMap,
            Context::none().stage(2),
            "map too short",
        ));
        let v = r.to_json();
        assert_eq!(v.get("clean").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("errors").and_then(Value::as_u64), Some(1));
        let diags = v
            .get("diagnostics")
            .and_then(Value::as_array)
            .expect("array");
        assert_eq!(diags[0].get("code").and_then(Value::as_str), Some("MP011"));
        assert_eq!(
            diags[0]
                .get("context")
                .and_then(|c| c.get("stage"))
                .and_then(Value::as_u64),
            Some(2)
        );
    }

    #[test]
    fn display_concatenates_code_and_context() {
        let d = Diagnostic::error(Code::DoubleFree, Context::none().tensor(9), "freed twice");
        let s = d.to_string();
        assert!(
            s.contains("MP005") && s.contains("t9") && s.contains("freed twice"),
            "{s}"
        );
    }
}

//! The static plan verifier.
//!
//! Checks a compaction plan + device map against the training graph,
//! the machine topology and the memory model **without running the
//! emulator**. Graph-shape properties (acyclicity, stream-order
//! consistency, tensor lifetimes — mirroring `graph/liveness`) are
//! established once per graph; per-candidate properties (directive
//! targets, D2D links, analytic residency) are cheap enough to run on
//! every planner candidate before emulation.
//!
//! Every capacity computation is a **sound lower bound**: statics the
//! plan does not evict plus the largest single-op working set. A plan
//! the verifier flags with MP007 is *guaranteed* to OOM in the
//! emulator; a clean verdict promises nothing (the bound is not tight).
//! This one-sidedness is what lets the planner hook reject candidates
//! without ever changing the chosen plan.

use crate::diag::{Code, Context, Diagnostic, Report};
use mpress_compaction::{HostTier, InstrumentationPlan, MemoryDirective};
use mpress_graph::{OpId, TensorId, TensorKind, TrainingGraph};
use mpress_hw::{Bytes, Machine};
use mpress_sim::DeviceMap;

/// Dense ancestor ("happens-before") bitsets over the combined graph
/// (per-stage program order + cross-stage edges).
#[derive(Debug)]
struct AncestorTable {
    words: usize,
    bits: Vec<u64>,
}

impl AncestorTable {
    /// Builds the table from a topological order and predecessor lists.
    /// Visiting in topo order means every predecessor's row is final
    /// before it is folded into a successor.
    fn build(n: usize, topo: &[OpId], preds: &[Vec<usize>]) -> Self {
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; words * n];
        let mut row = vec![0u64; words];
        for id in topo {
            let v = id.index();
            row.fill(0);
            for &p in &preds[v] {
                for (d, s) in row.iter_mut().zip(&bits[p * words..(p + 1) * words]) {
                    *d |= *s;
                }
                row[p / 64] |= 1u64 << (p % 64);
            }
            bits[v * words..(v + 1) * words].copy_from_slice(&row);
        }
        AncestorTable { words, bits }
    }

    /// Whether `ancestor` happens strictly before `of`.
    fn contains(&self, ancestor: OpId, of: OpId) -> bool {
        let a = ancestor.index();
        let row = of.index() * self.words;
        self.bits[row + a / 64] & (1u64 << (a % 64)) != 0
    }
}

/// Per-tensor cross-reference built once per graph.
#[derive(Default, Clone)]
struct TensorSites {
    writers: Vec<OpId>,
    readers: Vec<OpId>,
    frees: Vec<OpId>,
}

/// The static plan verifier. Construct once per (machine, graph); call
/// [`PlanVerifier::verify`] per candidate plan.
#[derive(Debug)]
pub struct PlanVerifier<'a> {
    machine: &'a Machine,
    graph: &'a TrainingGraph,
    /// Graph-shape findings (MP001–MP005), computed once.
    graph_diags: Vec<Diagnostic>,
    /// Per-stage total bytes of static tensors (params/grads/optimizer).
    static_total: Vec<Bytes>,
    /// Per-stage maximum over ops of the op's dynamic working set (the
    /// non-static tensors homed on the stage that must be resident while
    /// the op runs).
    max_dynamic_ws: Vec<Bytes>,
    /// Per-tensor count of free sites.
    free_sites: Vec<u32>,
    /// A byte sum overflowed while precomputing (MP012).
    precompute_overflow: bool,
}

impl<'a> PlanVerifier<'a> {
    /// Builds the verifier: runs the graph-shape checks and precomputes
    /// the per-stage residency tables.
    pub fn new(machine: &'a Machine, graph: &'a TrainingGraph) -> Self {
        let n_ops = graph.ops().len();
        let n_tensors = graph.tensors().len();
        let n_stages = graph.n_stages();
        let mut graph_diags = Vec::new();

        // Cross-reference tensors once (graph.producer_of/consumers_of
        // are linear scans per call — too slow to use per tensor here).
        let mut sites: Vec<TensorSites> = vec![TensorSites::default(); n_tensors];
        for op in graph.ops() {
            for &t in &op.writes {
                if let Some(s) = sites.get_mut(t.index()) {
                    s.writers.push(op.id);
                }
            }
            for &t in &op.reads {
                if let Some(s) = sites.get_mut(t.index()) {
                    s.readers.push(op.id);
                }
            }
            for &t in &op.frees {
                if let Some(s) = sites.get_mut(t.index()) {
                    s.frees.push(op.id);
                }
            }
        }

        // MP002: every tensor an op touches must live on the op's stage,
        // except boundary tensors (the schedule itself moves those
        // between devices).
        for op in graph.ops() {
            for &t in op.reads.iter().chain(&op.writes).chain(&op.frees) {
                let Some(tensor) = graph.tensors().get(t.index()) else {
                    continue; // builder-validated; defensive
                };
                if tensor.stage != op.stage && tensor.kind != TensorKind::Boundary {
                    graph_diags.push(Diagnostic::error(
                        Code::StreamOrder,
                        Context::none().stage(op.stage).tensor(t.0).op(op.id.0),
                        format!(
                            "op {} on stage {} touches {} tensor {} homed on stage {}",
                            op.id, op.stage, tensor.kind, t, tensor.stage
                        ),
                    ));
                }
            }
        }

        // MP001 + lifetime checks need a topological order. A cyclic
        // graph gets the cycle diagnostic and skips the rest (no order
        // exists to reason about).
        match graph.topo_order() {
            Err(_) => graph_diags.push(Diagnostic::error(
                Code::Cycle,
                Context::none(),
                "dependency cycle in program-order + cross-stage graph",
            )),
            Ok(topo) => {
                let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n_ops];
                for s in 0..n_stages {
                    for w in graph.stage_program(s).windows(2) {
                        preds[w[1].index()].push(w[0].index());
                    }
                }
                for &(a, b) in graph.cross_deps() {
                    preds[b.index()].push(a.index());
                }
                let anc = AncestorTable::build(n_ops, &topo, &preds);
                Self::check_lifetimes(graph, &sites, &anc, &mut graph_diags);
            }
        }

        // Per-stage residency tables (sound lower bounds; see module
        // docs). All sums are overflow-checked: an overflow flips the
        // MP012 flag and saturates so later comparisons stay defined.
        let mut overflowed = false;
        let mut static_total = vec![Bytes::ZERO; n_stages];
        for t in graph.tensors() {
            if t.kind.is_static() && t.stage < n_stages {
                static_total[t.stage] = match static_total[t.stage].checked_add(t.bytes) {
                    Some(sum) => sum,
                    None => {
                        overflowed = true;
                        static_total[t.stage].saturating_add(t.bytes)
                    }
                };
            }
        }
        let mut max_dynamic_ws = vec![Bytes::ZERO; n_stages];
        let mut seen: Vec<TensorId> = Vec::new();
        for op in graph.ops() {
            if op.stage >= n_stages {
                continue;
            }
            seen.clear();
            let mut ws = Bytes::ZERO;
            for &t in op.reads.iter().chain(&op.writes) {
                let Some(tensor) = graph.tensors().get(t.index()) else {
                    continue;
                };
                if tensor.kind.is_static() || tensor.stage != op.stage || seen.contains(&t) {
                    continue;
                }
                seen.push(t);
                ws = match ws.checked_add(tensor.bytes) {
                    Some(sum) => sum,
                    None => {
                        overflowed = true;
                        ws.saturating_add(tensor.bytes)
                    }
                };
            }
            max_dynamic_ws[op.stage] = max_dynamic_ws[op.stage].max(ws);
        }

        let free_sites = sites.iter().map(|s| s.frees.len() as u32).collect();
        PlanVerifier {
            machine,
            graph,
            graph_diags,
            static_total,
            max_dynamic_ws,
            free_sites,
            precompute_overflow: overflowed,
        }
    }

    /// MP003/MP004/MP005 over the happens-before relation, mirroring
    /// what `graph/liveness` assumes when it builds live intervals.
    fn check_lifetimes(
        graph: &TrainingGraph,
        sites: &[TensorSites],
        anc: &AncestorTable,
        diags: &mut Vec<Diagnostic>,
    ) {
        for (idx, site) in sites.iter().enumerate() {
            let tensor = &graph.tensors()[idx];
            let tid = tensor.id;
            // MP003: every read of a dynamic tensor must be ordered
            // after some producer (statics are pre-resident).
            if !tensor.kind.is_static() {
                for &r in &site.readers {
                    let produced = site.writers.iter().any(|&w| anc.contains(w, r));
                    if !produced {
                        diags.push(Diagnostic::error(
                            Code::UseBeforeProduce,
                            Context::none().stage(tensor.stage).tensor(tid.0).op(r.0),
                            format!("op {r} reads {tid} with no producer ordered before it"),
                        ));
                    }
                }
            }
            // MP005: more than one free site.
            if site.frees.len() > 1 {
                diags.push(Diagnostic::error(
                    Code::DoubleFree,
                    Context::none().stage(tensor.stage).tensor(tid.0),
                    format!("{} ops free {tid}", site.frees.len()),
                ));
            }
            // MP004: a read strictly after a free.
            for &f in &site.frees {
                for &r in site.readers.iter().chain(&site.writers) {
                    if r != f && anc.contains(f, r) {
                        diags.push(Diagnostic::error(
                            Code::UseAfterFree,
                            Context::none().stage(tensor.stage).tensor(tid.0).op(r.0),
                            format!("op {r} uses {tid} after op {f} freed it"),
                        ));
                    }
                }
            }
        }
    }

    /// The graph-shape findings alone (MP001–MP005), with no plan
    /// applied.
    pub fn graph_report(&self) -> Report {
        let mut report = Report::new();
        for d in &self.graph_diags {
            report.push(d.clone());
        }
        report
    }

    /// Verifies one candidate: the cached graph findings plus directive,
    /// link, device-map and analytic-residency checks for this plan.
    pub fn verify(&self, plan: &InstrumentationPlan, device_map: &DeviceMap) -> Report {
        self.verify_inner(plan, device_map, true)
    }

    /// [`PlanVerifier::verify`] minus the residency comparisons
    /// (MP007/MP008): the caller holds a certified-fit verdict from the
    /// bounds pass, which subsumes both capacity checks. Skipping them
    /// cannot change the planner hook's behavior — capacity codes are
    /// non-structural ([`Code::is_structural`]) and never reject.
    pub fn verify_assuming_fit(
        &self,
        plan: &InstrumentationPlan,
        device_map: &DeviceMap,
    ) -> Report {
        self.verify_inner(plan, device_map, false)
    }

    fn verify_inner(
        &self,
        plan: &InstrumentationPlan,
        device_map: &DeviceMap,
        check_residency: bool,
    ) -> Report {
        let graph = self.graph;
        let machine = self.machine;
        let n_stages = graph.n_stages();
        let n_tensors = graph.tensors().len();
        let usable = machine.gpu().usable_memory();
        let topology = machine.topology();
        let mut report = self.graph_report();
        let mut overflowed = self.precompute_overflow;

        // MP011: the map must cover exactly the job's stages with
        // devices the machine has. (`DeviceMap` construction already
        // guarantees in-range uniqueness within its own length.)
        if device_map.len() != n_stages {
            report.push(Diagnostic::error(
                Code::BadDeviceMap,
                Context::none(),
                format!(
                    "device map covers {} stage(s), job has {}",
                    device_map.len(),
                    n_stages
                ),
            ));
        }
        if device_map.len() > machine.gpu_count() {
            report.push(Diagnostic::error(
                Code::BadDeviceMap,
                Context::none(),
                format!(
                    "device map names {} device(s), machine has {}",
                    device_map.len(),
                    machine.gpu_count()
                ),
            ));
        }
        let device_of = |stage: usize| -> Option<usize> {
            (stage < device_map.len() && stage < n_stages)
                .then(|| device_map.device_of(stage).index())
                .filter(|&d| d < machine.gpu_count())
        };

        // Walk the directives: target validity (MP009/MP010), stripe
        // validity (MP006), and the post-eviction static base per stage.
        let mut base = self.static_total.clone();
        let mut d2d: Vec<(TensorId, &mpress_compaction::StripePlan)> = Vec::new();
        for (t, directive) in plan.iter() {
            if t.index() >= n_tensors {
                report.push(Diagnostic::error(
                    Code::BadDirectiveTarget,
                    Context::none().tensor(t.0),
                    format!("directive targets unknown tensor {t}"),
                ));
                continue;
            }
            let tensor = graph.tensor(t);
            let ctx = Context::none().stage(tensor.stage).tensor(t.0);
            if tensor.kind == TensorKind::Boundary {
                report.push(Diagnostic::error(
                    Code::BadDirectiveTarget,
                    ctx,
                    format!("directive targets boundary tensor {t} (moved by the schedule)"),
                ));
                continue;
            }
            match directive {
                MemoryDirective::Recompute => {
                    if !tensor.kind.recomputable() {
                        report.push(Diagnostic::error(
                            Code::BadRecompute,
                            ctx,
                            format!("recompute on non-recomputable {} tensor {t}", tensor.kind),
                        ));
                    } else if self.free_sites[t.index()] == 0 {
                        report.push(Diagnostic::error(
                            Code::BadRecompute,
                            ctx,
                            format!("recomputed tensor {t} is never dropped by any op"),
                        ));
                    }
                }
                MemoryDirective::SwapToHost(tier) => {
                    if *tier == HostTier::Nvme && machine.nvme().is_none() {
                        report.push(Diagnostic::error(
                            Code::BadStripe,
                            ctx,
                            format!("swap of {t} targets the NVMe tier, machine has no NVMe"),
                        ));
                    }
                }
                MemoryDirective::SwapD2d(stripe) => {
                    if let Some(src) = (tensor.stage < device_map.len())
                        .then(|| device_map.device_of(tensor.stage))
                    {
                        if let Err(msg) = stripe.validate(src, topology) {
                            report.push(Diagnostic::error(
                                Code::BadStripe,
                                ctx.device(src.index()),
                                format!("d2d stripe for {t}: {msg}"),
                            ));
                        }
                    }
                    if stripe.total_bytes() != tensor.bytes {
                        report.push(Diagnostic::error(
                            Code::BadStripe,
                            ctx,
                            format!(
                                "d2d stripe moves {} but {t} is {}",
                                stripe.total_bytes(),
                                tensor.bytes
                            ),
                        ));
                    }
                    d2d.push((t, stripe));
                }
            }
            // Any swap directive takes a static tensor out of the
            // always-resident base (sound: assume it is fully evicted at
            // the peak).
            if tensor.kind.is_static()
                && !matches!(directive, MemoryDirective::Recompute)
                && tensor.stage < n_stages
            {
                base[tensor.stage] = base[tensor.stage].saturating_sub(tensor.bytes);
            }
        }

        // MP007: analytic per-device residency lower bound vs capacity.
        if !check_residency {
            if overflowed {
                report.push(Diagnostic::error(
                    Code::Overflow,
                    Context::none(),
                    "byte arithmetic overflowed during analysis; capacity verdicts unreliable",
                ));
            }
            return report;
        }
        for (stage, (&b, &ws)) in base.iter().zip(&self.max_dynamic_ws).enumerate() {
            let lower_bound = match b.checked_add(ws) {
                Some(sum) => sum,
                None => {
                    overflowed = true;
                    b.saturating_add(ws)
                }
            };
            if lower_bound > usable {
                let mut ctx = Context::none().stage(stage);
                if let Some(d) = device_of(stage) {
                    ctx = ctx.device(d);
                }
                report.push(Diagnostic::error(
                    Code::CapacityExceeded,
                    ctx,
                    format!(
                        "stage {stage} needs at least {lower_bound} resident, \
                         device capacity is {usable}"
                    ),
                ));
            }
        }

        // MP008: each stripe chunk must fit in its victim's headroom
        // (victim's own post-eviction static base + the chunk).
        for (t, stripe) in d2d {
            for chunk in stripe.chunks() {
                let victim_base = device_map
                    .stage_of(chunk.target)
                    .and_then(|s| base.get(s).copied())
                    .unwrap_or(Bytes::ZERO);
                let needed = match victim_base.checked_add(chunk.bytes) {
                    Some(sum) => sum,
                    None => {
                        overflowed = true;
                        victim_base.saturating_add(chunk.bytes)
                    }
                };
                if needed > usable {
                    report.push(Diagnostic::error(
                        Code::VictimOverflow,
                        Context::none().tensor(t.0).device(chunk.target.index()),
                        format!(
                            "stripe chunk of {t} ({}) leaves victim {} over capacity \
                             ({needed} > {usable})",
                            chunk.bytes, chunk.target
                        ),
                    ));
                }
            }
        }

        if overflowed {
            report.push(Diagnostic::error(
                Code::Overflow,
                Context::none(),
                "byte arithmetic overflowed during analysis; capacity verdicts unreliable",
            ));
        }
        report
    }
}

/// One-shot convenience: build a verifier and check a single plan.
pub fn check_plan(
    machine: &Machine,
    graph: &TrainingGraph,
    plan: &InstrumentationPlan,
    device_map: &DeviceMap,
) -> Report {
    PlanVerifier::new(machine, graph).verify(plan, device_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpress_compaction::StripePlan;
    use mpress_graph::OpKind;
    use mpress_hw::DeviceId;

    /// A 2-stage toy job: fwd0 → fwd1 → bwd1 → bwd0, one activation per
    /// stage plus a boundary, and a parameter on each stage.
    fn toy_graph() -> (TrainingGraph, Vec<TensorId>) {
        let mut b = TrainingGraph::builder(2);
        let p0 = b.add_tensor(TensorKind::Parameter, Bytes::gib(1), 0, Some(0), None);
        let p1 = b.add_tensor(TensorKind::Parameter, Bytes::gib(1), 1, Some(1), None);
        let a0 = b.add_tensor(TensorKind::Activation, Bytes::gib(2), 0, Some(0), Some(0));
        let a1 = b.add_tensor(TensorKind::Activation, Bytes::gib(2), 1, Some(1), Some(0));
        let bd = b.add_tensor(TensorKind::Boundary, Bytes::mib(64), 0, None, Some(0));
        let f0 = b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| {
            op.reads.push(p0);
            op.writes.extend([a0, bd]);
        });
        let f1 = b.add_op(OpKind::Forward, 1, Some(0), 0.01, |op| {
            op.reads.extend([p1, bd]);
            op.writes.push(a1);
        });
        let b1 = b.add_op(OpKind::Backward, 1, Some(0), 0.02, |op| {
            op.reads.push(a1);
            op.frees.push(a1);
        });
        let b0 = b.add_op(OpKind::Backward, 0, Some(0), 0.02, |op| {
            op.reads.push(a0);
            op.frees.extend([a0, bd]);
        });
        b.add_dep(f0, f1);
        b.add_dep(b1, b0);
        let g = b.build().expect("toy graph is valid");
        (g, vec![p0, p1, a0, a1, bd])
    }

    fn dgx1() -> Machine {
        Machine::dgx1()
    }

    #[test]
    fn clean_toy_plan_verifies() {
        let (g, _) = toy_graph();
        let machine = dgx1();
        let plan = InstrumentationPlan::new();
        let map = DeviceMap::identity(2);
        let report = PlanVerifier::new(&machine, &g).verify(&plan, &map);
        assert!(report.is_clean(), "{}", report.render_table());
    }

    #[test]
    fn mp003_fires_when_a_dependency_edge_is_dropped() {
        // Same toy job but WITHOUT the f0 → f1 cross edge: stage 1's
        // forward reads the boundary with no ordering after its
        // producer. (Reader added first so the builder's one sampled
        // topo order happens to run the producer first and the graph
        // builds; happens-before still leaves the pair unordered.)
        let mut b = TrainingGraph::builder(2);
        let bd = b.add_tensor(TensorKind::Boundary, Bytes::mib(64), 0, None, Some(0));
        let _f1 = b.add_op(OpKind::Forward, 1, Some(0), 0.01, |op| op.reads.push(bd));
        let _f0 = b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| op.writes.push(bd));
        let g = b
            .build()
            .expect("builder's sampled topo order hides the race");
        let machine = dgx1();
        let report = PlanVerifier::new(&machine, &g)
            .verify(&InstrumentationPlan::new(), &DeviceMap::identity(2));
        assert!(
            report.has_code(Code::UseBeforeProduce),
            "{}",
            report.render_table()
        );
    }

    #[test]
    fn mp004_fires_on_use_after_free() {
        let mut b = TrainingGraph::builder(1);
        let a = b.add_tensor(TensorKind::Activation, Bytes::mib(8), 0, Some(0), Some(0));
        let w = b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| op.writes.push(a));
        let f = b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| op.frees.push(a));
        let r = b.add_op(OpKind::Backward, 0, Some(0), 0.01, |op| op.reads.push(a));
        let _ = (w, f, r);
        let g = b.build().expect("valid shape");
        let machine = dgx1();
        let report = PlanVerifier::new(&machine, &g)
            .verify(&InstrumentationPlan::new(), &DeviceMap::identity(1));
        assert!(
            report.has_code(Code::UseAfterFree),
            "{}",
            report.render_table()
        );
    }

    #[test]
    fn mp005_fires_on_double_free() {
        let mut b = TrainingGraph::builder(1);
        let a = b.add_tensor(TensorKind::Activation, Bytes::mib(8), 0, Some(0), Some(0));
        b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| op.writes.push(a));
        b.add_op(OpKind::Backward, 0, Some(0), 0.01, |op| {
            op.reads.push(a);
            op.frees.push(a);
        });
        b.add_op(OpKind::Backward, 0, Some(0), 0.01, |op| op.frees.push(a));
        let g = b.build().expect("valid shape");
        let machine = dgx1();
        let report = PlanVerifier::new(&machine, &g)
            .verify(&InstrumentationPlan::new(), &DeviceMap::identity(1));
        assert!(
            report.has_code(Code::DoubleFree),
            "{}",
            report.render_table()
        );
    }

    #[test]
    fn mp002_fires_on_cross_stage_tensor_touch() {
        let mut b = TrainingGraph::builder(2);
        let a = b.add_tensor(TensorKind::Activation, Bytes::mib(8), 0, Some(0), Some(0));
        // Stage 1 reads stage 0's (non-boundary) activation directly.
        // Reader first (see mp003 test) so the builder accepts the graph.
        let r = b.add_op(OpKind::Forward, 1, Some(0), 0.01, |op| op.reads.push(a));
        let w = b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| op.writes.push(a));
        let _ = (r, w);
        let g = b.build().expect("valid shape");
        let machine = dgx1();
        let report = PlanVerifier::new(&machine, &g)
            .verify(&InstrumentationPlan::new(), &DeviceMap::identity(2));
        assert!(
            report.has_code(Code::StreamOrder),
            "{}",
            report.render_table()
        );
    }

    #[test]
    fn mp006_fires_on_unreachable_stripe_target() {
        let (g, t) = toy_graph();
        let machine = dgx1();
        let mut plan = InstrumentationPlan::new();
        // GPU0 and GPU5 have no direct NVLink on DGX-1.
        plan.assign(
            t[2],
            MemoryDirective::SwapD2d(StripePlan::single(Bytes::gib(2), DeviceId(5), 1)),
        );
        let report = PlanVerifier::new(&machine, &g).verify(&plan, &DeviceMap::identity(2));
        assert!(
            report.has_code(Code::BadStripe),
            "{}",
            report.render_table()
        );
        assert!(report.has_structural_errors());
    }

    #[test]
    fn mp006_fires_on_stripe_size_mismatch() {
        let (g, t) = toy_graph();
        let machine = dgx1();
        let mut plan = InstrumentationPlan::new();
        // Reachable target (GPU0 → GPU3), but only half the bytes move.
        plan.assign(
            t[2],
            MemoryDirective::SwapD2d(StripePlan::single(Bytes::gib(1), DeviceId(3), 2)),
        );
        let report = PlanVerifier::new(&machine, &g).verify(&plan, &DeviceMap::identity(2));
        assert!(
            report.has_code(Code::BadStripe),
            "{}",
            report.render_table()
        );
    }

    #[test]
    fn mp007_fires_on_inflated_tensor() {
        // A 100 GiB activation can never fit a 32 GiB V100.
        let mut b = TrainingGraph::builder(1);
        let a = b.add_tensor(TensorKind::Activation, Bytes::gib(100), 0, Some(0), Some(0));
        b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| op.writes.push(a));
        b.add_op(OpKind::Backward, 0, Some(0), 0.01, |op| {
            op.reads.push(a);
            op.frees.push(a);
        });
        let g = b.build().expect("valid shape");
        let machine = dgx1();
        let report = PlanVerifier::new(&machine, &g)
            .verify(&InstrumentationPlan::new(), &DeviceMap::identity(1));
        assert!(
            report.has_code(Code::CapacityExceeded),
            "{}",
            report.render_table()
        );
        // Predicted OOM is NOT a structural rejection (the emulator must
        // still observe it).
        assert!(!report.has_structural_errors());
    }

    #[test]
    fn mp008_fires_when_victim_lacks_headroom() {
        // Victim stage 1 already holds ~31 GiB of statics; a 2 GiB chunk
        // pushes it past the V100's 32 GiB (minus reserve).
        let mut b = TrainingGraph::builder(2);
        let p1 = b.add_tensor(TensorKind::Parameter, Bytes::gib(31), 1, Some(1), None);
        let a0 = b.add_tensor(TensorKind::Activation, Bytes::gib(2), 0, Some(0), Some(0));
        b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| op.writes.push(a0));
        b.add_op(OpKind::Backward, 0, Some(0), 0.01, |op| {
            op.reads.push(a0);
            op.frees.push(a0);
        });
        b.add_op(OpKind::Forward, 1, Some(0), 0.01, |op| op.reads.push(p1));
        let g = b.build().expect("valid shape");
        let machine = dgx1();
        let mut plan = InstrumentationPlan::new();
        // GPU0 → GPU1 is a real 1-lane link; stage 1 sits on GPU1 under
        // the identity map, so the chunk lands on a loaded victim.
        plan.assign(
            a0,
            MemoryDirective::SwapD2d(StripePlan::single(Bytes::gib(2), DeviceId(1), 1)),
        );
        let report = PlanVerifier::new(&machine, &g).verify(&plan, &DeviceMap::identity(2));
        assert!(
            report.has_code(Code::VictimOverflow),
            "{}",
            report.render_table()
        );
    }

    #[test]
    fn mp009_fires_on_bad_recompute() {
        let (g, t) = toy_graph();
        let machine = dgx1();
        let verifier = PlanVerifier::new(&machine, &g);
        // Recompute on a parameter.
        let mut plan = InstrumentationPlan::new();
        plan.assign(t[0], MemoryDirective::Recompute);
        let report = verifier.verify(&plan, &DeviceMap::identity(2));
        assert!(
            report.has_code(Code::BadRecompute),
            "{}",
            report.render_table()
        );

        // Recompute on an activation nothing ever drops.
        let mut b = TrainingGraph::builder(1);
        let a = b.add_tensor(TensorKind::Activation, Bytes::mib(8), 0, Some(0), Some(0));
        b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| op.writes.push(a));
        b.add_op(OpKind::Backward, 0, Some(0), 0.01, |op| op.reads.push(a));
        let g2 = b.build().expect("valid shape");
        let mut plan2 = InstrumentationPlan::new();
        plan2.assign(a, MemoryDirective::Recompute);
        let report2 = PlanVerifier::new(&machine, &g2).verify(&plan2, &DeviceMap::identity(1));
        assert!(
            report2.has_code(Code::BadRecompute),
            "{}",
            report2.render_table()
        );
    }

    #[test]
    fn mp010_fires_on_unknown_and_boundary_targets() {
        let (g, t) = toy_graph();
        let machine = dgx1();
        let verifier = PlanVerifier::new(&machine, &g);
        let mut plan = InstrumentationPlan::new();
        plan.assign(TensorId(999), MemoryDirective::SwapToHost(HostTier::Dram));
        plan.assign(t[4], MemoryDirective::SwapToHost(HostTier::Dram)); // boundary
        let report = verifier.verify(&plan, &DeviceMap::identity(2));
        assert!(
            report.has_code(Code::BadDirectiveTarget),
            "{}",
            report.render_table()
        );
        assert_eq!(report.error_count(), 2);
    }

    #[test]
    fn mp011_fires_on_short_device_map() {
        let (g, _) = toy_graph();
        let machine = dgx1();
        let report = PlanVerifier::new(&machine, &g)
            .verify(&InstrumentationPlan::new(), &DeviceMap::identity(1));
        assert!(
            report.has_code(Code::BadDeviceMap),
            "{}",
            report.render_table()
        );
    }

    #[test]
    fn mp012_fires_on_overflowing_bytes() {
        let mut b = TrainingGraph::builder(1);
        let h1 = b.add_tensor(
            TensorKind::Parameter,
            Bytes(u64::MAX / 2 + 1),
            0,
            None,
            None,
        );
        let h2 = b.add_tensor(
            TensorKind::Parameter,
            Bytes(u64::MAX / 2 + 1),
            0,
            None,
            None,
        );
        b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| {
            op.reads.extend([h1, h2]);
        });
        let g = b.build().expect("valid shape");
        let machine = dgx1();
        let report = PlanVerifier::new(&machine, &g)
            .verify(&InstrumentationPlan::new(), &DeviceMap::identity(1));
        assert!(report.has_code(Code::Overflow), "{}", report.render_table());
        // Saturated totals still flag the capacity error.
        assert!(
            report.has_code(Code::CapacityExceeded),
            "{}",
            report.render_table()
        );
    }

    #[test]
    fn check_plan_one_shot_matches_verifier() {
        let (g, _) = toy_graph();
        let machine = dgx1();
        let plan = InstrumentationPlan::new();
        let map = DeviceMap::identity(2);
        let a = PlanVerifier::new(&machine, &g).verify(&plan, &map);
        let b = check_plan(&machine, &g, &plan, &map);
        assert_eq!(a, b);
    }
}

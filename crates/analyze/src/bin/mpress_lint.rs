//! The `mpress-lint` binary: scans the workspace sources for
//! determinism/robustness hazards and enforces the ratcheting
//! allowlist (see `mpress_analyze::lint`).
//!
//! ```text
//! mpress-lint [--root DIR] [--allowlist FILE] [--update]
//! ```
//!
//! Exit codes: 0 = gate passes, 1 = violations or ratchet drift,
//! 2 = usage or I/O error.

use mpress_analyze::lint::{check, scan_workspace, Allowlist, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    allowlist: PathBuf,
    update: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut root = PathBuf::from(".");
    let mut allowlist: Option<PathBuf> = None;
    let mut update = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--update" => update = true,
            "--root" => {
                root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--allowlist" => {
                allowlist = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--allowlist needs a file".to_string())?,
                ));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: mpress-lint [--root DIR] [--allowlist FILE] [--update]".to_string(),
                );
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let allowlist = allowlist.unwrap_or_else(|| root.join("lint_allowlist.txt"));
    Ok(Options {
        root,
        allowlist,
        update,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let counts = match scan_workspace(&opts.root) {
        Ok(counts) => counts,
        Err(err) => {
            eprintln!("mpress-lint: scanning {}: {err}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    let old = match std::fs::read_to_string(&opts.allowlist) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(list) => list,
            Err(msg) => {
                eprintln!("mpress-lint: {}: {msg}", opts.allowlist.display());
                return ExitCode::from(2);
            }
        },
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => Allowlist::default(),
        Err(err) => {
            eprintln!("mpress-lint: {}: {err}", opts.allowlist.display());
            return ExitCode::from(2);
        }
    };

    if opts.update {
        let rendered = Allowlist::render(&counts, &old);
        if let Err(err) = std::fs::write(&opts.allowlist, rendered) {
            eprintln!("mpress-lint: writing {}: {err}", opts.allowlist.display());
            return ExitCode::from(2);
        }
        println!(
            "mpress-lint: wrote {} ({} entries)",
            opts.allowlist.display(),
            counts.len()
        );
        return ExitCode::SUCCESS;
    }

    // Per-rule totals for the summary line.
    for &rule in ALL_RULES {
        let total: usize = counts
            .iter()
            .filter(|((r, _), _)| *r == rule)
            .map(|(_, &c)| c)
            .sum();
        let files = counts.iter().filter(|((r, _), _)| *r == rule).count();
        println!("{rule:<15} {total:>4} site(s) across {files} file(s)");
    }

    let problems = check(&counts, &old);
    if problems.is_empty() {
        println!("mpress-lint: allowlist consistent — gate passes");
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("mpress-lint: {p}");
        }
        eprintln!("mpress-lint: {} problem(s)", problems.len());
        ExitCode::FAILURE
    }
}

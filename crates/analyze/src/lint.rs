//! `mpress-lint`: token-level determinism/robustness lints over the
//! workspace sources (no rustc plugin, plain text).
//!
//! Four rules back the workspace's determinism and robustness
//! contracts:
//!
//! * **wall-clock** — `Instant::now`/`SystemTime` in the simulated-time
//!   crates (`core`, `sim`, `pipeline`): wall clocks in those paths
//!   break the jobs=1 ≡ jobs=N byte-identity contract.
//! * **hash-container** — `HashMap`/`HashSet` in the hot-path crates
//!   (`core`, `sim`, `pipeline`, `compaction`): iteration order is
//!   nondeterministic, so uses must be keyed-lookup-only and justified.
//! * **hash-iteration** — *iterating* a `HashMap`/`HashSet` (same-line
//!   `.iter()`/`.keys()`/`.values()`/`.into_iter()`/`.drain(`), or
//!   collecting into one via `collect::<HashMap…>`, in the deterministic
//!   planner/emulator/analysis crates (`core`, `sim`, `analyze`):
//!   iteration order varies run to run, so those paths must use ordered
//!   containers or sort before iterating.
//! * **panic-site** — `unwrap()`/`expect()`/`panic!` in library code
//!   outside `#[cfg(test)]`: robustness hazards to burn down over time.
//!
//! Counts are compared against a checked-in allowlist
//! (`lint_allowlist.txt`) that can only **ratchet down**: more
//! violations than allowed fails, and *fewer* violations than allowed
//! also fails (the file must be regenerated with `--update` so the
//! improvement is locked in).

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock reads in simulated-time crates.
    WallClock,
    /// Nondeterministically-ordered containers in hot-path crates.
    HashContainer,
    /// Hash-ordered *iteration* in deterministic planner/sim/analyze
    /// paths.
    HashIteration,
    /// `unwrap()`/`expect()`/`panic!` in library code.
    PanicSite,
}

impl Rule {
    /// Stable name used in the allowlist file and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::HashContainer => "hash-container",
            Rule::HashIteration => "hash-iteration",
            Rule::PanicSite => "panic-site",
        }
    }

    /// Parses the stable name.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "wall-clock" => Some(Rule::WallClock),
            "hash-container" => Some(Rule::HashContainer),
            "hash-iteration" => Some(Rule::HashIteration),
            "panic-site" => Some(Rule::PanicSite),
            _ => None,
        }
    }

    /// Whether the rule applies to the given workspace crate.
    fn applies_to_crate(self, krate: &str) -> bool {
        match self {
            Rule::WallClock => matches!(krate, "core" | "sim" | "pipeline"),
            Rule::HashContainer => matches!(krate, "core" | "sim" | "pipeline" | "compaction"),
            Rule::HashIteration => matches!(krate, "core" | "sim" | "analyze"),
            Rule::PanicSite => true,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// All rules, in report order.
pub const ALL_RULES: &[Rule] = &[
    Rule::WallClock,
    Rule::HashContainer,
    Rule::HashIteration,
    Rule::PanicSite,
];

/// Violation counts per `(rule, workspace-relative file)`.
pub type Counts = BTreeMap<(Rule, String), usize>;

/// Replaces comments, string/char literals and (optionally nested)
/// `#[cfg(test)]` items with spaces, preserving length and newlines, so
/// token counting never matches documentation, test code or literals.
pub fn mask_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out: Vec<u8> = bytes.to_vec();
    let n = bytes.len();
    let mut i = 0;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for b in &mut out[from..to] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    while i < n {
        match bytes[i] {
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let end = memfind(bytes, i, b'\n').unwrap_or(n);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                // Nested block comments.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j + 1 < n && depth > 0 {
                    if bytes[j] == b'/' && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = if depth == 0 { j } else { n };
                blank(&mut out, i, end);
                i = end;
            }
            b'"' => {
                let end = scan_string(bytes, i);
                blank(&mut out, i + 1, end.saturating_sub(1).max(i + 1));
                i = end;
            }
            b'r' if i + 1 < n && (bytes[i + 1] == b'"' || bytes[i + 1] == b'#') => {
                if let Some(end) = scan_raw_string(bytes, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes within a few
                // bytes; a lifetime never has a closing quote.
                if let Some(end) = scan_char_literal(bytes, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    let masked = String::from_utf8_lossy(&out).into_owned();
    mask_cfg_test(&masked)
}

/// Finds `needle` in `bytes[from..]`.
fn memfind(bytes: &[u8], from: usize, needle: u8) -> Option<usize> {
    bytes[from..]
        .iter()
        .position(|&b| b == needle)
        .map(|p| from + p)
}

/// End index (exclusive) of a normal string literal starting at `i`.
fn scan_string(bytes: &[u8], i: usize) -> usize {
    let n = bytes.len();
    let mut j = i + 1;
    while j < n {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// End index of a raw string literal (`r"…"`, `r#"…"#`, …) starting at
/// the `r`, or `None` if this is not one.
fn scan_raw_string(bytes: &[u8], i: usize) -> Option<usize> {
    let n = bytes.len();
    let mut j = i + 1;
    let mut hashes = 0usize;
    while j < n && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || bytes[j] != b'"' {
        return None;
    }
    j += 1;
    while j < n {
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && seen < hashes && bytes[k] == b'#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
        }
        j += 1;
    }
    Some(n)
}

/// End index of a char literal starting at `'`, or `None` for a
/// lifetime.
fn scan_char_literal(bytes: &[u8], i: usize) -> Option<usize> {
    let n = bytes.len();
    if i + 2 < n && bytes[i + 1] == b'\\' {
        // Escaped char: find the closing quote within a short window
        // (longest escapes are \u{10FFFF}).
        let limit = (i + 12).min(n);
        (i + 3..limit).find(|&j| bytes[j] == b'\'').map(|j| j + 1)
    } else if i + 2 < n && bytes[i + 2] == b'\'' && bytes[i + 1] != b'\'' {
        Some(i + 3)
    } else {
        None
    }
}

/// Blanks every `#[cfg(test)]` attribute *and the item it gates*
/// (through the matching closing brace, or the terminating semicolon
/// for block-less items). Input must already have comments/strings
/// masked so brace matching is reliable.
fn mask_cfg_test(masked: &str) -> String {
    const MARKER: &str = "#[cfg(test)]";
    let bytes = masked.as_bytes();
    let mut out = bytes.to_vec();
    let mut from = 0;
    while let Some(pos) = masked[from..].find(MARKER).map(|p| p + from) {
        let mut j = pos + MARKER.len();
        // Skip whitespace and further attributes to the item itself.
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'#' {
                // Another attribute: skip its bracket group.
                while j < bytes.len() && bytes[j] != b']' {
                    j += 1;
                }
                j += 1;
            } else {
                break;
            }
        }
        // Blank to the end of the gated item.
        let mut depth = 0usize;
        let mut end = j;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end += 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end += 1;
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        for b in &mut out[pos..end] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
        from = end.max(pos + MARKER.len());
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Counts one rule's tokens in already-masked source.
pub fn count_rule(masked: &str, rule: Rule) -> usize {
    match rule {
        Rule::WallClock => count_token(masked, "Instant::now") + count_token(masked, "SystemTime"),
        Rule::HashContainer => count_token(masked, "HashMap") + count_token(masked, "HashSet"),
        Rule::HashIteration => {
            // Line-level heuristic: a line that both names a hash
            // container and calls an iteration method is ordering over
            // hash state; so is collecting *into* one (the turbofish is
            // on the same line by construction). A line only counts
            // once per collect, or once for the name+call conjunction —
            // declarations, point lookups and `BTreeMap` never match.
            const CALLS: &[&str] = &[".iter()", ".keys()", ".values()", ".into_iter()", ".drain("];
            let mut hits = 0;
            for line in masked.lines() {
                let collects = line.match_indices("collect::<HashMap").count()
                    + line.match_indices("collect::<HashSet").count();
                if collects > 0 {
                    hits += collects;
                } else if (count_token(line, "HashMap") + count_token(line, "HashSet") > 0)
                    && CALLS.iter().any(|c| line.contains(c))
                {
                    hits += 1;
                }
            }
            hits
        }
        Rule::PanicSite => {
            let mut hits = count_token(masked, "panic!");
            // Method calls: require the exact call shape so
            // `unwrap_or(...)`/`expect_err(...)` don't match.
            hits += masked.match_indices(".unwrap()").count();
            hits += masked.match_indices(".expect(").count();
            hits
        }
    }
}

/// Counts whole-token occurrences (previous/next byte not part of an
/// identifier).
fn count_token(masked: &str, token: &str) -> usize {
    let bytes = masked.as_bytes();
    masked
        .match_indices(token)
        .filter(|&(pos, _)| {
            let before_ok = pos == 0 || {
                let b = bytes[pos - 1];
                !(b.is_ascii_alphanumeric() || b == b'_')
            };
            let after = pos + token.len();
            let after_ok = after >= bytes.len() || {
                let b = bytes[after];
                !(b.is_ascii_alphanumeric() || b == b'_')
            };
            before_ok && after_ok
        })
        .count()
}

/// Scans the workspace rooted at `root` and returns violation counts.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading sources.
pub fn scan_workspace(root: &Path) -> io::Result<Counts> {
    let mut counts = Counts::new();
    let crates_dir = root.join("crates");
    let mut crate_names: Vec<String> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            crate_names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    crate_names.sort();
    for krate in &crate_names {
        let src_dir = crates_dir.join(krate).join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            // Binaries are allowed to panic: the rules target library
            // code (bin/ subtrees and main.rs are process entry points).
            let is_binary = rel.contains("/src/bin/") || rel.ends_with("/main.rs");
            let masked = mask_source(&fs::read_to_string(&file)?);
            for &rule in ALL_RULES {
                if !rule.applies_to_crate(krate) || (is_binary && rule == Rule::PanicSite) {
                    continue;
                }
                let hits = count_rule(&masked, rule);
                if hits > 0 {
                    counts.insert((rule, rel.clone()), hits);
                }
            }
        }
    }
    Ok(counts)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The parsed allowlist: max counts plus any reason strings.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Allowlist {
    /// `(rule, file)` → permitted count.
    pub max: BTreeMap<(Rule, String), usize>,
    /// `(rule, file)` → justification comment, if present.
    pub reasons: BTreeMap<(Rule, String), String>,
}

impl Allowlist {
    /// Parses the allowlist text format: `<rule> <path> <max> [# reason]`
    /// per line, `#`-prefixed lines and blanks ignored.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut list = Allowlist::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (entry, reason) = match line.split_once(" # ") {
                Some((e, r)) => (e.trim(), Some(r.trim().to_string())),
                None => (line, None),
            };
            let mut fields = entry.split_whitespace();
            let (Some(rule), Some(path), Some(max)) = (fields.next(), fields.next(), fields.next())
            else {
                return Err(format!(
                    "line {}: expected `<rule> <path> <max>`",
                    lineno + 1
                ));
            };
            let Some(rule) = Rule::parse(rule) else {
                return Err(format!("line {}: unknown rule {rule:?}", lineno + 1));
            };
            let Ok(max) = max.parse::<usize>() else {
                return Err(format!("line {}: bad count {max:?}", lineno + 1));
            };
            let key = (rule, path.to_string());
            list.max.insert(key.clone(), max);
            if let Some(r) = reason {
                list.reasons.insert(key, r);
            }
        }
        Ok(list)
    }

    /// Renders the allowlist back to its text format, preserving
    /// reasons for surviving entries.
    pub fn render(counts: &Counts, old: &Allowlist) -> String {
        let mut out = String::from(
            "# mpress-lint allowlist — the determinism/robustness ratchet.\n\
             #\n\
             # Format: <rule> <path> <max> [# reason]\n\
             # Counts may only go DOWN: `mpress-lint` fails when a file has more\n\
             # violations than listed here AND when it has fewer (regenerate with\n\
             # `mpress-lint --update` so improvements are locked in).\n",
        );
        for ((rule, file), &count) in counts {
            let key = (*rule, file.clone());
            match old.reasons.get(&key) {
                Some(reason) => out.push_str(&format!("{rule} {file} {count} # {reason}\n")),
                None => out.push_str(&format!("{rule} {file} {count}\n")),
            }
        }
        out
    }
}

/// Compares scanned counts against the allowlist. Returns the list of
/// problems (empty = gate passes).
pub fn check(counts: &Counts, allow: &Allowlist) -> Vec<String> {
    let mut problems = Vec::new();
    let mut keys: Vec<(Rule, String)> = counts.keys().cloned().collect();
    for key in allow.max.keys() {
        if !counts.contains_key(key) {
            keys.push(key.clone());
        }
    }
    keys.sort();
    keys.dedup();
    for key in keys {
        let actual = counts.get(&key).copied().unwrap_or(0);
        let permitted = allow.max.get(&key).copied().unwrap_or(0);
        let (rule, file) = &key;
        if actual > permitted {
            problems.push(format!(
                "{rule} {file}: {actual} violation(s), allowlist permits {permitted} — \
                 fix them or justify the increase in lint_allowlist.txt"
            ));
        } else if actual < permitted {
            problems.push(format!(
                "{rule} {file}: allowlist permits {permitted} but only {actual} remain — \
                 ratchet down with `mpress-lint --update`"
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_removes_comments_strings_and_tests() {
        let src = r#"
// a comment with panic!("x")
/* block .unwrap() */
fn lib() {
    let s = "contains .unwrap() and panic!";
    real().unwrap();
}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); y.unwrap(); }
}
"#;
        let masked = mask_source(src);
        assert_eq!(count_rule(&masked, Rule::PanicSite), 1, "{masked}");
    }

    #[test]
    fn expect_err_and_unwrap_or_do_not_count() {
        let masked =
            mask_source("fn f() { a.expect_err(\"x\"); b.unwrap_or(3); c.expect(\"y\"); }");
        assert_eq!(count_rule(&masked, Rule::PanicSite), 1);
    }

    #[test]
    fn wall_clock_and_hash_tokens_count_whole_words() {
        let masked = mask_source(
            "use std::time::Instant; fn f() { let t = Instant::now(); let m: HashMap<u32, u32>; }",
        );
        assert_eq!(count_rule(&masked, Rule::WallClock), 1);
        assert_eq!(count_rule(&masked, Rule::HashContainer), 1);
        // Identifier *containing* the token must not match.
        let masked2 = mask_source("struct MyHashMapLike; fn g(x: MyHashMapLike) {}");
        assert_eq!(count_rule(&masked2, Rule::HashContainer), 0);
    }

    #[test]
    fn cfg_test_fn_items_are_masked_through_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { x.unwrap(); }\nfn lib() { y.unwrap(); }";
        let masked = mask_source(src);
        assert_eq!(count_rule(&masked, Rule::PanicSite), 1, "{masked}");
    }

    #[test]
    fn char_literals_and_lifetimes_survive_masking() {
        let src = "fn f<'a>(x: &'a str) -> char { if x.is_empty() { '{' } else { '}' } }\nfn g() { h.unwrap(); }";
        let masked = mask_source(src);
        assert_eq!(count_rule(&masked, Rule::PanicSite), 1, "{masked}");
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "fn f() { let p = r#\"panic!(\"never\")\"#; }";
        let masked = mask_source(src);
        assert_eq!(count_rule(&masked, Rule::PanicSite), 0, "{masked}");
    }

    #[test]
    fn allowlist_round_trips_with_reasons() {
        let text = "# header\nwall-clock crates/core/src/x.rs 2 # bench timing\npanic-site crates/hw/src/y.rs 4\n";
        let list = Allowlist::parse(text).expect("parses");
        assert_eq!(
            list.max
                .get(&(Rule::WallClock, "crates/core/src/x.rs".into())),
            Some(&2)
        );
        let mut counts = Counts::new();
        counts.insert((Rule::WallClock, "crates/core/src/x.rs".into()), 2);
        counts.insert((Rule::PanicSite, "crates/hw/src/y.rs".into()), 4);
        let rendered = Allowlist::render(&counts, &list);
        assert!(rendered.contains("# bench timing"), "{rendered}");
        let reparsed = Allowlist::parse(&rendered).expect("round trips");
        assert_eq!(reparsed.max, list.max);
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(Allowlist::parse("wall-clock only-two").is_err());
        assert!(Allowlist::parse("no-such-rule a.rs 3").is_err());
        assert!(Allowlist::parse("panic-site a.rs many").is_err());
    }

    #[test]
    fn check_enforces_the_ratchet_in_both_directions() {
        let mut counts = Counts::new();
        counts.insert((Rule::PanicSite, "a.rs".into()), 3);
        let mut allow = Allowlist::default();

        // Unlisted violations fail.
        assert_eq!(check(&counts, &allow).len(), 1);

        // Exact match passes.
        allow.max.insert((Rule::PanicSite, "a.rs".into()), 3);
        assert!(check(&counts, &allow).is_empty());

        // Improvement without an allowlist update fails (ratchet).
        counts.insert((Rule::PanicSite, "a.rs".into()), 1);
        let problems = check(&counts, &allow);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("ratchet"), "{problems:?}");

        // Stale entries (file now clean) fail too.
        counts.remove(&(Rule::PanicSite, "a.rs".into()));
        assert_eq!(check(&counts, &allow).len(), 1);
    }

    #[test]
    fn rule_scoping_matches_the_contract() {
        assert!(Rule::WallClock.applies_to_crate("sim"));
        assert!(!Rule::WallClock.applies_to_crate("bench"));
        assert!(Rule::HashContainer.applies_to_crate("compaction"));
        assert!(!Rule::HashContainer.applies_to_crate("cli"));
        assert!(Rule::HashIteration.applies_to_crate("core"));
        assert!(Rule::HashIteration.applies_to_crate("analyze"));
        assert!(!Rule::HashIteration.applies_to_crate("compaction"));
        assert!(Rule::PanicSite.applies_to_crate("analyze"));
    }

    #[test]
    fn hash_iteration_flags_iteration_and_collects_but_not_lookups() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }\n\
                   fn g(xs: &[(u32, u32)]) { let _ = xs.iter().copied().collect::<HashMap<u32, u32>>(); }\n\
                   fn h(m: &HashMap<u32, u32>) -> Option<&u32> { m.get(&1) }\n\
                   fn i(b: &BTreeMap<u32, u32>) -> Vec<u32> { b.keys().copied().collect() }\n";
        let masked = mask_source(src);
        // Line 1: named hash container + `.keys()` on one line. Line 2:
        // collect into a HashMap (the same-line `.iter()` is not double
        // counted). Lines 3-4: point lookup / ordered container — clean.
        assert_eq!(count_rule(&masked, Rule::HashIteration), 2, "{masked}");
    }

    #[test]
    fn hash_iteration_name_parses_and_reports() {
        assert_eq!(Rule::parse("hash-iteration"), Some(Rule::HashIteration));
        assert_eq!(Rule::HashIteration.as_str(), "hash-iteration");
        assert!(ALL_RULES.contains(&Rule::HashIteration));
    }
}

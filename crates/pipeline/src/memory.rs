//! Closed-form per-stage GPU memory demands (paper Table II, Fig. 2).
//!
//! Stage `i` of an `S`-stage 1F1B pipeline keeps:
//!
//! * its layers' parameters (times the schedule's weight-version count),
//!   gradients and optimizer states,
//! * up to `min(S - i, M)` in-flight activation sets, each holding every
//!   layer activation of the stage plus the stage's boundary output.
//!
//! Early stages therefore dominate: the paper measures up to a 7.9x gap
//! between the most- and least-loaded GPU.

use crate::partition::StagePartition;
use crate::schedule::ScheduleKind;
use mpress_hw::Bytes;
use mpress_model::{PrecisionPolicy, TransformerConfig};
use serde::{Deserialize, Serialize};

/// Memory demand breakdown of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageMemory {
    /// Stage index.
    pub stage: usize,
    /// Current parameters of the stage's layers (one version).
    pub params: Bytes,
    /// Additional stashed weight versions (PipeDream only).
    pub stashed_params: Bytes,
    /// Gradient storage.
    pub grads: Bytes,
    /// Optimizer states.
    pub optimizer: Bytes,
    /// Activation bytes of ONE microbatch on this stage (incl. boundary).
    pub activations_per_microbatch: Bytes,
    /// Peak number of simultaneously resident activation sets.
    pub peak_in_flight: usize,
}

impl StageMemory {
    /// Peak bytes the stage demands.
    pub fn peak(&self) -> Bytes {
        self.static_bytes() + self.peak_activation_bytes()
    }

    /// Static (schedule-independent) bytes.
    pub fn static_bytes(&self) -> Bytes {
        self.params + self.stashed_params + self.grads + self.optimizer
    }

    /// Peak dynamic activation bytes.
    pub fn peak_activation_bytes(&self) -> Bytes {
        self.activations_per_microbatch * self.peak_in_flight as u64
    }
}

/// Whole-job memory demands: one [`StageMemory`] per stage plus the
/// aggregates the paper's Table II reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryDemands {
    /// Per-stage breakdowns.
    pub stages: Vec<StageMemory>,
    /// Per-stage peak bytes (same order).
    pub per_stage_peak: Vec<Bytes>,
}

impl MemoryDemands {
    /// Computes analytic demands for a (model, partition, schedule) triple.
    pub fn compute(
        model: &TransformerConfig,
        partition: &StagePartition,
        schedule: ScheduleKind,
        microbatch_size: usize,
        microbatches: usize,
        policy: &PrecisionPolicy,
    ) -> Self {
        let s = partition.n_stages();
        let act_layer = model.activation_bytes_per_layer(microbatch_size, policy);
        let boundary = model.boundary_activation_bytes(microbatch_size, policy);
        let layer_fp = model.layer_footprint(policy);
        let mut stages = Vec::with_capacity(s);
        for i in 0..s {
            let n_layers = partition.stage_layers(i).len() as u64;
            let mut params = layer_fp.params * n_layers;
            let mut grads = layer_fp.grads * n_layers;
            let mut optimizer = layer_fp.optimizer * n_layers;
            let mut act_mb = act_layer * n_layers + boundary;
            if i == 0 {
                let emb = model.embedding_footprint(policy);
                params += emb.params;
                grads += emb.grads;
                optimizer += emb.optimizer;
                act_mb += model.embedding_activation_bytes(microbatch_size, policy);
            }
            let versions = schedule.weight_versions(i, s);
            let stashed_params = params * (versions - 1);
            stages.push(StageMemory {
                stage: i,
                params,
                stashed_params,
                grads,
                optimizer,
                activations_per_microbatch: act_mb,
                peak_in_flight: schedule.in_flight(i, s, microbatches),
            });
        }
        let per_stage_peak = stages.iter().map(StageMemory::peak).collect();
        MemoryDemands {
            stages,
            per_stage_peak,
        }
    }

    /// Total GPU memory demand of the whole job (Table II "Total").
    pub fn total(&self) -> Bytes {
        self.per_stage_peak.iter().copied().sum()
    }

    /// Largest per-stage demand (Table II "per-stage Max").
    pub fn max_stage(&self) -> Bytes {
        self.per_stage_peak
            .iter()
            .copied()
            .max()
            .unwrap_or(Bytes::ZERO)
    }

    /// Smallest per-stage demand (Table II "per-stage Min").
    pub fn min_stage(&self) -> Bytes {
        self.per_stage_peak
            .iter()
            .copied()
            .min()
            .unwrap_or(Bytes::ZERO)
    }

    /// Ratio between the most- and least-loaded stage (Fig. 2's imbalance;
    /// the paper observes up to 7.9x).
    pub fn imbalance_ratio(&self) -> f64 {
        let min = self.min_stage();
        if min.is_zero() {
            return f64::INFINITY;
        }
        self.max_stage().as_f64() / min.as_f64()
    }

    /// Spare bytes per stage on a device with `capacity`: how much memory a
    /// D2D importer could donate (zero for overloaded stages).
    pub fn spare_per_stage(&self, capacity: Bytes) -> Vec<Bytes> {
        self.per_stage_peak
            .iter()
            .map(|&p| capacity.saturating_sub(p))
            .collect()
    }

    /// Bytes each stage overflows a device with `capacity` (zero when it
    /// fits).
    pub fn overflow_per_stage(&self, capacity: Bytes) -> Vec<Bytes> {
        self.per_stage_peak
            .iter()
            .map(|&p| p.saturating_sub(capacity))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionGoal;
    use mpress_model::zoo;

    fn gpt_demands() -> MemoryDemands {
        let cfg = zoo::gpt_5_3b();
        let policy = PrecisionPolicy::mixed();
        let part = StagePartition::balanced(&cfg, 8, 2, &policy, PartitionGoal::Computation);
        MemoryDemands::compute(&cfg, &part, ScheduleKind::Dapple, 2, 8, &policy)
    }

    /// Table II row "GPT+DAPPLE 5.3B": total 164.8 GB, max 28.5, min 12.7.
    /// First-principles sizing should land within ~15% of each.
    #[test]
    fn gpt_5_3b_matches_table2() {
        let d = gpt_demands();
        let total = d.total().as_gib_f64();
        let max = d.max_stage().as_gib_f64();
        let min = d.min_stage().as_gib_f64();
        assert!((140.0..190.0).contains(&total), "total {total:.1} GB");
        assert!((24.0..33.0).contains(&max), "max {max:.1} GB");
        assert!((5.0..15.0).contains(&min), "min {min:.1} GB");
    }

    #[test]
    fn memory_decreases_monotonically_along_stages() {
        let d = gpt_demands();
        for w in d.per_stage_peak.windows(2) {
            assert!(w[0] >= w[1], "{:?}", d.per_stage_peak);
        }
    }

    /// Fig. 2: PipeDream's weight stashing makes the early-stage imbalance
    /// even steeper than DAPPLE's.
    #[test]
    fn pipedream_stashing_increases_imbalance() {
        let cfg = zoo::bert_1_67b();
        let policy = PrecisionPolicy::full();
        let part = StagePartition::balanced(&cfg, 8, 2, &policy, PartitionGoal::Computation);
        let pd = MemoryDemands::compute(&cfg, &part, ScheduleKind::PipeDream, 2, 8, &policy);
        let dp = MemoryDemands::compute(&cfg, &part, ScheduleKind::Dapple, 2, 8, &policy);
        assert!(pd.imbalance_ratio() > dp.imbalance_ratio());
        assert!(pd.total() > dp.total());
        // The paper observes up to a 7.9x most/least gap.
        assert!(
            (3.0..12.0).contains(&pd.imbalance_ratio()),
            "imbalance {:.1}",
            pd.imbalance_ratio()
        );
    }

    #[test]
    fn spare_and_overflow_partition_capacity() {
        let d = gpt_demands();
        let cap = Bytes::gib(32);
        let spare = d.spare_per_stage(cap);
        let over = d.overflow_per_stage(cap);
        for i in 0..8 {
            // Exactly one of spare/overflow is non-zero per stage.
            assert!(spare[i].is_zero() || over[i].is_zero());
            let peak = d.per_stage_peak[i];
            if peak > cap {
                assert_eq!(over[i], peak - cap);
            } else {
                assert_eq!(spare[i], cap - peak);
            }
        }
    }

    #[test]
    fn stage_peak_decomposes() {
        let d = gpt_demands();
        for s in &d.stages {
            assert_eq!(s.peak(), s.static_bytes() + s.peak_activation_bytes());
        }
    }

    #[test]
    fn only_stage0_carries_embedding() {
        let d = gpt_demands();
        // Stage 0 has embedding params on top of roughly equal layer splits.
        assert!(d.stages[0].params > d.stages[7].params);
    }
}

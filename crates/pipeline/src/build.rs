//! Lowering a [`PipelineJob`] to a [`TrainingGraph`].
//!
//! Compute is lowered at **layer granularity**: one forward and one
//! backward op per (layer, microbatch), sequenced inside each stage's 1F1B
//! slot order. This matters for fidelity: a layer's activation becomes
//! swappable the moment its own forward completes (not when the whole
//! stage finishes), and the transient working set of a stage is one layer,
//! not one full microbatch — both properties the paper's runtime relies
//! on.
//!
//! Per stage the graph carries: one parameter/gradient/optimizer tensor
//! per layer, a stash tensor for PipeDream's extra weight versions, and
//! per microbatch one activation tensor per layer plus the stage's
//! boundary output. Cross-stage send dependencies serialize adjacent
//! stages exactly as in the paper's Fig. 1.

use crate::job::PipelineJob;
use crate::schedule::StageSlot;
use mpress_graph::{GraphError, OpId, OpKind, TensorId, TensorKind, TrainingGraph};
use std::collections::HashMap;

/// A lowered job: the dataflow graph plus convenience lookups.
#[derive(Debug, Clone)]
pub struct LoweredJob {
    /// The validated dataflow graph.
    pub graph: TrainingGraph,
    /// `(stage, microbatch) -> first forward op` (the stage's forward
    /// entry point).
    pub forward_ops: HashMap<(usize, u32), OpId>,
    /// `(stage, microbatch) -> last backward op` (the stage's backward
    /// completion point).
    pub backward_ops: HashMap<(usize, u32), OpId>,
    /// Per-stage stashed weight-version tensors (PipeDream keeps one per
    /// in-flight minibatch beyond the current weights; each version is
    /// consumed by its own minibatch's backward).
    pub stash_tensors: Vec<Vec<TensorId>>,
}

impl PipelineJob {
    /// Lowers the job into a dataflow graph.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if lowering produced an inconsistent graph
    /// (a bug in this builder rather than bad user input).
    pub fn lower(&self) -> Result<LoweredJob, GraphError> {
        let s = self.n_stages();
        let m = self.microbatches() as u32;
        let policy = self.precision();
        let model = self.model();
        let folds_optimizer = !self.schedule().has_optimizer_step();
        let mut b = TrainingGraph::builder(s);

        // --- Static tensors -------------------------------------------------
        let layer_fp = model.layer_footprint(policy);
        // Per stage: tensors indexed by position within the stage.
        let mut param_tensors: Vec<Vec<TensorId>> = vec![Vec::new(); s];
        let mut grad_tensors: Vec<Vec<TensorId>> = vec![Vec::new(); s];
        let mut opt_tensors: Vec<Vec<TensorId>> = vec![Vec::new(); s];
        let mut stash_tensors: Vec<Vec<TensorId>> = vec![Vec::new(); s];
        // Embedding block statics live on stage 0.
        let emb = model.embedding_footprint(policy);
        let emb_param = b.add_tensor(TensorKind::Parameter, emb.params, 0, None, None);
        let emb_grad = b.add_tensor(TensorKind::Gradient, emb.grads, 0, None, None);
        let emb_opt = b.add_tensor(TensorKind::OptimizerState, emb.optimizer, 0, None, None);
        for stage in 0..s {
            for layer in self.partition().stage_layers(stage) {
                param_tensors[stage].push(b.add_tensor(
                    TensorKind::Parameter,
                    layer_fp.params,
                    stage,
                    Some(layer),
                    None,
                ));
                grad_tensors[stage].push(b.add_tensor(
                    TensorKind::Gradient,
                    layer_fp.grads,
                    stage,
                    Some(layer),
                    None,
                ));
                opt_tensors[stage].push(b.add_tensor(
                    TensorKind::OptimizerState,
                    layer_fp.optimizer,
                    stage,
                    Some(layer),
                    None,
                ));
            }
            let versions = self.schedule().weight_versions(stage, s);
            if versions > 1 {
                let mut bytes = layer_fp.params * self.partition().stage_layers(stage).len() as u64;
                if stage == 0 {
                    bytes += emb.params;
                }
                for _ in 1..versions {
                    stash_tensors[stage].push(b.add_tensor(
                        TensorKind::Parameter,
                        bytes,
                        stage,
                        None,
                        None,
                    ));
                }
            }
        }

        // --- Dynamic tensors -------------------------------------------------
        let act_bytes = model.activation_bytes_per_layer(self.microbatch_size(), policy);
        let boundary_bytes = model.boundary_activation_bytes(self.microbatch_size(), policy);
        let embed_act_bytes = model.embedding_activation_bytes(self.microbatch_size(), policy);
        // (stage, mb) -> per-layer activation tensors, in stage-layer order.
        let mut act_tensors: HashMap<(usize, u32), Vec<TensorId>> = HashMap::new();
        let mut boundary_tensors: HashMap<(usize, u32), TensorId> = HashMap::new();
        let mut embed_acts: HashMap<u32, TensorId> = HashMap::new();
        for stage in 0..s {
            for mb in 0..m {
                let acts: Vec<TensorId> = self
                    .partition()
                    .stage_layers(stage)
                    .map(|layer| {
                        b.add_tensor(
                            TensorKind::Activation,
                            act_bytes,
                            stage,
                            Some(layer),
                            Some(mb),
                        )
                    })
                    .collect();
                act_tensors.insert((stage, mb), acts);
                if stage + 1 < s {
                    boundary_tensors.insert(
                        (stage, mb),
                        b.add_tensor(TensorKind::Boundary, boundary_bytes, stage, None, Some(mb)),
                    );
                }
                if stage == 0 {
                    embed_acts.insert(
                        mb,
                        b.add_tensor(TensorKind::Activation, embed_act_bytes, 0, None, Some(mb)),
                    );
                }
            }
        }

        // --- Ops in per-stage program order ---------------------------------
        let t_layer = self.layer_forward_time();
        // The embedding lookup is a gather, far cheaper than a block.
        let t_embed = 0.05 * t_layer;
        let t_head = self.head_forward_time();
        let comm = self.boundary_comm_time();
        let mut forward_ops = HashMap::new();
        let mut backward_ops = HashMap::new();
        let mut send_f: HashMap<(usize, u32), OpId> = HashMap::new();
        let mut send_b: HashMap<(usize, u32), OpId> = HashMap::new();
        for (stage, program) in self.programs().into_iter().enumerate() {
            let n_layers = self.partition().stage_layers(stage).len();
            let last_stage = stage == s - 1;
            for slot in program.slots {
                match slot {
                    StageSlot::Forward(mb) => {
                        let acts = act_tensors
                            .get(&(stage, mb))
                            .ok_or(GraphError::LoweringInvariant(
                                "forward slot has no activation tensors",
                            ))?
                            .clone();
                        let mut first_op = None;
                        let mut last_fwd = None;
                        if stage == 0 {
                            let ea = *embed_acts.get(&mb).ok_or(GraphError::LoweringInvariant(
                                "stage 0 is missing its embedding activation",
                            ))?;
                            let id = b.add_op(OpKind::Forward, 0, Some(mb), t_embed, |op| {
                                op.reads.push(emb_param);
                                op.writes.push(ea);
                            });
                            first_op = Some(id);
                        }
                        for (idx, &a) in acts.iter().enumerate() {
                            let param = param_tensors[stage][idx];
                            let writes_boundary = idx + 1 == n_layers && !last_stage;
                            let out_bt = if writes_boundary {
                                Some(boundary_tensors.get(&(stage, mb)).copied().ok_or(
                                    GraphError::LoweringInvariant(
                                        "non-last stage is missing its boundary tensor",
                                    ),
                                )?)
                            } else {
                                None
                            };
                            let reads_boundary = idx == 0 && stage > 0;
                            let prev_bt = if reads_boundary {
                                Some(boundary_tensors.get(&(stage - 1, mb)).copied().ok_or(
                                    GraphError::LoweringInvariant(
                                        "upstream stage is missing its boundary tensor",
                                    ),
                                )?)
                            } else {
                                None
                            };
                            let id = b.add_op(OpKind::Forward, stage, Some(mb), t_layer, |op| {
                                op.reads.push(param);
                                if let Some(pbt) = prev_bt {
                                    op.reads.push(pbt);
                                }
                                op.writes.push(a);
                                if let Some(bt) = out_bt {
                                    op.writes.push(bt);
                                }
                            });
                            if first_op.is_none() {
                                first_op = Some(id);
                            }
                            last_fwd = Some(id);
                        }
                        // The vocabulary head runs on the last stage.
                        if last_stage {
                            b.add_op(OpKind::Forward, stage, Some(mb), t_head, |_| {});
                        }
                        let first = first_op.ok_or(GraphError::LoweringInvariant(
                            "stage lowered zero forward ops",
                        ))?;
                        forward_ops.insert((stage, mb), first);
                        if !last_stage {
                            let bt = boundary_tensors.get(&(stage, mb)).copied().ok_or(
                                GraphError::LoweringInvariant(
                                    "non-last stage is missing its boundary tensor",
                                ),
                            )?;
                            let sid = b.add_op(OpKind::Send, stage, Some(mb), comm, |op| {
                                op.reads.push(bt);
                            });
                            // Sends run on a separate comm stream, so the
                            // data dependency on the producing forward is
                            // explicit.
                            let lf = last_fwd.ok_or(GraphError::LoweringInvariant(
                                "stage lowered zero forward ops",
                            ))?;
                            b.add_dep(lf, sid);
                            send_f.insert((stage, mb), sid);
                        }
                    }
                    StageSlot::Backward(mb) => {
                        let acts = act_tensors
                            .get(&(stage, mb))
                            .ok_or(GraphError::LoweringInvariant(
                                "backward slot has no activation tensors",
                            ))?
                            .clone();
                        if last_stage {
                            b.add_op(OpKind::Backward, stage, Some(mb), 2.0 * t_head, |_| {});
                        }
                        let mut last_op = None;
                        // Backward walks the stage's layers in reverse.
                        for idx in (0..n_layers).rev() {
                            let a = acts[idx];
                            let param = param_tensors[stage][idx];
                            let grad = grad_tensors[stage][idx];
                            let opt = folds_optimizer.then(|| opt_tensors[stage][idx]);
                            let bt = boundary_tensors.get(&(stage, mb)).copied();
                            let frees_own_boundary = idx + 1 == n_layers;
                            let id =
                                b.add_op(OpKind::Backward, stage, Some(mb), 2.0 * t_layer, |op| {
                                    op.reads.extend([a, param]);
                                    if let Some(o) = opt {
                                        op.reads.push(o);
                                    }
                                    op.writes.push(grad);
                                    op.frees.push(a);
                                    // The outbound boundary is last needed
                                    // by its own layer's backward.
                                    if frees_own_boundary {
                                        if let Some(bt) = bt {
                                            op.reads.push(bt);
                                            op.frees.push(bt);
                                        }
                                    }
                                });
                            last_op = Some(id);
                        }
                        // Each stashed weight version belongs to one
                        // in-flight minibatch and is last used by that
                        // minibatch's backward.
                        let stash = stash_tensors[stage].get(mb as usize).copied();
                        if stage == 0 {
                            let ea = *embed_acts.get(&mb).ok_or(GraphError::LoweringInvariant(
                                "stage 0 is missing its embedding activation",
                            ))?;
                            let id = b.add_op(OpKind::Backward, 0, Some(mb), 2.0 * t_embed, |op| {
                                op.reads.extend([ea, emb_param]);
                                if folds_optimizer {
                                    op.reads.push(emb_opt);
                                }
                                if let Some(st) = stash {
                                    op.reads.push(st);
                                }
                                op.writes.push(emb_grad);
                                op.frees.push(ea);
                            });
                            last_op = Some(id);
                        } else if let Some(st) = stash {
                            // Zero-cost marker: the version's last use at
                            // this minibatch's final backward.
                            let id = b.add_op(OpKind::Backward, stage, Some(mb), 0.0, |op| {
                                op.reads.push(st);
                            });
                            last_op = Some(id);
                        }
                        let last = last_op.ok_or(GraphError::LoweringInvariant(
                            "stage lowered zero backward ops",
                        ))?;
                        backward_ops.insert((stage, mb), last);
                        if stage > 0 {
                            let sid = b.add_op(OpKind::Send, stage, Some(mb), comm, |_| {});
                            b.add_dep(last, sid);
                            send_b.insert((stage, mb), sid);
                        }
                    }
                    StageSlot::OptimizerStep => {
                        // Real optimizers stream updates chunk by chunk —
                        // one op per layer keeps only that layer's states
                        // resident, which is what makes optimizer-state
                        // swapping viable at 20B+ scale.
                        let dur = self.optimizer_time(stage) / n_layers as f64;
                        for idx in 0..n_layers {
                            let grad = grad_tensors[stage][idx];
                            let opt = opt_tensors[stage][idx];
                            let param = param_tensors[stage][idx];
                            b.add_op(OpKind::OptimizerStep, stage, None, dur, |op| {
                                op.reads.extend([grad, opt]);
                                op.writes.push(param);
                            });
                        }
                        if stage == 0 {
                            b.add_op(OpKind::OptimizerStep, 0, None, dur, |op| {
                                op.reads.extend([emb_grad, emb_opt]);
                                op.writes.push(emb_param);
                            });
                        }
                    }
                }
            }
        }

        // --- Cross-stage dependencies ---------------------------------------
        let linked = || {
            GraphError::LoweringInvariant(
                "adjacent stage is missing its send op or stage entry point",
            )
        };
        for mb in 0..m {
            for stage in 1..s {
                let sf = *send_f.get(&(stage - 1, mb)).ok_or_else(linked)?;
                let fwd = *forward_ops.get(&(stage, mb)).ok_or_else(linked)?;
                b.add_dep(sf, fwd);
            }
            for stage in 0..s.saturating_sub(1) {
                let sb = *send_b.get(&(stage + 1, mb)).ok_or_else(linked)?;
                let bwd = *backward_ops.get(&(stage, mb)).ok_or_else(linked)?;
                b.add_dep(sb, bwd);
            }
        }

        let graph = b.build()?;
        Ok(LoweredJob {
            graph,
            forward_ops,
            backward_ops,
            stash_tensors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleKind;
    use mpress_graph::LivenessAnalysis;
    use mpress_hw::Bytes;
    use mpress_model::{zoo, PrecisionPolicy};

    fn small_job(kind: ScheduleKind) -> PipelineJob {
        PipelineJob::builder()
            .model(
                mpress_model::TransformerConfig::builder(mpress_model::ModelFamily::Gpt)
                    .layers(8)
                    .hidden(512)
                    .seq_len(256)
                    .build(),
            )
            .schedule(kind)
            .stages(4)
            .microbatch_size(2)
            .microbatches(6)
            .precision(PrecisionPolicy::mixed())
            .build()
            .unwrap()
    }

    #[test]
    fn lowering_validates() {
        for kind in [ScheduleKind::PipeDream, ScheduleKind::Dapple] {
            let job = small_job(kind);
            let lowered = job.lower().expect("lowering must validate");
            assert_eq!(lowered.graph.n_stages(), 4);
            assert_eq!(lowered.forward_ops.len(), 4 * 6);
            assert_eq!(lowered.backward_ops.len(), 4 * 6);
        }
    }

    #[test]
    fn op_counts_match_layer_granularity() {
        let job = small_job(ScheduleKind::Dapple);
        let g = job.lower().unwrap().graph;
        let fwd = g.ops().iter().filter(|o| o.kind == OpKind::Forward).count();
        let bwd = g
            .ops()
            .iter()
            .filter(|o| o.kind == OpKind::Backward)
            .count();
        let opt = g
            .ops()
            .iter()
            .filter(|o| o.kind == OpKind::OptimizerStep)
            .count();
        // 8 layers + embedding + head per microbatch per pass.
        assert_eq!(fwd, (8 + 1 + 1) * 6);
        assert_eq!(bwd, (8 + 1 + 1) * 6);
        assert_eq!(opt, 4 * 2 + 1); // 2 layers per stage + embedding on stage 0
    }

    #[test]
    fn pipedream_lowers_more_parameter_bytes() {
        let pd = small_job(ScheduleKind::PipeDream).lower().unwrap().graph;
        let dp = small_job(ScheduleKind::Dapple).lower().unwrap().graph;
        let param_bytes = |g: &TrainingGraph| {
            g.tensors()
                .iter()
                .filter(|t| t.kind == TensorKind::Parameter)
                .map(|t| t.bytes)
                .sum::<Bytes>()
        };
        assert!(param_bytes(&pd) > param_bytes(&dp));
    }

    #[test]
    fn early_layer_has_longest_live_interval() {
        let job = small_job(ScheduleKind::Dapple);
        let lowered = job.lower().unwrap();
        let g = &lowered.graph;
        let starts = g.serial_start_times();
        let live = LivenessAnalysis::compute(g, &starts);
        let acts: Vec<_> = g
            .tensors()
            .iter()
            .filter(|t| {
                t.kind == TensorKind::Activation
                    && t.stage == 0
                    && t.microbatch == Some(0)
                    && t.layer.is_some()
            })
            .collect();
        let first = acts.iter().find(|t| t.layer == Some(0)).unwrap();
        let last_layer = acts.iter().map(|t| t.layer.unwrap()).max().unwrap();
        let last = acts.iter().find(|t| t.layer == Some(last_layer)).unwrap();
        let d_first = live.interval(first.id).duration();
        let d_last = live.interval(last.id).duration();
        assert!(
            d_first > d_last,
            "layer0 interval {d_first} vs last {d_last}"
        );
    }

    #[test]
    fn serial_times_respect_pipeline_order() {
        let job = small_job(ScheduleKind::Dapple);
        let lowered = job.lower().unwrap();
        let g = &lowered.graph;
        let starts = g.serial_start_times();
        let f00 = lowered.forward_ops[&(0, 0)];
        let f10 = lowered.forward_ops[&(1, 0)];
        assert!(starts[f10.index()] >= starts[f00.index()] + g.op(f00).duration - 1e-12);
        let b00 = lowered.backward_ops[&(0, 0)];
        let b10 = lowered.backward_ops[&(1, 0)];
        assert!(starts[b00.index()] >= starts[b10.index()] - 1e-12);
    }

    #[test]
    fn each_activation_has_one_producer_and_one_backward_consumer() {
        let job = small_job(ScheduleKind::Dapple);
        let g = job.lower().unwrap().graph;
        for t in g.tensors() {
            if t.kind != TensorKind::Activation || t.layer.is_none() {
                continue;
            }
            assert!(g.producer_of(t.id).is_some(), "{} has no producer", t.id);
            let consumers = g.consumers_of(t.id);
            assert_eq!(consumers.len(), 1, "{} consumers: {consumers:?}", t.id);
            assert_eq!(g.op(consumers[0]).kind, OpKind::Backward);
        }
    }

    #[test]
    fn full_size_model_lowers() {
        let job = PipelineJob::builder()
            .model(zoo::gpt_5_3b())
            .microbatches(8)
            .build()
            .unwrap();
        let lowered = job.lower().unwrap();
        assert!(lowered.graph.ops().len() > 500);
        let g = &lowered.graph;
        assert!(g.stage_bytes(0) > g.stage_bytes(7));
    }
}

//! ASCII schedule timelines (paper Fig. 1).
//!
//! Renders the per-worker forward/backward interleaving of a small
//! pipeline, mirroring the paper's Fig. 1 diagrams: black boxes (here `F#`)
//! are forward passes, white boxes (`B#`) are backward passes, and DAPPLE's
//! minibatch barrier shows up as the optimizer slot `U`.

use crate::schedule::{ScheduleKind, StageProgram, StageSlot};
use std::fmt::Write as _;

/// Renders the slot order of every stage as one line per worker.
///
/// # Example
///
/// ```
/// use mpress_pipeline::timeline;
/// use mpress_pipeline::ScheduleKind;
///
/// let art = timeline::render(ScheduleKind::Dapple, 3, 6);
/// assert!(art.contains("worker 1"));
/// assert!(art.lines().count() == 3);
/// ```
pub fn render(kind: ScheduleKind, n_stages: usize, microbatches: usize) -> String {
    let mut out = String::new();
    for stage in 0..n_stages {
        let program = StageProgram::one_f_one_b(kind, stage, n_stages, microbatches);
        let _ = write!(out, "worker {}:", stage + 1);
        // Indent by the stage's pipeline fill delay so the ramp is visible.
        for _ in 0..stage {
            out.push_str("    ");
        }
        for slot in &program.slots {
            match slot {
                StageSlot::Forward(m) => {
                    let _ = write!(out, " F{}", m + 1);
                }
                StageSlot::Backward(m) => {
                    let _ = write!(out, " B{}", m + 1);
                }
                StageSlot::OptimizerStep => out.push_str(" U"),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the evolution of in-flight activation counts per worker, the
/// quantity plotted under each timeline in Fig. 1.
pub fn render_in_flight(kind: ScheduleKind, n_stages: usize, microbatches: usize) -> String {
    let mut out = String::new();
    for stage in 0..n_stages {
        let program = StageProgram::one_f_one_b(kind, stage, n_stages, microbatches);
        let _ = write!(out, "worker {} live:", stage + 1);
        let mut live = 0i64;
        for slot in &program.slots {
            match slot {
                StageSlot::Forward(_) => live += 1,
                StageSlot::Backward(_) => live -= 1,
                StageSlot::OptimizerStep => {}
            }
            let _ = write!(out, " {live}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_has_one_line_per_worker() {
        let art = render(ScheduleKind::PipeDream, 3, 6);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains("F1") && art.contains("B6"));
    }

    #[test]
    fn dapple_timeline_shows_barrier() {
        let art = render(ScheduleKind::Dapple, 3, 6);
        assert_eq!(art.matches(" U").count(), 3);
    }

    #[test]
    fn figure1_worker1_holds_three_before_first_backward() {
        // Paper Fig. 1: with 3 workers, worker 1 holds three activation
        // copies before the first backward starts.
        let counts = render_in_flight(ScheduleKind::Dapple, 3, 6);
        let w1 = counts.lines().next().unwrap();
        assert!(w1.starts_with("worker 1 live: 1 2 3"), "{w1}");
        let w3 = counts.lines().nth(2).unwrap();
        assert!(w3.starts_with("worker 3 live: 1 0"), "{w3}");
    }

    #[test]
    fn in_flight_returns_to_zero() {
        let counts = render_in_flight(ScheduleKind::PipeDream, 4, 8);
        for line in counts.lines() {
            assert!(line.trim_end().ends_with(" 0"), "{line}");
        }
    }
}

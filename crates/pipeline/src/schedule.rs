//! 1F1B pipeline schedules (paper Fig. 1).
//!
//! Both host systems interleave one forward with one backward per stage
//! ("1F1B") after a warm-up ramp. They differ across minibatches:
//!
//! * **PipeDream** (asynchronous): the next minibatch's forwards flow in
//!   immediately behind the previous one's backwards; convergence is
//!   preserved by stashing one weight *version* per in-flight minibatch.
//! * **DAPPLE** (synchronous): minibatches are serialized by a pipeline
//!   flush; a single weight version exists, and an optimizer step runs at
//!   the end of each minibatch.
//!
//! Stage `i` of an `S`-stage pipeline admits up to `S - i` microbatches
//! before its first backward, which is exactly the imbalanced-memory
//! phenomenon of Fig. 2.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which inter-minibatch scheduling a job uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// PipeDream: asynchronous, weight stashing, no flush.
    PipeDream,
    /// DAPPLE: synchronous 1F1B, single weights, flush + optimizer per
    /// minibatch.
    Dapple,
    /// GPipe: synchronous all-forward-then-all-backward — every stage
    /// holds *all* microbatches' activations at the forward/backward
    /// boundary (the paper names GPipe as MPress's next integration
    /// target).
    GPipe,
}

impl ScheduleKind {
    /// Number of weight versions stage `i` of `n_stages` keeps resident.
    pub fn weight_versions(self, stage: usize, n_stages: usize) -> u64 {
        match self {
            ScheduleKind::PipeDream => (n_stages - stage) as u64,
            ScheduleKind::Dapple | ScheduleKind::GPipe => 1,
        }
    }

    /// Peak number of in-flight activation sets on stage `i` when a
    /// minibatch has `microbatches` microbatches.
    pub fn in_flight(self, stage: usize, n_stages: usize, microbatches: usize) -> usize {
        match self {
            // 1F1B drains early: stage i admits S-i microbatches.
            ScheduleKind::PipeDream | ScheduleKind::Dapple => (n_stages - stage).min(microbatches),
            // All-forward-then-all-backward holds everything.
            ScheduleKind::GPipe => microbatches,
        }
    }

    /// Whether an explicit optimizer step ends each minibatch.
    pub fn has_optimizer_step(self) -> bool {
        matches!(self, ScheduleKind::Dapple | ScheduleKind::GPipe)
    }
}

impl fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleKind::PipeDream => write!(f, "PipeDream"),
            ScheduleKind::Dapple => write!(f, "DAPPLE"),
            ScheduleKind::GPipe => write!(f, "GPipe"),
        }
    }
}

/// One entry of a stage's execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageSlot {
    /// Forward pass of one microbatch.
    Forward(u32),
    /// Backward pass of one microbatch.
    Backward(u32),
    /// Weight update (synchronous schedules only).
    OptimizerStep,
}

impl fmt::Display for StageSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageSlot::Forward(m) => write!(f, "F{m}"),
            StageSlot::Backward(m) => write!(f, "B{m}"),
            StageSlot::OptimizerStep => write!(f, "U"),
        }
    }
}

/// The ordered slot sequence of one stage for one minibatch window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageProgram {
    /// The stage index.
    pub stage: usize,
    /// Slots in execution order.
    pub slots: Vec<StageSlot>,
}

impl StageProgram {
    /// Builds the 1F1B order for `stage` of `n_stages` over `microbatches`
    /// microbatches.
    ///
    /// Warm-up admits `min(S - stage, M)` forwards, then the steady phase
    /// alternates backward/forward, and the drain phase issues the
    /// remaining backwards. For DAPPLE an optimizer slot is appended.
    ///
    /// # Panics
    ///
    /// Panics if `microbatches == 0` or `stage >= n_stages`.
    pub fn one_f_one_b(
        kind: ScheduleKind,
        stage: usize,
        n_stages: usize,
        microbatches: usize,
    ) -> Self {
        assert!(microbatches > 0, "need at least one microbatch");
        assert!(stage < n_stages, "stage out of range");
        if kind == ScheduleKind::GPipe {
            return Self::gpipe(stage, microbatches);
        }
        let m = microbatches as u32;
        let warmup = ((n_stages - stage) as u32).min(m);
        let mut slots = Vec::with_capacity(2 * microbatches + 1);
        for f in 0..warmup {
            slots.push(StageSlot::Forward(f));
        }
        let mut next_f = warmup;
        for b in 0..m {
            slots.push(StageSlot::Backward(b));
            if next_f < m {
                slots.push(StageSlot::Forward(next_f));
                next_f += 1;
            }
        }
        if kind.has_optimizer_step() {
            slots.push(StageSlot::OptimizerStep);
        }
        StageProgram { stage, slots }
    }

    /// GPipe's order for one stage: all forwards, then all backwards in
    /// reverse (LIFO, matching autograd), then the optimizer step.
    fn gpipe(stage: usize, microbatches: usize) -> Self {
        let m = microbatches as u32;
        let mut slots = Vec::with_capacity(2 * microbatches + 1);
        slots.extend((0..m).map(StageSlot::Forward));
        slots.extend((0..m).rev().map(StageSlot::Backward));
        slots.push(StageSlot::OptimizerStep);
        StageProgram { stage, slots }
    }

    /// Maximum number of microbatches simultaneously holding activations on
    /// this stage (forwards issued minus backwards completed).
    pub fn peak_in_flight(&self) -> usize {
        let mut live = 0i64;
        let mut peak = 0i64;
        for s in &self.slots {
            match s {
                StageSlot::Forward(_) => {
                    live += 1;
                    peak = peak.max(live);
                }
                StageSlot::Backward(_) => live -= 1,
                StageSlot::OptimizerStep => {}
            }
        }
        peak as usize
    }

    /// The forward slots, in order.
    pub fn forwards(&self) -> Vec<u32> {
        self.slots
            .iter()
            .filter_map(|s| match s {
                StageSlot::Forward(m) => Some(*m),
                _ => None,
            })
            .collect()
    }

    /// The backward slots, in order.
    pub fn backwards(&self) -> Vec<u32> {
        self.slots
            .iter()
            .filter_map(|s| match s {
                StageSlot::Backward(m) => Some(*m),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for StageProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage {}:", self.stage)?;
        for s in &self.slots {
            write!(f, " {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_versions_follow_paper() {
        // PipeDream stage 0 of 8 keeps 8 versions; the last keeps 1.
        assert_eq!(ScheduleKind::PipeDream.weight_versions(0, 8), 8);
        assert_eq!(ScheduleKind::PipeDream.weight_versions(7, 8), 1);
        assert_eq!(ScheduleKind::Dapple.weight_versions(0, 8), 1);
    }

    #[test]
    fn in_flight_decreases_toward_late_stages() {
        for stage in 0..8 {
            let f = ScheduleKind::Dapple.in_flight(stage, 8, 16);
            assert_eq!(f, 8 - stage);
        }
        // Fewer microbatches than stages caps the in-flight count.
        assert_eq!(ScheduleKind::Dapple.in_flight(0, 8, 3), 3);
    }

    #[test]
    fn program_contains_each_pass_once() {
        let p = StageProgram::one_f_one_b(ScheduleKind::PipeDream, 2, 4, 6);
        let mut fwds = p.forwards();
        let mut bwds = p.backwards();
        fwds.sort_unstable();
        bwds.sort_unstable();
        assert_eq!(fwds, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(bwds, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn forward_always_precedes_its_backward() {
        for stage in 0..4 {
            let p = StageProgram::one_f_one_b(ScheduleKind::Dapple, stage, 4, 6);
            for m in 0..6u32 {
                let fpos = p
                    .slots
                    .iter()
                    .position(|s| *s == StageSlot::Forward(m))
                    .unwrap();
                let bpos = p
                    .slots
                    .iter()
                    .position(|s| *s == StageSlot::Backward(m))
                    .unwrap();
                assert!(fpos < bpos, "stage {stage} mb {m}");
            }
        }
    }

    #[test]
    fn peak_in_flight_matches_formula() {
        for stage in 0..8 {
            for m in [1usize, 4, 8, 16] {
                let p = StageProgram::one_f_one_b(ScheduleKind::PipeDream, stage, 8, m);
                assert_eq!(
                    p.peak_in_flight(),
                    ScheduleKind::PipeDream.in_flight(stage, 8, m),
                    "stage {stage}, m {m}"
                );
            }
        }
    }

    #[test]
    fn dapple_ends_with_optimizer() {
        let p = StageProgram::one_f_one_b(ScheduleKind::Dapple, 0, 4, 4);
        assert_eq!(p.slots.last(), Some(&StageSlot::OptimizerStep));
        let q = StageProgram::one_f_one_b(ScheduleKind::PipeDream, 0, 4, 4);
        assert!(q.slots.iter().all(|s| *s != StageSlot::OptimizerStep));
    }

    #[test]
    fn gpipe_holds_everything_then_drains() {
        let p = StageProgram::one_f_one_b(ScheduleKind::GPipe, 1, 4, 6);
        assert_eq!(p.peak_in_flight(), 6);
        assert_eq!(ScheduleKind::GPipe.in_flight(1, 4, 6), 6);
        // All forwards precede all backwards; backwards run in reverse.
        let first_bwd = p
            .slots
            .iter()
            .position(|s| matches!(s, StageSlot::Backward(_)))
            .unwrap();
        assert!(p.slots[..first_bwd]
            .iter()
            .all(|s| matches!(s, StageSlot::Forward(_))));
        assert_eq!(p.backwards(), vec![5, 4, 3, 2, 1, 0]);
        assert_eq!(p.slots.last(), Some(&StageSlot::OptimizerStep));
    }

    #[test]
    fn gpipe_has_single_weight_version() {
        assert_eq!(ScheduleKind::GPipe.weight_versions(0, 8), 1);
        assert!(ScheduleKind::GPipe.has_optimizer_step());
    }

    #[test]
    fn last_stage_strictly_alternates() {
        // Stage S-1 admits one forward then immediately drains it (Fig. 1).
        let p = StageProgram::one_f_one_b(ScheduleKind::Dapple, 3, 4, 4);
        let expect: Vec<StageSlot> = vec![
            StageSlot::Forward(0),
            StageSlot::Backward(0),
            StageSlot::Forward(1),
            StageSlot::Backward(1),
            StageSlot::Forward(2),
            StageSlot::Backward(2),
            StageSlot::Forward(3),
            StageSlot::Backward(3),
            StageSlot::OptimizerStep,
        ];
        assert_eq!(p.slots, expect);
    }
}

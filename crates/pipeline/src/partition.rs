//! Stage partitioning strategies.
//!
//! Both PipeDream and DAPPLE recommend partitions that balance *per-stage
//! computation time* (paper §II-C). §II-D also examines memory-balanced
//! partitioning and rejects it: evening out memory makes computation
//! imbalanced and costs ~34% throughput. We implement both so the trade-off
//! can be measured.

use mpress_model::{flops, PrecisionPolicy, TransformerConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// What a partitioner balances across stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionGoal {
    /// Equalize per-stage forward+backward time (the systems' default).
    Computation,
    /// Equalize per-stage peak memory (the §II-D alternative).
    Memory,
}

/// Assignment of consecutive layer ranges to pipeline stages.
///
/// Stage `i` trains layers `ranges[i]`; ranges tile `0..num_layers`
/// without gaps or overlap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagePartition {
    ranges: Vec<Range<usize>>,
}

impl StagePartition {
    /// Builds a partition from explicit ranges.
    ///
    /// # Panics
    ///
    /// Panics if the ranges do not tile `0..n` consecutively or any range
    /// is empty.
    pub fn from_ranges(ranges: Vec<Range<usize>>) -> Self {
        assert!(!ranges.is_empty(), "need at least one stage");
        let mut expect = 0;
        for r in &ranges {
            assert_eq!(r.start, expect, "ranges must tile consecutively");
            assert!(r.end > r.start, "stage ranges must be non-empty");
            expect = r.end;
        }
        StagePartition { ranges }
    }

    /// Partitions `model` into `n_stages` stages balancing `goal`.
    ///
    /// The partitioner walks layers greedily, closing a stage once its
    /// accumulated weight reaches the ideal per-stage share. Weights are:
    ///
    /// * **Computation**: per-layer forward FLOPs, with the vocabulary
    ///   head (which runs on the last stage) weighted onto the last layer.
    /// * **Memory**: per-layer peak bytes under the schedule-induced
    ///   in-flight activation multiplier of the stage the layer would land
    ///   on; since that is circular, we use the schedule-independent proxy
    ///   `static + activations` per layer, which is what a memory balancer
    ///   can actually equalize.
    ///
    /// # Panics
    ///
    /// Panics if `n_stages` is zero or exceeds the layer count.
    pub fn balanced(
        model: &TransformerConfig,
        n_stages: usize,
        microbatch: usize,
        policy: &PrecisionPolicy,
        goal: PartitionGoal,
    ) -> Self {
        let n = model.num_layers();
        assert!(n_stages > 0, "need at least one stage");
        assert!(
            n_stages <= n,
            "cannot split {n} layers into {n_stages} stages"
        );
        let weights: Vec<f64> = (0..n)
            .map(|l| match goal {
                PartitionGoal::Computation => {
                    let mut w = flops::layer_forward_flops(model, microbatch);
                    // The output head runs on the last stage; weighting it
                    // onto the last layer keeps per-stage compute even, so
                    // no stage hides behind pipeline bubbles. (It only
                    // matters for GPT — Bert's SQuAD head is negligible.)
                    if l == n - 1 {
                        w += flops::head_forward_flops(model, microbatch);
                    }
                    w
                }
                PartitionGoal::Memory => {
                    // Placeholder weight; the Memory goal takes the
                    // stage-aware path below.
                    let _ = l;
                    0.0
                }
            })
            .collect();
        if goal == PartitionGoal::Memory {
            return Self::memory_balanced_split(model, n_stages, microbatch, policy);
        }
        Self::greedy_split(&weights, n_stages)
    }

    /// Optimal contiguous split of `weights` into `k` non-empty groups:
    /// primary objective minimizes the maximum group sum (the
    /// linear-partition problem), secondary objective minimizes the sum of
    /// squared loads so remainders spread evenly, and ties prefer heavier
    /// groups *earlier* — matching the near-uniform splits the host
    /// systems' planners produce.
    fn greedy_split(weights: &[f64], k: usize) -> Self {
        const EPS: f64 = 1e-9;
        let n = weights.len();
        let mut prefix = vec![0.0; n + 1];
        for (i, &w) in weights.iter().enumerate() {
            prefix[i + 1] = prefix[i] + w;
        }
        let sum = |a: usize, b: usize| prefix[b] - prefix[a]; // weights[a..b]
        let scale = prefix[n].max(1.0);
        // dp[j][i]: (max load, sum of squared loads) for the first i layers
        // split into j groups.
        let mut dp = vec![vec![(f64::INFINITY, f64::INFINITY); n + 1]; k + 1];
        let mut cut = vec![vec![0usize; n + 1]; k + 1];
        dp[0][0] = (0.0, 0.0);
        for j in 1..=k {
            for i in j..=n {
                for p in (j - 1)..i {
                    let load = sum(p, i);
                    let (pmax, psq) = dp[j - 1][p];
                    let cand = (pmax.max(load), psq + load * load);
                    let best = dp[j][i];
                    let better = cand.0 < best.0 - EPS * scale
                        || (cand.0 <= best.0 + EPS * scale && cand.1 < best.1 - EPS * scale
                            || (cand.0 <= best.0 + EPS * scale
                                && (cand.1 - best.1).abs() <= EPS * scale
                                && p > cut[j][i]));
                    if better {
                        dp[j][i] = cand;
                        cut[j][i] = p;
                    }
                }
            }
        }
        let mut bounds = vec![n];
        let mut i = n;
        for j in (1..=k).rev() {
            i = cut[j][i];
            bounds.push(i);
        }
        bounds.reverse();
        let ranges = bounds.windows(2).map(|w| w[0]..w[1]).collect();
        StagePartition { ranges }
    }

    /// Stage-aware memory balancing: stage `j` of a 1F1B pipeline holds
    /// `S - j` in-flight activation sets, so equalizing peaks pushes MORE
    /// layers onto later stages — the very trade §II-D measures (and
    /// rejects: it makes computation imbalanced).
    fn memory_balanced_split(
        model: &TransformerConfig,
        n_stages: usize,
        microbatch: usize,
        policy: &PrecisionPolicy,
    ) -> Self {
        let n = model.num_layers();
        let static_l = model.layer_footprint(policy).total().as_f64();
        let act_l = model
            .activation_bytes_per_layer(microbatch, policy)
            .as_f64();
        let emb = model.embedding_footprint(policy).total().as_f64()
            + n_stages as f64
                * model
                    .embedding_activation_bytes(microbatch, policy)
                    .as_f64();
        // Peak of a group of `c` layers placed on stage j.
        let cost = |j: usize, c: usize| -> f64 {
            let in_flight = (n_stages - j) as f64;
            let mut w = c as f64 * (static_l + in_flight * act_l);
            if j == 0 {
                w += emb;
            }
            w
        };
        // dp[j][i]: minimal max-peak splitting the first i layers onto the
        // first j stages.
        let mut dp = vec![vec![f64::INFINITY; n + 1]; n_stages + 1];
        let mut cut = vec![vec![0usize; n + 1]; n_stages + 1];
        dp[0][0] = 0.0;
        for j in 1..=n_stages {
            for i in j..=n {
                for p in (j - 1)..i {
                    let cand = dp[j - 1][p].max(cost(j - 1, i - p));
                    if cand < dp[j][i] {
                        dp[j][i] = cand;
                        cut[j][i] = p;
                    }
                }
            }
        }
        let mut bounds = vec![n];
        let mut i = n;
        for j in (1..=n_stages).rev() {
            i = cut[j][i];
            bounds.push(i);
        }
        bounds.reverse();
        let ranges = bounds.windows(2).map(|w| w[0]..w[1]).collect();
        StagePartition { ranges }
    }

    /// Number of stages.
    pub fn n_stages(&self) -> usize {
        self.ranges.len()
    }

    /// The layer range of one stage.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn stage_layers(&self, stage: usize) -> Range<usize> {
        self.ranges[stage].clone()
    }

    /// Which stage hosts `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` exceeds the partitioned layer count.
    pub fn stage_of_layer(&self, layer: usize) -> usize {
        self.ranges
            .iter()
            .position(|r| r.contains(&layer))
            .unwrap_or_else(|| panic!("layer {layer} beyond partition"))
    }

    /// All ranges.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Total layer count covered.
    pub fn num_layers(&self) -> usize {
        self.ranges.last().map_or(0, |r| r.end)
    }
}

impl fmt::Display for StagePartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{}..{}", r.start, r.end)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpress_model::zoo;

    #[test]
    fn from_ranges_accepts_tiling() {
        let p = StagePartition::from_ranges(vec![0..2, 2..5, 5..6]);
        assert_eq!(p.n_stages(), 3);
        assert_eq!(p.num_layers(), 6);
        assert_eq!(p.stage_of_layer(4), 1);
    }

    #[test]
    #[should_panic(expected = "tile consecutively")]
    fn from_ranges_rejects_gap() {
        let _ = StagePartition::from_ranges(vec![0..2, 3..4]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn from_ranges_rejects_empty_stage() {
        let _ = StagePartition::from_ranges(vec![0..2, 2..2]);
    }

    #[test]
    fn computation_balance_splits_evenly_for_uniform_layers() {
        // All transformer layers cost the same, so an 8-way split of the
        // 40-layer Bert-0.64B gives five layers per stage.
        let cfg = zoo::bert_0_64b();
        let p = StagePartition::balanced(
            &cfg,
            8,
            12,
            &PrecisionPolicy::full(),
            PartitionGoal::Computation,
        );
        assert_eq!(p.n_stages(), 8);
        assert_eq!(p.num_layers(), 40);
        let sizes: Vec<usize> = p.ranges().iter().map(|r| r.len()).collect();
        // The last stage absorbs the vocabulary projection, so it may hold
        // fewer layers; everything else stays near 40/8 = 5.
        for (i, s) in sizes.iter().enumerate() {
            assert!(
                (4..=6).contains(s) || i == p.n_stages() - 1,
                "stage {i} has {s} layers: {sizes:?}"
            );
        }
    }

    #[test]
    fn every_layer_assigned_exactly_once() {
        let cfg = zoo::gpt_5_3b();
        for goal in [PartitionGoal::Computation, PartitionGoal::Memory] {
            let p = StagePartition::balanced(&cfg, 8, 2, &PrecisionPolicy::mixed(), goal);
            assert_eq!(p.num_layers(), cfg.num_layers());
            for l in 0..cfg.num_layers() {
                let s = p.stage_of_layer(l);
                assert!(p.stage_layers(s).contains(&l));
            }
        }
    }

    #[test]
    fn single_stage_partition_holds_everything() {
        let cfg = zoo::bert_0_35b();
        let p = StagePartition::balanced(
            &cfg,
            1,
            12,
            &PrecisionPolicy::full(),
            PartitionGoal::Computation,
        );
        assert_eq!(p.stage_layers(0), 0..cfg.num_layers());
    }

    #[test]
    fn stages_equal_layers_gives_singletons() {
        let cfg = mpress_model::TransformerConfig::builder(mpress_model::ModelFamily::Gpt)
            .layers(8)
            .hidden(256)
            .build();
        let p = StagePartition::balanced(
            &cfg,
            8,
            2,
            &PrecisionPolicy::mixed(),
            PartitionGoal::Computation,
        );
        assert!(p.ranges().iter().all(|r| r.len() == 1));
    }

    #[test]
    fn display_is_readable() {
        let p = StagePartition::from_ranges(vec![0..3, 3..6]);
        assert_eq!(p.to_string(), "[0..3 | 3..6]");
    }
}

//! A configured inter-operator parallel training job.

use crate::memory::MemoryDemands;
use crate::partition::{PartitionGoal, StagePartition};
use crate::schedule::{ScheduleKind, StageProgram};
use mpress_hw::{BandwidthCurve, Machine, Secs};
use mpress_model::{flops, PrecisionPolicy, TransformerConfig};
use std::error::Error;
use std::fmt;

/// Errors raised while configuring a [`PipelineJob`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// No model was supplied to the builder.
    MissingModel,
    /// More stages than layers were requested.
    TooManyStages {
        /// Requested stage count.
        stages: usize,
        /// Available layer count.
        layers: usize,
    },
    /// Microbatch size or count was zero.
    ZeroMicrobatches,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::MissingModel => write!(f, "pipeline job needs a model"),
            PipelineError::TooManyStages { stages, layers } => {
                write!(f, "cannot split {layers} layers into {stages} stages")
            }
            PipelineError::ZeroMicrobatches => {
                write!(f, "microbatch size and count must be positive")
            }
        }
    }
}

impl Error for PipelineError {}

/// A fully configured inter-operator parallel training job: model,
/// machine, schedule, partition and batch geometry.
///
/// This is the object MPress's profiler, planner and simulator all consume.
#[derive(Debug, Clone)]
pub struct PipelineJob {
    model: TransformerConfig,
    machine: Machine,
    schedule: ScheduleKind,
    partition: StagePartition,
    microbatch_size: usize,
    microbatches: usize,
    precision: PrecisionPolicy,
}

impl PipelineJob {
    /// Starts configuring a job.
    pub fn builder() -> PipelineJobBuilder {
        PipelineJobBuilder::default()
    }

    /// The trained model.
    pub fn model(&self) -> &TransformerConfig {
        &self.model
    }

    /// The host machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The inter-minibatch schedule.
    pub fn schedule(&self) -> ScheduleKind {
        self.schedule
    }

    /// The stage partition.
    pub fn partition(&self) -> &StagePartition {
        &self.partition
    }

    /// Samples per microbatch.
    pub fn microbatch_size(&self) -> usize {
        self.microbatch_size
    }

    /// Microbatches per simulated window (DAPPLE: per minibatch).
    pub fn microbatches(&self) -> usize {
        self.microbatches
    }

    /// The precision policy.
    pub fn precision(&self) -> &PrecisionPolicy {
        &self.precision
    }

    /// Number of pipeline stages (== GPUs used).
    pub fn n_stages(&self) -> usize {
        self.partition.n_stages()
    }

    /// Forward time of one transformer layer for one microbatch.
    pub fn layer_forward_time(&self) -> Secs {
        let f = flops::layer_forward_flops(&self.model, self.microbatch_size);
        self.machine
            .gpu()
            .compute_time(f, self.precision.compute_fp16())
    }

    /// Forward time of the output head (runs on the last stage).
    pub fn head_forward_time(&self) -> Secs {
        let f = flops::head_forward_flops(&self.model, self.microbatch_size);
        self.machine
            .gpu()
            .compute_time(f, self.precision.compute_fp16())
    }

    /// Forward time of one whole stage for one microbatch.
    pub fn stage_forward_time(&self, stage: usize) -> Secs {
        let n = self.partition.stage_layers(stage).len() as f64;
        let mut t = n * self.layer_forward_time();
        if stage == self.n_stages() - 1 {
            t += self.head_forward_time();
        }
        t
    }

    /// Backward time of one whole stage (paper convention: 2x forward).
    pub fn stage_backward_time(&self, stage: usize) -> Secs {
        2.0 * self.stage_forward_time(stage)
    }

    /// Optimizer-step time of one stage (DAPPLE; ~10 FLOPs/param of
    /// FP32 vector work).
    pub fn optimizer_time(&self, stage: usize) -> Secs {
        let mut params =
            self.model.layer_params() * self.partition.stage_layers(stage).len() as u64;
        if stage == 0 {
            params += self.model.embedding_params();
        }
        let flops = params as f64 * 10.0;
        flops / (self.machine.gpu().peak_flops_fp32 * self.machine.gpu().efficiency_fp32)
    }

    /// Time to ship one boundary activation between adjacent stages
    /// (over a single NVLink lane, the common case after device mapping).
    pub fn boundary_comm_time(&self) -> Secs {
        let bytes = self
            .model
            .boundary_activation_bytes(self.microbatch_size, &self.precision);
        BandwidthCurve::nvlink_lanes(1).transfer_time(bytes)
    }

    /// Analytic per-stage memory demands (Table II / Fig. 2).
    pub fn memory_demands(&self) -> MemoryDemands {
        MemoryDemands::compute(
            &self.model,
            &self.partition,
            self.schedule,
            self.microbatch_size,
            self.microbatches,
            &self.precision,
        )
    }

    /// The 1F1B slot order of every stage.
    pub fn programs(&self) -> Vec<StageProgram> {
        (0..self.n_stages())
            .map(|i| {
                StageProgram::one_f_one_b(self.schedule, i, self.n_stages(), self.microbatches)
            })
            .collect()
    }

    /// Total model FLOPs executed in the simulated window — the numerator
    /// of the achieved-TFLOPS metric of Figs. 7 and 8.
    pub fn window_flops(&self) -> f64 {
        flops::model_flops_per_microbatch(&self.model, self.microbatch_size)
            * self.microbatches as f64
    }

    /// Samples processed in the simulated window.
    pub fn window_samples(&self) -> usize {
        self.microbatch_size * self.microbatches
    }
}

/// Builder for [`PipelineJob`].
#[derive(Debug, Clone, Default)]
pub struct PipelineJobBuilder {
    model: Option<TransformerConfig>,
    machine: Option<Machine>,
    schedule: Option<ScheduleKind>,
    partition: Option<StagePartition>,
    partition_goal: Option<PartitionGoal>,
    n_stages: Option<usize>,
    microbatch_size: Option<usize>,
    microbatches: Option<usize>,
    precision: Option<PrecisionPolicy>,
}

impl PipelineJobBuilder {
    /// Sets the model (required).
    pub fn model(mut self, model: TransformerConfig) -> Self {
        self.model = Some(model);
        self
    }

    /// Sets the machine (default: DGX-1).
    pub fn machine(mut self, machine: Machine) -> Self {
        self.machine = Some(machine);
        self
    }

    /// Sets the schedule (default: DAPPLE).
    pub fn schedule(mut self, schedule: ScheduleKind) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Supplies an explicit partition (otherwise one is computed).
    pub fn partition(mut self, partition: StagePartition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Sets the partitioner goal (default: computation-balanced).
    pub fn partition_goal(mut self, goal: PartitionGoal) -> Self {
        self.partition_goal = Some(goal);
        self
    }

    /// Overrides the stage count (default: the machine's GPU count).
    pub fn stages(mut self, n: usize) -> Self {
        self.n_stages = Some(n);
        self
    }

    /// Sets samples per microbatch (default: 2).
    pub fn microbatch_size(mut self, b: usize) -> Self {
        self.microbatch_size = Some(b);
        self
    }

    /// Sets microbatches per window/minibatch (default: 2x stages).
    pub fn microbatches(mut self, m: usize) -> Self {
        self.microbatches = Some(m);
        self
    }

    /// Sets the precision policy (default: mixed).
    pub fn precision(mut self, p: PrecisionPolicy) -> Self {
        self.precision = Some(p);
        self
    }

    /// Validates and builds the job.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] when the model is missing, the stage count
    /// exceeds the layer count, or batch geometry is zero.
    pub fn build(self) -> Result<PipelineJob, PipelineError> {
        let model = self.model.ok_or(PipelineError::MissingModel)?;
        let machine = self.machine.unwrap_or_else(Machine::dgx1);
        let schedule = self.schedule.unwrap_or(ScheduleKind::Dapple);
        let precision = self.precision.unwrap_or_default();
        let microbatch_size = self.microbatch_size.unwrap_or(2);
        let n_stages = self.n_stages.unwrap_or_else(|| machine.gpu_count());
        let microbatches = self.microbatches.unwrap_or(2 * n_stages);
        if microbatch_size == 0 || microbatches == 0 {
            return Err(PipelineError::ZeroMicrobatches);
        }
        if n_stages > model.num_layers() {
            return Err(PipelineError::TooManyStages {
                stages: n_stages,
                layers: model.num_layers(),
            });
        }
        let partition = match self.partition {
            Some(p) => p,
            None => StagePartition::balanced(
                &model,
                n_stages,
                microbatch_size,
                &precision,
                self.partition_goal.unwrap_or(PartitionGoal::Computation),
            ),
        };
        Ok(PipelineJob {
            model,
            machine,
            schedule,
            partition,
            microbatch_size,
            microbatches,
            precision,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpress_model::zoo;

    fn job() -> PipelineJob {
        PipelineJob::builder()
            .model(zoo::gpt_5_3b())
            .schedule(ScheduleKind::Dapple)
            .microbatch_size(2)
            .build()
            .unwrap()
    }

    #[test]
    fn defaults_fill_in() {
        let j = job();
        assert_eq!(j.n_stages(), 8);
        assert_eq!(j.microbatches(), 16);
        assert_eq!(j.machine().gpu_count(), 8);
    }

    #[test]
    fn missing_model_is_an_error() {
        assert_eq!(
            PipelineJob::builder().build().unwrap_err(),
            PipelineError::MissingModel
        );
    }

    #[test]
    fn zero_microbatch_is_an_error() {
        let err = PipelineJob::builder()
            .model(zoo::gpt_5_3b())
            .microbatch_size(0)
            .build()
            .unwrap_err();
        assert_eq!(err, PipelineError::ZeroMicrobatches);
    }

    #[test]
    fn too_many_stages_is_an_error() {
        let err = PipelineJob::builder()
            .model(zoo::gpt_5_3b()) // 30 layers
            .stages(31)
            .build()
            .unwrap_err();
        assert!(matches!(err, PipelineError::TooManyStages { .. }));
    }

    #[test]
    fn last_stage_carries_the_head() {
        let j = job();
        // Same layer count but the head pushes the last stage's time up.
        let per_layer = j.layer_forward_time();
        let last = j.n_stages() - 1;
        let expect = j.partition().stage_layers(last).len() as f64 * per_layer;
        assert!(j.stage_forward_time(last) > expect);
    }

    #[test]
    fn backward_is_twice_forward() {
        let j = job();
        for s in 0..j.n_stages() {
            assert!((j.stage_backward_time(s) - 2.0 * j.stage_forward_time(s)).abs() < 1e-12);
        }
    }

    #[test]
    fn boundary_comm_is_small_relative_to_compute() {
        // Paper §II-A: inter-stage traffic is tiny; comm must be well under
        // a stage's compute time.
        let j = job();
        assert!(j.boundary_comm_time() < j.stage_forward_time(0) / 10.0);
    }

    #[test]
    fn window_accounting() {
        let j = job();
        assert_eq!(j.window_samples(), 2 * 16);
        assert!(j.window_flops() > 0.0);
    }
}

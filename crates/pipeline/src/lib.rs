//! Inter-operator (pipeline) parallel training substrate.
//!
//! The paper integrates MPress into two representative inter-operator
//! systems: **PipeDream** (asynchronous 1F1B with weight stashing) and
//! **DAPPLE** (synchronous early-backward scheduling with a pipeline
//! flush). This crate rebuilds what MPress needs from both:
//!
//! * [`partition`] — splitting a transformer into pipeline stages, either
//!   computation-balanced (the systems' recommendation) or memory-balanced
//!   (the alternative §II-D rejects for its 34% slowdown),
//! * [`schedule`] — per-stage 1F1B op orderings, in-flight activation
//!   counts and weight-version counts (the source of the memory imbalance
//!   in Figs. 1-2),
//! * [`build`] — lowering a (model, partition, schedule) triple into a
//!   [`mpress_graph::TrainingGraph`] with realistic durations, and
//! * [`memory`] — the closed-form per-stage memory demands behind the
//!   paper's Table II and Fig. 2.
//!
//! # Example
//!
//! ```
//! use mpress_pipeline::{PipelineJob, ScheduleKind};
//! use mpress_model::{zoo, PrecisionPolicy};
//! use mpress_hw::Machine;
//!
//! let job = PipelineJob::builder()
//!     .model(zoo::gpt_5_3b())
//!     .machine(Machine::dgx1())
//!     .schedule(ScheduleKind::Dapple)
//!     .microbatch_size(2)
//!     .precision(PrecisionPolicy::mixed())
//!     .build()?;
//! let demands = job.memory_demands();
//! // Early stages accumulate more in-flight activations: memory decreases
//! // monotonically from stage 0 to the last stage.
//! assert!(demands.per_stage_peak[0] > demands.per_stage_peak[7]);
//! # Ok::<(), mpress_pipeline::PipelineError>(())
//! ```

#![forbid(unsafe_code)]

pub mod build;
pub mod job;
pub mod memory;
pub mod partition;
pub mod schedule;
pub mod timeline;

pub use build::LoweredJob;
pub use job::{PipelineError, PipelineJob, PipelineJobBuilder};
pub use memory::{MemoryDemands, StageMemory};
pub use partition::{PartitionGoal, StagePartition};
pub use schedule::{ScheduleKind, StageProgram, StageSlot};

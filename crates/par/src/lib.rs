//! Deterministic std-only parallel execution layer.
//!
//! MPress's planner is an emulator-in-the-loop search and the paper's
//! evaluation is a large (model × machine × system) grid — both are
//! embarrassingly parallel across candidates/cells. This crate provides
//! the one primitive both need: [`par_map`], a work-stealing-free
//! fan-out over `std::thread::scope` that returns results **in input
//! order**, so callers' tie-breaks and table layouts never depend on
//! thread timing.
//!
//! # Determinism contract
//!
//! * Results are placed by input index; the output `Vec` is identical
//!   to what the serial loop would produce (worker panics propagate).
//! * The worker count changes only *when* work runs, never *what* is
//!   returned: `jobs=1` and `jobs=N` are byte-identical as long as the
//!   mapped closure is a pure function of its input.
//!
//! # Choosing the worker count
//!
//! Resolution order: [`set_jobs`] override (used by `--jobs`), the
//! `MPRESS_JOBS` environment variable, then
//! `std::thread::available_parallelism()`.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Process-wide override installed by `--jobs` (0 = no override).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cumulative tasks executed through the pool (serial path included).
static TASKS_RUN: AtomicU64 = AtomicU64::new(0);

/// High-water mark of concurrently busy workers.
static PEAK_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Currently busy workers (transient; feeds the peak).
static BUSY_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Snapshot of pool activity counters, for Insights/report output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed through `par_map`/`par_run` since the last reset.
    pub tasks: u64,
    /// Peak number of workers observed busy at the same instant.
    pub peak_workers: usize,
}

/// Current cumulative pool statistics.
pub fn stats() -> PoolStats {
    PoolStats {
        tasks: TASKS_RUN.load(Ordering::Relaxed),
        peak_workers: PEAK_WORKERS.load(Ordering::Relaxed),
    }
}

/// Resets the cumulative pool statistics (used by benches between runs).
pub fn reset_stats() {
    TASKS_RUN.store(0, Ordering::Relaxed);
    PEAK_WORKERS.store(0, Ordering::Relaxed);
}

/// Installs a process-wide worker-count override; `0` clears it and
/// returns resolution to `MPRESS_JOBS` / detected parallelism.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count parallel sections will use.
pub fn jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(var) = std::env::var("MPRESS_JOBS") {
        if let Ok(n) = var.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Batches below this size always run inline: the planner's refinement
/// rounds emit 1-2 candidates each, and spawning scoped threads for
/// them costs more than the emulations themselves (the jobs=8 plan
/// wall measurably exceeded jobs=1 before this cutoff).
const SERIAL_CUTOFF: usize = 3;

/// Runs `f(0..n)` across the pool and returns the results in index
/// order. Serial when `jobs() == 1` or `n < SERIAL_CUTOFF`; panics in
/// `f` propagate to the caller either way.
pub fn par_run<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    TASKS_RUN.fetch_add(n as u64, Ordering::Relaxed);
    let workers = if n < SERIAL_CUTOFF {
        1
    } else {
        // Oversubscribing CPU-bound pure tasks past the hardware thread
        // count only adds spawn and context-switch cost, so a `--jobs`
        // request wider than the machine is clamped (results are
        // identical at any width; only the wall clock moves).
        let hw = std::thread::available_parallelism().map_or(usize::MAX, |n| n.get());
        jobs().min(hw).min(n).max(1)
    };
    if workers == 1 {
        PEAK_WORKERS.fetch_max(1, Ordering::Relaxed);
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let busy = BUSY_WORKERS.fetch_add(1, Ordering::Relaxed) + 1;
                        PEAK_WORKERS.fetch_max(busy, Ordering::Relaxed);
                        produced.push((i, f(i)));
                        BUSY_WORKERS.fetch_sub(1, Ordering::Relaxed);
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            // Re-raise worker panics on the calling thread.
            for (i, r) in handle.join().expect("pool worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced exactly once"))
        .collect()
}

/// Maps `f` over `items` in parallel, preserving input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_run(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        set_jobs(4);
        let out = par_map(&(0..100).collect::<Vec<_>>(), |&x| x * 3);
        set_jobs(0);
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..64).collect();
        set_jobs(1);
        let serial = par_map(&items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(7));
        set_jobs(4);
        let parallel = par_map(&items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(7));
        set_jobs(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn tiny_batches_run_inline() {
        // Below the cutoff no worker threads spawn regardless of the
        // configured pool width — every task runs on the caller.
        set_jobs(8);
        let caller = std::thread::current().id();
        let ids = par_run(SERIAL_CUTOFF - 1, |_| std::thread::current().id());
        set_jobs(0);
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn stats_track_tasks() {
        reset_stats();
        set_jobs(2);
        let _ = par_run(10, |i| i);
        set_jobs(0);
        let s = stats();
        assert_eq!(s.tasks, 10);
        assert!(s.peak_workers >= 1);
    }
}

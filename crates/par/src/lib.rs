//! Deterministic std-only parallel execution layer.
//!
//! MPress's planner is an emulator-in-the-loop search and the paper's
//! evaluation is a large (model × machine × system) grid — both are
//! embarrassingly parallel across candidates/cells. This crate provides
//! two primitives:
//!
//! * [`par_map`]/[`par_run`] — a fan-out over `std::thread::scope` with
//!   per-worker index deques and work stealing that returns results
//!   **in input order**, so callers' tie-breaks and table layouts never
//!   depend on thread timing.
//! * [`Pool`] — a persistent scoped worker pool for search loops: the
//!   caller keeps pushing `u64` task digests into per-worker deques
//!   while workers drain them (stealing from each other when their own
//!   deque runs dry) and park on an epoch condvar between bursts. One
//!   `Pool::scope` spans an entire search, so refinement no longer pays
//!   a thread spawn per candidate round.
//!
//! # Determinism contract
//!
//! * `par_run` results are placed by input index; the output `Vec` is
//!   identical to what the serial loop would produce (worker panics
//!   propagate).
//! * The worker count changes only *when* work runs, never *what* is
//!   returned: `jobs=1` and `jobs=N` are byte-identical as long as the
//!   mapped closure is a pure function of its input.
//! * A [`Pool`] carries opaque task digests, not results — the *caller*
//!   decides what each completion means, which is how the planner keeps
//!   its frontier adjudication order independent of completion order.
//!
//! # Choosing the worker count
//!
//! Resolution order: [`set_jobs`] override (used by `--jobs`), the
//! `MPRESS_JOBS` environment variable, then
//! `std::thread::available_parallelism()`. Requests wider than the
//! machine are clamped unless [`set_pool_unclamped`] (or
//! `MPRESS_POOL_UNCLAMPED=1`) allows oversubscription — benches use
//! that to exercise stealing on small containers.
//!
//! Batches smaller than the serial cutoff run inline on the caller; the
//! cutoff defaults to 3 and is overridable via `MPRESS_SERIAL_CUTOFF`
//! (`0` = always parallel), next to `MPRESS_JOBS` in spirit: both are
//! wall-clock-only knobs that can never change a result.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Process-wide override installed by `--jobs` (0 = no override).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide serial-cutoff override (`usize::MAX` = no override).
static CUTOFF_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Cumulative tasks executed through the pool (serial path included).
static TASKS_RUN: AtomicU64 = AtomicU64::new(0);

/// Busy/peak worker accounting packed into **one** atomic word: the low
/// 32 bits count currently busy workers, the high 32 bits the peak. A
/// single compare-exchange updates both together, so the peak can never
/// under-report — the old split `BUSY_WORKERS`/`PEAK_WORKERS` pair had
/// a window between the busy increment and the peak `fetch_max` where
/// a concurrent decrement could hide the true high-water mark.
static ACTIVE: AtomicU64 = AtomicU64::new(0);

/// Cumulative deque steals (tasks taken from another lane's deque).
static STEALS: AtomicU64 = AtomicU64::new(0);

/// Allows worker counts wider than the detected hardware parallelism.
static UNCLAMPED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// The pool lane this thread runs as (0 = the scope's caller), or
    /// `None` outside any parallel section. Consumers (the simulator's
    /// arena pool) use it to give each lane a warm arena.
    static LANE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set on pool worker threads so nested parallel sections run
    /// serially instead of multiplying the thread count.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
    /// Nesting depth of busy sections on this thread. Only the
    /// outermost enter/exit touches [`ACTIVE`], so a serial parallel
    /// section running inside another (a portfolio variant's whole
    /// planner search under the portfolio `par_map`, say) still counts
    /// as the single OS thread it is — `peak_workers` reports peak
    /// *concurrency*, not peak section depth.
    static BUSY_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Mutex lock that treats poisoning as the fatal caller panic it
/// reflects (workers run caller closures; their panics propagate).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().expect("mpress-par lock poisoned")
}

fn busy_enter() {
    let depth = BUSY_DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    if depth > 0 {
        return; // re-entrant on this thread; already counted
    }
    let mut cur = ACTIVE.load(Ordering::Relaxed);
    loop {
        let busy = (cur & 0xffff_ffff) + 1;
        let peak = (cur >> 32).max(busy);
        match ACTIVE.compare_exchange_weak(
            cur,
            (peak << 32) | busy,
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

fn busy_exit() {
    let depth = BUSY_DEPTH.with(|d| {
        let v = d.get() - 1;
        d.set(v);
        v
    });
    if depth > 0 {
        return; // inner section; the outermost exit decrements
    }
    // The low 32 bits are >= 1 whenever a matching `busy_enter` is
    // outstanding, so the subtraction never borrows into the peak half.
    ACTIVE.fetch_sub(1, Ordering::AcqRel);
}

/// Snapshot of pool activity counters, for Insights/report output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed through `par_map`/`par_run` since the last reset.
    pub tasks: u64,
    /// Peak number of workers observed busy at the same instant.
    pub peak_workers: usize,
    /// Tasks taken from another lane's deque (work stealing), across
    /// `par_run` and [`Pool`] scopes since the last reset.
    pub steals: u64,
}

/// Current cumulative pool statistics.
pub fn stats() -> PoolStats {
    let packed = ACTIVE.load(Ordering::Relaxed);
    PoolStats {
        tasks: TASKS_RUN.load(Ordering::Relaxed),
        peak_workers: (packed >> 32) as usize,
        steals: STEALS.load(Ordering::Relaxed),
    }
}

/// Resets the cumulative pool statistics (used by benches between
/// runs). Must not race with live parallel sections — the busy half of
/// the packed counter is cleared too.
pub fn reset_stats() {
    TASKS_RUN.store(0, Ordering::Relaxed);
    ACTIVE.store(0, Ordering::Relaxed);
    STEALS.store(0, Ordering::Relaxed);
}

/// Installs a process-wide worker-count override; `0` clears it and
/// returns resolution to `MPRESS_JOBS` / detected parallelism.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count parallel sections will use.
pub fn jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(var) = std::env::var("MPRESS_JOBS") {
        if let Ok(n) = var.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Installs a process-wide serial-cutoff override (see
/// [`serial_cutoff`]); `usize::MAX` clears it.
pub fn set_serial_cutoff(n: usize) {
    CUTOFF_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Batches below this size always run inline: the planner's feasibility
/// iterations emit 1-2 candidates each, and spawning scoped threads for
/// them costs more than the emulations themselves (the jobs=8 plan
/// wall measurably exceeded jobs=1 before this cutoff). Overridable via
/// [`set_serial_cutoff`] or `MPRESS_SERIAL_CUTOFF` (`0` = always
/// parallel — the scaling bench forces pool engagement on small grids
/// this way). Like `MPRESS_JOBS`, the cutoff moves only wall-clock,
/// never a result.
pub fn serial_cutoff() -> usize {
    let explicit = CUTOFF_OVERRIDE.load(Ordering::Relaxed);
    if explicit != usize::MAX {
        return explicit;
    }
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    ENV.get_or_init(|| {
        std::env::var("MPRESS_SERIAL_CUTOFF")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
    })
    .unwrap_or(3)
}

/// Allows (`true`) or re-forbids (`false`) worker counts wider than the
/// detected hardware parallelism. Oversubscribing CPU-bound pure tasks
/// normally only adds spawn and context-switch cost, so the clamp is
/// the default; the scaling bench and stress tests lift it to exercise
/// real multi-worker interleavings (stealing, speculative completion
/// order) on small containers. `MPRESS_POOL_UNCLAMPED=1` is the env
/// equivalent. Results are identical at any width; only wall-clock and
/// the steal/peak counters move.
pub fn set_pool_unclamped(on: bool) {
    UNCLAMPED.store(on, Ordering::Relaxed);
}

fn unclamped() -> bool {
    if UNCLAMPED.load(Ordering::Relaxed) {
        return true;
    }
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        matches!(
            std::env::var("MPRESS_POOL_UNCLAMPED").as_deref(),
            Ok("1") | Ok("true") | Ok("on")
        )
    })
}

/// The width a new parallel section resolves to *right now*: [`jobs`],
/// clamped to the hardware thread count unless [`set_pool_unclamped`],
/// and forced to 1 on pool worker threads so nested sections never
/// multiply the thread count (a portfolio variant planned inside a
/// `par_map` worker searches serially).
pub fn pool_width() -> usize {
    if IN_POOL.with(Cell::get) {
        return 1;
    }
    let requested = jobs().max(1);
    if unclamped() {
        return requested;
    }
    let hw = std::thread::available_parallelism().map_or(usize::MAX, |n| n.get());
    requested.min(hw).max(1)
}

/// The pool lane the current thread runs as: `Some(0)` on a
/// [`Pool::scope`] caller, `Some(1..)` on worker threads, `None`
/// outside any parallel section. Lane identity is stable for the whole
/// scope, so per-lane caches (the simulator's warm arenas) stay warm
/// across tasks.
pub fn current_lane() -> Option<usize> {
    LANE.with(Cell::get)
}

fn with_lane<R>(lane: usize, f: impl FnOnce() -> R) -> R {
    let prev = LANE.with(|l| l.replace(Some(lane)));
    busy_enter();
    let out = f();
    busy_exit();
    LANE.with(|l| l.set(prev));
    out
}

/// Runs `f(0..n)` across the pool and returns the results in index
/// order. Serial when the resolved width is 1 or `n` is below the
/// serial cutoff; panics in `f` propagate to the caller either way.
///
/// Indices are dealt round-robin into per-worker deques; a worker that
/// drains its own deque steals from the back of its neighbors', so an
/// uneven batch (one slow emulation among cheap ones) no longer idles
/// the rest of the pool.
pub fn par_run<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    TASKS_RUN.fetch_add(n as u64, Ordering::Relaxed);
    let workers = if n < serial_cutoff() {
        1
    } else {
        pool_width().min(n).max(1)
    };
    if workers == 1 {
        busy_enter();
        let out = (0..n).map(f).collect();
        busy_exit();
        return out;
    }

    // Deal indices round-robin: deque `w` holds `w, w+workers, ...` in
    // ascending order; owners pop the front, thieves the back.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let deques = &deques;
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    IN_POOL.with(|p| p.set(true));
                    LANE.with(|l| l.set(Some(w + 1)));
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let task = lock(&deques[w]).pop_front().or_else(|| {
                            (1..workers).find_map(|k| {
                                let stolen = lock(&deques[(w + k) % workers]).pop_back();
                                if stolen.is_some() {
                                    STEALS.fetch_add(1, Ordering::Relaxed);
                                }
                                stolen
                            })
                        });
                        let Some(i) = task else { break };
                        busy_enter();
                        produced.push((i, f(i)));
                        busy_exit();
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            // Re-raise worker panics on the calling thread.
            for (i, r) in handle.join().expect("pool worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced exactly once"))
        .collect()
}

/// Maps `f` over `items` in parallel, preserving input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_run(items.len(), |i| f(&items[i]))
}

/// A persistent scoped worker pool carrying opaque `u64` task digests.
///
/// Built for search loops where the task set is *discovered during* the
/// scope: the caller (lane 0) pushes digests as the frontier unfolds,
/// workers (lanes `1..width`) drain them — own deque front first, then
/// stealing from the back of other lanes — and everyone parks on an
/// epoch condvar when idle. Because tasks are data rather than
/// closures, the worker body is a single caller-supplied closure that
/// borrows state declared *before* [`Pool::scope`], which keeps the
/// whole crate `forbid(unsafe_code)`-clean.
///
/// The pool makes no ordering promises about *completion*; callers that
/// need determinism adjudicate results in an order of their own (the
/// planner uses its frontier order). See DESIGN.md §13.
pub struct Pool {
    width: usize,
    deques: Vec<Mutex<VecDeque<u64>>>,
    rr: AtomicUsize,
    epoch: Mutex<u64>,
    cv: Condvar,
    shutdown: AtomicBool,
    steals: AtomicU64,
}

impl Pool {
    /// Runs `lead` on the calling thread (lane 0) with `width - 1`
    /// worker threads (lanes `1..width`) executing `worker(pool, lane)`
    /// alongside it. When `lead` returns, the pool flags shutdown and
    /// wakes every parked worker; `worker` bodies are expected to exit
    /// their loop once [`Pool::shutdown_requested`] turns true and
    /// [`Pool::next_task`] runs dry. Worker panics propagate when the
    /// scope joins. `width <= 1` runs `lead` inline with no threads.
    pub fn scope<R, W, L>(width: usize, worker: W, lead: L) -> R
    where
        W: Fn(&Pool, usize) + Sync,
        L: FnOnce(&Pool) -> R,
    {
        let width = width.max(1);
        let pool = Pool {
            width,
            deques: (0..width).map(|_| Mutex::new(VecDeque::new())).collect(),
            rr: AtomicUsize::new(0),
            epoch: Mutex::new(0),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
        };
        if width == 1 {
            pool.shutdown.store(true, Ordering::Relaxed);
            return with_lane(0, || lead(&pool));
        }
        std::thread::scope(|scope| {
            let pool = &pool;
            let worker = &worker;
            for lane in 1..width {
                scope.spawn(move || {
                    IN_POOL.with(|p| p.set(true));
                    LANE.with(|l| l.set(Some(lane)));
                    busy_enter();
                    worker(pool, lane);
                    busy_exit();
                });
            }
            let out = with_lane(0, || lead(pool));
            pool.finish();
            out
        })
    }

    /// The scope's total lane count (lead included).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Enqueues one task digest (round-robin across lanes) and wakes
    /// parked lanes.
    pub fn push(&self, task: u64) {
        let lane = self.rr.fetch_add(1, Ordering::Relaxed) % self.width;
        lock(&self.deques[lane]).push_back(task);
        self.notify();
    }

    /// Pops the next task for `lane`: its own deque's front first, then
    /// the back of the other lanes' deques (a steal, counted). `None`
    /// means every deque is empty *at this instant* — park with
    /// [`Pool::wait_epoch`] or exit if [`Pool::shutdown_requested`].
    pub fn next_task(&self, lane: usize) -> Option<u64> {
        if let Some(task) = lock(&self.deques[lane]).pop_front() {
            return Some(task);
        }
        (1..self.width).find_map(|k| {
            let stolen = lock(&self.deques[(lane + k) % self.width]).pop_back();
            if stolen.is_some() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                STEALS.fetch_add(1, Ordering::Relaxed);
            }
            stolen
        })
    }

    /// The current wake epoch. Snapshot it *before* checking for work:
    /// `wait_epoch` returns immediately if any notification landed
    /// after the snapshot, so the check-then-park pattern never misses
    /// a wakeup.
    pub fn epoch(&self) -> u64 {
        *lock(&self.epoch)
    }

    /// Parks until the epoch advances past `seen` or shutdown is
    /// flagged. The parked lane is not counted busy, so `peak_workers`
    /// reflects genuinely concurrent work.
    pub fn wait_epoch(&self, seen: u64) {
        busy_exit();
        let mut epoch = lock(&self.epoch);
        while *epoch == seen && !self.shutdown.load(Ordering::Relaxed) {
            epoch = self.cv.wait(epoch).expect("mpress-par lock poisoned");
        }
        drop(epoch);
        busy_enter();
    }

    /// Advances the epoch and wakes every parked lane. Called by `push`
    /// automatically; call it directly after publishing results some
    /// other lane may be waiting on.
    pub fn notify(&self) {
        *lock(&self.epoch) += 1;
        self.cv.notify_all();
    }

    /// True once the lead closure has returned (or `width == 1`).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Tasks this pool's lanes stole from each other's deques.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    fn finish(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.notify();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests below mutate process-global knobs (`set_jobs`, the stats
    /// counters, the clamp); serialize them so `cargo test`'s parallel
    /// harness cannot interleave their windows.
    fn guard() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        lock(&GUARD)
    }

    #[test]
    fn results_come_back_in_input_order() {
        let _g = guard();
        set_jobs(4);
        let out = par_map(&(0..100).collect::<Vec<_>>(), |&x| x * 3);
        set_jobs(0);
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let _g = guard();
        let items: Vec<u64> = (0..64).collect();
        set_jobs(1);
        let serial = par_map(&items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(7));
        set_jobs(4);
        let parallel = par_map(&items, |&x| x.wrapping_mul(0x9E3779B9).rotate_left(7));
        set_jobs(0);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn tiny_batches_run_inline() {
        let _g = guard();
        // Below the cutoff no worker threads spawn regardless of the
        // configured pool width — every task runs on the caller.
        set_jobs(8);
        let caller = std::thread::current().id();
        let ids = par_run(serial_cutoff() - 1, |_| std::thread::current().id());
        set_jobs(0);
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn zero_cutoff_forces_worker_threads() {
        let _g = guard();
        // MPRESS_SERIAL_CUTOFF=0 semantics: even a 2-task batch runs on
        // spawned workers (the scaling bench forces pool engagement on
        // small grids this way). Unclamp so a 1-core container still
        // spawns the requested width.
        set_serial_cutoff(0);
        set_jobs(2);
        set_pool_unclamped(true);
        let caller = std::thread::current().id();
        let ids = par_run(2, |_| std::thread::current().id());
        set_pool_unclamped(false);
        set_jobs(0);
        set_serial_cutoff(usize::MAX);
        assert!(ids.iter().all(|&id| id != caller));
    }

    #[test]
    fn stats_track_tasks() {
        let _g = guard();
        reset_stats();
        set_jobs(2);
        let _ = par_run(10, |i| i);
        set_jobs(0);
        let s = stats();
        assert_eq!(s.tasks, 10);
        assert!(s.peak_workers >= 1);
    }

    #[test]
    fn peak_tracks_provably_concurrent_workers_exactly() {
        let _g = guard();
        // Stress the packed busy/peak word: four workers rendezvous on a
        // barrier *inside* their tasks, so all four are provably busy at
        // the same instant and the peak must report exactly 4 — the old
        // split-atomic scheme could under-report under contention.
        const WIDTH: usize = 4;
        reset_stats();
        set_jobs(WIDTH);
        set_pool_unclamped(true);
        let barrier = std::sync::Barrier::new(WIDTH);
        let _ = par_run(WIDTH, |_| {
            barrier.wait();
        });
        set_pool_unclamped(false);
        set_jobs(0);
        assert_eq!(stats().peak_workers, WIDTH);
    }

    #[test]
    fn pool_workers_steal_from_idle_lanes() {
        let _g = guard();
        reset_stats();
        let done = AtomicUsize::new(0);
        Pool::scope(
            2,
            |pool, lane| loop {
                let epoch = pool.epoch();
                match pool.next_task(lane) {
                    Some(_) => {
                        done.fetch_add(1, Ordering::Relaxed);
                        pool.notify();
                    }
                    None if pool.shutdown_requested() => break,
                    None => pool.wait_epoch(epoch),
                }
            },
            |pool| {
                for task in 0..100u64 {
                    pool.push(task);
                }
                // The lead never drains its own deque, so the single
                // worker must steal every task dealt to lane 0.
                let mut epoch = pool.epoch();
                while done.load(Ordering::Relaxed) < 100 {
                    pool.wait_epoch(epoch);
                    epoch = pool.epoch();
                }
                assert_eq!(pool.steals(), 50);
            },
        );
        assert_eq!(done.load(Ordering::Relaxed), 100);
        assert_eq!(stats().steals, 50);
    }

    #[test]
    fn pool_width_one_runs_lead_inline() {
        let _g = guard();
        let out = Pool::scope(
            1,
            |_, _| unreachable!("width 1 spawns no workers"),
            |pool| {
                assert!(pool.shutdown_requested());
                assert_eq!(current_lane(), Some(0));
                7u32
            },
        );
        assert_eq!(out, 7);
        assert_eq!(current_lane(), None);
    }
}

//! The metrics recorder: counters, gauges and fixed-bucket log2
//! duration histograms, snapshotted into a JSON-serializable report.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of fixed histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The power-of-two exponent the first bucket starts at: bucket `i`
/// covers `[2^(i + MIN_EXPONENT), 2^(i + MIN_EXPONENT + 1))` seconds, so
/// bucket 0 starts at ~2.3e-10 s and bucket 63 at ~2.1e9 s — far wider
/// than any simulated window.
pub const MIN_EXPONENT: i32 = -32;

/// A fixed-layout log2 histogram of simulated durations.
///
/// Bucket edges are powers of two computed from the IEEE-754 exponent
/// (exact, no float log), so bucketing is bit-deterministic across runs
/// and worker counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

/// The bucket index a value falls into. Values at or below the first
/// bucket's lower edge (including zero and negatives) clamp to bucket 0;
/// values past the last edge clamp to the final bucket.
pub fn bucket_index(value: f64) -> usize {
    // NaN and anything at or below zero land in bucket 0.
    if value <= 0.0 || value.is_nan() || !value.is_finite() {
        return 0;
    }
    // floor(log2(v)) from the IEEE-754 biased exponent — exact for
    // normal numbers; subnormals are below bucket 0 anyway.
    let biased = ((value.to_bits() >> 52) & 0x7ff) as i32;
    if biased == 0 {
        return 0;
    }
    let exponent = biased - 1023;
    (exponent - MIN_EXPONENT).clamp(0, HISTOGRAM_BUCKETS as i32 - 1) as usize
}

/// The lower edge (inclusive) of bucket `i`, in seconds.
pub fn bucket_lower_edge(i: usize) -> f64 {
    (2.0_f64).powi(i as i32 + MIN_EXPONENT)
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        self.buckets[bucket_index(value)] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Snapshot with only the non-empty buckets materialized.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (i as u32, n))
                .collect(),
        }
    }
}

/// Serializable histogram snapshot. `buckets` holds `(index, count)`
/// pairs for non-empty buckets only; the fixed edge layout is given by
/// [`bucket_lower_edge`]. `min`/`max` are zero when `count` is zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// `(bucket index, count)` for each non-empty bucket, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Collects named counters, gauges and histograms during one run.
///
/// All families are keyed by `&'static`-style dotted names (owned
/// strings, e.g. `"sim.tasks.completed"`); insertion order never
/// matters because storage is sorted by key.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRecorder {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Records one duration observation into a histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The current value of a counter (zero when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Freezes the recorder into a serializable report.
    pub fn snapshot(&self) -> MetricsReport {
        MetricsReport {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Serializable snapshot of one recorder. Keys serialize sorted (the
/// maps are `BTreeMap`s), so two identical runs emit byte-identical
/// JSON.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Monotonic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time values (last write wins).
    pub gauges: BTreeMap<String, f64>,
    /// Duration distributions.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact_powers_of_two() {
        // Exactly at a lower edge lands in that bucket, just below lands
        // in the previous one.
        for i in [0usize, 1, 31, 32, 33, 63] {
            let edge = bucket_lower_edge(i);
            assert_eq!(bucket_index(edge), i, "edge of bucket {i}");
        }
        // 1.0 s = 2^0 sits exactly at the lower edge of bucket 32.
        assert_eq!(bucket_index(1.0), 32);
        assert_eq!(bucket_index(0.999_999), 31);
        assert_eq!(bucket_index(2.0), 33);
        assert_eq!(bucket_index(1.5), 32);
    }

    #[test]
    fn bucket_index_clamps_degenerate_values() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), 0);
        assert_eq!(bucket_index(1e300), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(1e-300), 0);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut h = Histogram::default();
        h.observe(0.5);
        h.observe(2.0);
        h.observe(0.25);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert!((s.sum - 2.75).abs() < 1e-12);
        assert_eq!(s.min, 0.25);
        assert_eq!(s.max, 2.0);
        assert!((s.mean() - 2.75 / 3.0).abs() < 1e-12);
        // 0.25 -> bucket 30, 0.5 -> 31, 2.0 -> 33.
        assert_eq!(s.buckets, vec![(30, 1), (31, 1), (33, 1)]);
    }

    #[test]
    fn empty_histogram_snapshot_is_finite() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.buckets.is_empty());
        // Serializes without non-finite floats.
        serde_json::to_string(&s).expect("finite JSON");
    }

    #[test]
    fn recorder_snapshot_orders_keys_and_round_trips() {
        let mut r = MetricsRecorder::new();
        r.inc("z.last");
        r.add("a.first", 41);
        r.inc("a.first");
        r.set_gauge("makespan", 1.5);
        r.observe("dur", 0.125);
        assert_eq!(r.counter("a.first"), 42);
        assert_eq!(r.counter("never"), 0);
        let report = r.snapshot();
        let json = serde_json::to_string(&report).expect("serializes");
        // Sorted keys: "a.first" precedes "z.last" in the output text.
        let a = json.find("a.first").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < z, "{json}");
        // JSON round-trips through the parser.
        let v = serde_json::from_str(&json).expect("parses");
        assert_eq!(
            serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap(),
            v
        );
    }
}

//! Consolidated debug-verbosity switches.
//!
//! The engine and planner used to parse the environment independently on
//! every debug site. This module is the single documented entry point:
//! the same variables are honored, read **once** per process, and cached
//! for every later call.

use std::sync::OnceLock;

/// Enables the engine's stall/eviction/deadlock diagnostics on stderr.
pub const ENV_SIM_DEBUG: &str = "MPRESS_SIM_DEBUG";

/// Enables the engine's per-task start event log on stderr.
pub const ENV_SIM_TRACE: &str = "MPRESS_SIM_TRACE";

/// Enables the planner's portfolio scoring log on stderr.
pub const ENV_PLAN_DEBUG: &str = "MPRESS_PLAN_DEBUG";

/// Restricts the [`ENV_SIM_TRACE`] start-event log to a clock window and
/// (optionally) one device: `MPRESS_TRACE_WINDOW=lo..hi[,dev]`, e.g.
/// `6.4..8.4,1`. Unset (or unparsable) means no filter — every start is
/// logged.
pub const ENV_TRACE_WINDOW: &str = "MPRESS_TRACE_WINDOW";

/// Disables the planner's analytic lower-bound pre-filter when set to
/// `0`, `false` or `off` (the escape hatch for A/B-ing the filter; the
/// chosen plan must not change either way).
pub const ENV_PREFILTER: &str = "MPRESS_PREFILTER";

/// Disables the planner's static plan verifier hook when set to `0`,
/// `false` or `off` (A/B escape hatch, like [`ENV_PREFILTER`]; the
/// chosen plan must not change either way — planner-emitted candidates
/// are always structurally valid, so the hook only ever rejects
/// externally-supplied malformed plans).
pub const ENV_VERIFY: &str = "MPRESS_VERIFY";

/// Disables the planner's incremental re-emulation (delta replay
/// against the incumbent's captured run) when set to `0`, `false` or
/// `off`. A/B escape hatch like [`ENV_PREFILTER`]: the delta path is
/// byte-identical to from-scratch emulation, so the chosen plan must
/// not change either way — only wall-clock and the
/// `delta_replays`/`windows_replayed` counters do.
pub const ENV_DELTA: &str = "MPRESS_DELTA";

/// Disables the planner's certified-bounds gate (MP013 pre-emulation
/// rejection + sound incumbent pruning) when set to `0`, `false` or
/// `off`. A/B escape hatch like [`ENV_PREFILTER`]: pruning only drops
/// candidates the metric could never pick, so the chosen plan must not
/// change either way — only the `bounds_pruned`/`bounds_certified_fit`
/// counters and wall-clock do.
pub const ENV_BOUNDS: &str = "MPRESS_BOUNDS";

/// Disables the planner's bound-and-abort emulation (candidates abort
/// the moment their simulated clock proves they lose to the incumbent)
/// when set to `0`, `false` or `off`. A/B escape hatch like
/// [`ENV_PREFILTER`]: an aborted candidate had already lost by
/// `metric_better`'s rules, so the chosen plan must not change either
/// way — only wall-clock and the `bound_aborts` counter do.
pub const ENV_BOUND_ABORT: &str = "MPRESS_BOUND_ABORT";

/// A parsed [`ENV_TRACE_WINDOW`] filter. Kept outside [`Verbosity`]
/// (whose `Eq` derive the `f64` bounds would break) and cached the same
/// way: read once per process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceWindow {
    /// Inclusive lower clock bound (simulated seconds).
    pub lo: f64,
    /// Exclusive upper clock bound.
    pub hi: f64,
    /// Restrict to one device index; `None` logs every device.
    pub device: Option<usize>,
}

impl TraceWindow {
    /// Whether an event at `clock` on `device` passes the filter.
    pub fn contains(&self, clock: f64, device: usize) -> bool {
        clock >= self.lo && clock < self.hi && self.device.is_none_or(|d| d == device)
    }
}

/// Parses a `lo..hi[,dev]` window spec. Returns `None` for malformed or
/// degenerate (`lo >= hi`, non-finite) specs.
pub fn parse_trace_window(spec: &str) -> Option<TraceWindow> {
    let (range, device) = match spec.split_once(',') {
        Some((range, dev)) => (range, Some(dev.trim().parse().ok()?)),
        None => (spec, None),
    };
    let (lo, hi) = range.split_once("..")?;
    let lo: f64 = lo.trim().parse().ok()?;
    let hi: f64 = hi.trim().parse().ok()?;
    (lo.is_finite() && hi.is_finite() && lo < hi).then_some(TraceWindow { lo, hi, device })
}

/// The process's trace-window filter, if [`ENV_TRACE_WINDOW`] is set to
/// a parsable spec. Read once per process, like [`verbosity`].
pub fn trace_window() -> Option<TraceWindow> {
    static WINDOW: OnceLock<Option<TraceWindow>> = OnceLock::new();
    *WINDOW.get_or_init(|| {
        std::env::var(ENV_TRACE_WINDOW)
            .ok()
            .and_then(|spec| parse_trace_window(&spec))
    })
}

/// Which debug channels are enabled for this process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Verbosity {
    /// [`ENV_SIM_DEBUG`] was set.
    pub sim_debug: bool,
    /// [`ENV_SIM_TRACE`] was set.
    pub sim_trace: bool,
    /// [`ENV_PLAN_DEBUG`] was set.
    pub plan_debug: bool,
}

/// The process's debug verbosity. The environment is read on the first
/// call only; changes to the variables after that are ignored (all
/// debug output is opt-in at process launch).
pub fn verbosity() -> Verbosity {
    static VERBOSITY: OnceLock<Verbosity> = OnceLock::new();
    *VERBOSITY.get_or_init(|| Verbosity {
        sim_debug: std::env::var_os(ENV_SIM_DEBUG).is_some(),
        sim_trace: std::env::var_os(ENV_SIM_TRACE).is_some(),
        plan_debug: std::env::var_os(ENV_PLAN_DEBUG).is_some(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_is_cached_and_consistent() {
        // Whatever the environment says, repeated calls agree (the
        // OnceLock makes later env mutations invisible).
        let first = verbosity();
        assert_eq!(first, verbosity());
    }

    #[test]
    fn env_names_are_stable() {
        assert_eq!(ENV_SIM_DEBUG, "MPRESS_SIM_DEBUG");
        assert_eq!(ENV_SIM_TRACE, "MPRESS_SIM_TRACE");
        assert_eq!(ENV_PLAN_DEBUG, "MPRESS_PLAN_DEBUG");
        assert_eq!(ENV_TRACE_WINDOW, "MPRESS_TRACE_WINDOW");
        assert_eq!(ENV_PREFILTER, "MPRESS_PREFILTER");
        assert_eq!(ENV_VERIFY, "MPRESS_VERIFY");
        assert_eq!(ENV_DELTA, "MPRESS_DELTA");
        assert_eq!(ENV_BOUNDS, "MPRESS_BOUNDS");
        assert_eq!(ENV_BOUND_ABORT, "MPRESS_BOUND_ABORT");
    }

    #[test]
    fn trace_window_parses_range_and_device() {
        let w = parse_trace_window("6.4..8.4,1").unwrap();
        assert_eq!(
            w,
            TraceWindow {
                lo: 6.4,
                hi: 8.4,
                device: Some(1)
            }
        );
        assert!(w.contains(6.4, 1));
        assert!(!w.contains(8.4, 1)); // upper bound is exclusive
        assert!(!w.contains(7.0, 0)); // wrong device

        let w = parse_trace_window(" 0 .. 2.5 ").unwrap();
        assert_eq!(w.device, None);
        assert!(w.contains(1.0, 7)); // any device without a filter
    }

    #[test]
    fn trace_window_rejects_malformed_specs() {
        for bad in ["", "1.0", "2..1", "a..b", "1..2,x", "inf..2", "1..nan"] {
            assert_eq!(parse_trace_window(bad), None, "spec {bad:?}");
        }
    }
}

//! Consolidated debug-verbosity switches.
//!
//! The engine and planner used to parse the environment independently on
//! every debug site. This module is the single documented entry point:
//! the same variables are honored, read **once** per process, and cached
//! for every later call.

use std::sync::OnceLock;

/// Enables the engine's stall/eviction/deadlock diagnostics on stderr.
pub const ENV_SIM_DEBUG: &str = "MPRESS_SIM_DEBUG";

/// Enables the engine's per-task start event log on stderr.
pub const ENV_SIM_TRACE: &str = "MPRESS_SIM_TRACE";

/// Enables the planner's portfolio scoring log on stderr.
pub const ENV_PLAN_DEBUG: &str = "MPRESS_PLAN_DEBUG";

/// Which debug channels are enabled for this process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Verbosity {
    /// [`ENV_SIM_DEBUG`] was set.
    pub sim_debug: bool,
    /// [`ENV_SIM_TRACE`] was set.
    pub sim_trace: bool,
    /// [`ENV_PLAN_DEBUG`] was set.
    pub plan_debug: bool,
}

/// The process's debug verbosity. The environment is read on the first
/// call only; changes to the variables after that are ignored (all
/// debug output is opt-in at process launch).
pub fn verbosity() -> Verbosity {
    static VERBOSITY: OnceLock<Verbosity> = OnceLock::new();
    *VERBOSITY.get_or_init(|| Verbosity {
        sim_debug: std::env::var_os(ENV_SIM_DEBUG).is_some(),
        sim_trace: std::env::var_os(ENV_SIM_TRACE).is_some(),
        plan_debug: std::env::var_os(ENV_PLAN_DEBUG).is_some(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_is_cached_and_consistent() {
        // Whatever the environment says, repeated calls agree (the
        // OnceLock makes later env mutations invisible).
        let first = verbosity();
        assert_eq!(first, verbosity());
    }

    #[test]
    fn env_names_are_stable() {
        assert_eq!(ENV_SIM_DEBUG, "MPRESS_SIM_DEBUG");
        assert_eq!(ENV_SIM_TRACE, "MPRESS_SIM_TRACE");
        assert_eq!(ENV_PLAN_DEBUG, "MPRESS_PLAN_DEBUG");
    }
}

//! Stall-attribution taxonomy.
//!
//! Every second of a device's compute stream is either *busy* or
//! attributed to exactly one stall cause, so per-device attributed time
//! plus busy time always sums to the total simulated time. The causes
//! mirror how the engine resolves a compute task's start:
//!
//! * **waiting-on-copy-in** — the last dependency to resolve was a
//!   swap-in copy: compute sat idle while a fetch landed (the exposed
//!   swap cost the paper's overlap machinery exists to hide);
//! * **waiting-on-dependency** — blocked on an op dependency (pipeline
//!   bubbles, cross-stage sends);
//! * **waiting-on-memory** — dependency-ready but gated because the
//!   home-device allocation would not fit (memory back-pressure);
//! * **drained** — no further compute was queued on the device (window
//!   tail after the stage's last op).

use serde::{Deserialize, Serialize};

/// Why a compute stream was idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StallCause {
    /// Gated by the memory fit check while dependency-ready.
    WaitingOnMemory,
    /// The last dependency to resolve was a swap-in copy.
    WaitingOnCopyIn,
    /// Blocked on a non-copy dependency (compute/comm producer).
    WaitingOnDependency,
    /// No compute queued (window drain).
    Drained,
}

impl StallCause {
    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            StallCause::WaitingOnMemory => "waiting-on-memory",
            StallCause::WaitingOnCopyIn => "waiting-on-copy-in",
            StallCause::WaitingOnDependency => "waiting-on-dependency",
            StallCause::Drained => "drained",
        }
    }
}

/// Seconds of compute-stream idle time attributed to each cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StallBreakdown {
    /// Idle while memory-gated.
    pub waiting_on_memory: f64,
    /// Idle behind an unfinished swap-in.
    pub waiting_on_copy_in: f64,
    /// Idle behind a compute/comm dependency.
    pub waiting_on_dependency: f64,
    /// Idle with no compute queued.
    pub drained: f64,
}

impl StallBreakdown {
    /// Total attributed idle time.
    pub fn total(&self) -> f64 {
        self.waiting_on_memory + self.waiting_on_copy_in + self.waiting_on_dependency + self.drained
    }

    /// Adds `secs` to the bucket for `cause`.
    pub fn attribute(&mut self, cause: StallCause, secs: f64) {
        match cause {
            StallCause::WaitingOnMemory => self.waiting_on_memory += secs,
            StallCause::WaitingOnCopyIn => self.waiting_on_copy_in += secs,
            StallCause::WaitingOnDependency => self.waiting_on_dependency += secs,
            StallCause::Drained => self.drained += secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_routes_to_the_right_bucket() {
        let mut b = StallBreakdown::default();
        b.attribute(StallCause::WaitingOnMemory, 1.0);
        b.attribute(StallCause::WaitingOnCopyIn, 2.0);
        b.attribute(StallCause::WaitingOnDependency, 4.0);
        b.attribute(StallCause::Drained, 8.0);
        assert_eq!(b.waiting_on_memory, 1.0);
        assert_eq!(b.waiting_on_copy_in, 2.0);
        assert_eq!(b.waiting_on_dependency, 4.0);
        assert_eq!(b.drained, 8.0);
        assert_eq!(b.total(), 15.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StallCause::WaitingOnMemory.label(), "waiting-on-memory");
        assert_eq!(StallCause::Drained.label(), "drained");
    }
}

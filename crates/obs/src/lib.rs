//! Observability substrate for the MPress reproduction.
//!
//! Every layer of the stack (simulator, planner, CLI, benches) reports
//! through the types in this crate, so one JSON schema answers the
//! questions the paper's evaluation revolves around: where simulated
//! time goes (stall attribution), what the links carried (per-link bytes
//! and occupancy) and what the planner's search cost (emulator runs,
//! cache hits).
//!
//! Three design rules keep the layer compatible with the workspace's
//! determinism contract:
//!
//! * **No clocks.** Histograms and gauges record *simulated* seconds
//!   passed in by the caller; nothing in this crate reads wall time.
//! * **Deterministic iteration.** All metric families live in
//!   `BTreeMap`s keyed by name, so snapshots serialize with sorted,
//!   stable keys.
//! * **Zero cost when disabled.** Recording is only performed by callers
//!   that were explicitly configured to collect metrics; a disabled run
//!   never constructs a recorder.
//!
//! The crate also hosts [`verbosity`], the single documented entry point
//! for the debug environment variables that the engine and planner used
//! to parse independently.

#![forbid(unsafe_code)]

pub mod recorder;
pub mod stall;
pub mod verbosity;

pub use recorder::{Histogram, HistogramSnapshot, MetricsRecorder, MetricsReport};
pub use stall::{StallBreakdown, StallCause};
pub use verbosity::{
    parse_trace_window, trace_window, verbosity, TraceWindow, Verbosity, ENV_BOUNDS,
    ENV_BOUND_ABORT, ENV_DELTA, ENV_PLAN_DEBUG, ENV_PREFILTER, ENV_SIM_DEBUG, ENV_SIM_TRACE,
    ENV_TRACE_WINDOW, ENV_VERIFY,
};

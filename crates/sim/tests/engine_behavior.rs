//! Behavioral tests of the discrete-event engine against lowered pipeline
//! jobs.

use mpress_compaction::{HostTier, InstrumentationPlan, MemoryDirective, StripePlan};
use mpress_graph::TensorKind;
use mpress_hw::{Bytes, DeviceId, GpuSpec, Machine, Topology};
use mpress_model::{ModelFamily, PrecisionPolicy, TransformerConfig};
use mpress_pipeline::{PipelineJob, ScheduleKind};
use mpress_sim::{DeviceMap, SimConfig, Simulator};

fn tiny_model() -> TransformerConfig {
    TransformerConfig::builder(ModelFamily::Gpt)
        .layers(8)
        .hidden(512)
        .seq_len(256)
        .build()
}

fn job(kind: ScheduleKind) -> PipelineJob {
    PipelineJob::builder()
        .model(tiny_model())
        .schedule(kind)
        .stages(4)
        .microbatch_size(2)
        .microbatches(8)
        .precision(PrecisionPolicy::mixed())
        .build()
        .unwrap()
}

fn machine4(gpu_mem: Bytes) -> Machine {
    let lanes = vec![
        vec![0, 2, 1, 1],
        vec![2, 0, 1, 1],
        vec![1, 1, 0, 2],
        vec![1, 1, 2, 0],
    ];
    let topo = Topology::from_lane_matrix(mpress_hw::TopologyKind::Asymmetric, lanes, 6);
    let mut gpu = GpuSpec::v100_32gb();
    gpu.memory = gpu_mem;
    Machine::builder()
        .name("mini4")
        .gpu(gpu)
        .topology(topo)
        .build()
}

#[test]
fn empty_plan_runs_and_orders_ops() {
    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::gib(32));
    let plan = InstrumentationPlan::new();
    let sim = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4));
    let report = sim.run().unwrap();
    assert!(report.succeeded(), "{:?}", report.oom);
    assert!(report.makespan > 0.0);
    // Cross-stage order: forward of stage 1 after forward of stage 0.
    let f0 = lowered.forward_ops[&(0, 0)].index();
    let f1 = lowered.forward_ops[&(1, 0)].index();
    assert!(report.op_start[f1] >= report.op_end[f0] - 1e-12);
    // Backward of stage 0 waits for stage 1's backward completion.
    let b0 = lowered.backward_ops[&(0, 0)].index();
    let b1 = lowered.backward_ops[&(1, 0)].index();
    assert!(report.op_start[b0] >= report.op_end[b1] - 1e-9);
}

#[test]
fn simulation_is_deterministic() {
    let j = job(ScheduleKind::PipeDream);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::gib(32));
    let plan = InstrumentationPlan::new();
    let r1 = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
        .run()
        .unwrap();
    let r2 = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
        .run()
        .unwrap();
    assert_eq!(r1, r2);
}

#[test]
fn peaks_track_analytic_demands() {
    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::gib(32));
    let plan = InstrumentationPlan::new();
    let report = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
        .run()
        .unwrap();
    let demands = j.memory_demands();
    for stage in 0..4 {
        let analytic = demands.per_stage_peak[stage].as_f64();
        let simulated = report.device_peak[stage].as_f64();
        let rel = (simulated - analytic).abs() / analytic;
        assert!(
            rel < 0.25,
            "stage {stage}: sim {simulated:.2e} vs analytic {analytic:.2e}"
        );
    }
    // Imbalance shape: stage 0 peaks strictly above the last stage.
    assert!(report.device_peak[0] > report.device_peak[3]);
}

#[test]
fn oom_detected_on_small_gpu() {
    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::mib(512));
    let plan = InstrumentationPlan::new();
    let report = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
        .run()
        .unwrap();
    assert!(!report.succeeded());
    let oom = report.oom.unwrap();
    assert!(oom.used > oom.capacity);
}

#[test]
fn recompute_cuts_peak_and_slows_training() {
    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::gib(32));

    let baseline = Simulator::new(
        &machine,
        &lowered.graph,
        &InstrumentationPlan::new(),
        DeviceMap::identity(4),
    )
    .run()
    .unwrap();

    // Recompute every layer activation on every stage (the recomputation
    // baseline of Fig. 7) — this slows the bottleneck stage too.
    let plan: InstrumentationPlan = lowered
        .graph
        .tensors()
        .iter()
        .filter(|t| t.kind == TensorKind::Activation && t.layer.is_some())
        .map(|t| (t.id, MemoryDirective::Recompute))
        .collect();
    let recomp = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
        .run()
        .unwrap();
    assert!(recomp.device_peak[0] < baseline.device_peak[0]);
    assert!(recomp.makespan > baseline.makespan);
    assert!(recomp.recompute_time > 0.0);
}

#[test]
fn host_swap_moves_memory_and_counts_traffic() {
    // Swapping one layer's activation class keeps at most ~2 copies
    // transiently resident instead of the full in-flight set, cutting the
    // stage's peak; every instance round-trips over PCIe. The PCIe round
    // trip must be well under the stage cycle for the saving to be real,
    // hence several layers per stage and FP32 compute.
    let j = PipelineJob::builder()
        .model(
            TransformerConfig::builder(ModelFamily::Gpt)
                .layers(16)
                .hidden(1024)
                .seq_len(1024)
                .build(),
        )
        .schedule(ScheduleKind::PipeDream)
        .stages(4)
        .microbatch_size(4)
        .microbatches(12)
        .precision(PrecisionPolicy::full())
        .build()
        .unwrap();
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::gib(32));

    let acts: Vec<_> = lowered
        .graph
        .tensors()
        .iter()
        .filter(|t| t.kind == TensorKind::Activation && t.layer == Some(0))
        .collect();
    assert_eq!(acts.len(), 12, "one instance per microbatch");
    let mut plan = InstrumentationPlan::new();
    for t in &acts {
        plan.assign(t.id, MemoryDirective::SwapToHost(HostTier::Dram));
    }

    let baseline = Simulator::new(
        &machine,
        &lowered.graph,
        &InstrumentationPlan::new(),
        DeviceMap::identity(4),
    )
    .run()
    .unwrap();
    let swapped = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
        .run()
        .unwrap();
    assert!(
        swapped.device_peak[0] < baseline.device_peak[0],
        "swapped {} vs baseline {}",
        swapped.device_peak[0],
        baseline.device_peak[0]
    );
    // Every instance swaps out and back at least once.
    assert!(swapped.host_traffic >= acts[0].bytes * 2 * 12);
    assert!(swapped.host_peak >= acts[0].bytes);
}

#[test]
fn d2d_swap_shifts_bytes_to_peer() {
    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::gib(32));

    // Stripe one early-stage activation to the two cross-pair peers.
    let act = lowered
        .graph
        .tensors()
        .iter()
        .find(|t| t.kind == TensorKind::Activation && t.stage == 0 && t.layer == Some(0))
        .unwrap();
    let stripe = StripePlan::weighted(act.bytes, &[(DeviceId(2), 1), (DeviceId(3), 1)]);
    let mut plan = InstrumentationPlan::new();
    plan.assign(act.id, MemoryDirective::SwapD2d(stripe));

    let report = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
        .run()
        .unwrap();
    assert!(report.succeeded());
    // Round trip = 2x tensor bytes of NVLink traffic.
    assert_eq!(report.d2d_traffic, act.bytes * 2);
}

#[test]
fn d2d_to_unreachable_peer_is_rejected() {
    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    // DGX-1: GPU0 cannot reach GPU5; build an 8-stage job? Our 4-stage mini
    // machine is fully connected, so craft an invalid lane request instead.
    let machine = machine4(Bytes::gib(32));
    let act = lowered
        .graph
        .tensors()
        .iter()
        .find(|t| t.kind == TensorKind::Activation && t.stage == 0)
        .unwrap();
    // Requesting 5 lanes toward a 1-lane neighbour must fail validation.
    let stripe = StripePlan::single(act.bytes, DeviceId(2), 5);
    let mut plan = InstrumentationPlan::new();
    plan.assign(act.id, MemoryDirective::SwapD2d(stripe));
    let err = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
        .run()
        .unwrap_err();
    assert!(matches!(err, mpress_sim::SimError::BadPlan(_)));
}

#[test]
fn device_map_permutation_relabels_memory() {
    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::gib(32));
    let plan = InstrumentationPlan::new();
    let reversed = DeviceMap::from_vec((0..4).rev().map(DeviceId).collect()).unwrap();
    let r = Simulator::new(&machine, &lowered.graph, &plan, reversed)
        .run()
        .unwrap();
    // Stage 0 (heaviest) now lives on device 3.
    assert!(r.device_peak[3] > r.device_peak[0]);
}

#[test]
fn bad_device_map_is_an_error() {
    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::gib(32));
    let plan = InstrumentationPlan::new();
    let err = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(3))
        .run()
        .unwrap_err();
    assert!(matches!(err, mpress_sim::SimError::BadDeviceMap(_)));
}

#[test]
fn swap_on_multiwriter_tensor_rejected() {
    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::gib(32));
    // Gradients are written by every backward op.
    let grad = lowered
        .graph
        .tensors()
        .iter()
        .find(|t| t.kind == TensorKind::Gradient)
        .unwrap();
    let mut plan = InstrumentationPlan::new();
    plan.assign(grad.id, MemoryDirective::SwapToHost(HostTier::Dram));
    let err = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
        .run()
        .unwrap_err();
    assert!(matches!(err, mpress_sim::SimError::BadPlan(_)));
}

#[test]
fn timelines_recorded_when_requested() {
    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::gib(32));
    let plan = InstrumentationPlan::new();
    let report = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
        .with_config(SimConfig::default().track_timeline(true))
        .run()
        .unwrap();
    let tl = report.timelines.as_ref().unwrap();
    assert_eq!(tl.len(), 4);
    assert!(tl[0].len() > 4);
    // Times are non-decreasing.
    for dev in tl {
        for w in dev.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
    }
}

#[test]
fn pipedream_and_dapple_have_comparable_throughput() {
    let machine = machine4(Bytes::gib(32));
    let plan = InstrumentationPlan::new();
    let mut rates = Vec::new();
    for kind in [ScheduleKind::PipeDream, ScheduleKind::Dapple] {
        let j = job(kind);
        let lowered = j.lower().unwrap();
        let r = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
            .run()
            .unwrap();
        rates.push(r.throughput(j.window_samples()));
    }
    // Same 1F1B core: PipeDream (no flush/optimizer) is at least as fast.
    assert!(rates[0] >= rates[1] * 0.95, "{rates:?}");
}

#[test]
fn host_pool_exhaustion_reports_host_oom() {
    // A machine with almost no host memory cannot absorb swapped tensors:
    // the OOM event must point at the host pool (device: None).
    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    let mut machine = machine4(Bytes::gib(32));
    machine = Machine::builder()
        .name("tiny-host")
        .gpu(machine.gpu().clone())
        .topology(machine.topology().clone())
        .cpu_memory(Bytes::mib(1))
        .build();
    let acts: Vec<_> = lowered
        .graph
        .tensors()
        .iter()
        .filter(|t| t.kind == TensorKind::Activation && t.stage == 0 && t.layer.is_some())
        .map(|t| t.id)
        .collect();
    let mut plan = InstrumentationPlan::new();
    for t in acts {
        plan.assign(t, MemoryDirective::SwapToHost(HostTier::Dram));
    }
    let report = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
        .run()
        .unwrap();
    assert!(!report.succeeded());
    assert_eq!(report.oom.unwrap().device, None, "host pool must overflow");
}

#[test]
fn eviction_resolves_prefetch_pressure() {
    // Shrink the GPU so prefetched swap tensors collide with compute
    // allocations; the engine's eviction path must keep the run alive.
    let j = PipelineJob::builder()
        .model(
            TransformerConfig::builder(ModelFamily::Gpt)
                .layers(16)
                .hidden(1024)
                .seq_len(1024)
                .build(),
        )
        .schedule(ScheduleKind::Dapple)
        .stages(4)
        .microbatch_size(4)
        .microbatches(12)
        .precision(PrecisionPolicy::full())
        .build()
        .unwrap();
    let lowered = j.lower().unwrap();
    // Capacity just above the static + working set of stage 0.
    let machine = machine4(Bytes::gib(9));
    let plan: InstrumentationPlan = lowered
        .graph
        .tensors()
        .iter()
        .filter(|t| t.kind == TensorKind::Activation && t.layer.is_some())
        .map(|t| (t.id, MemoryDirective::SwapToHost(HostTier::Dram)))
        .collect();
    let report = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
        .run()
        .unwrap();
    // Either it fits thanks to eviction, or it reports a clean OOM — but
    // it must never deadlock (run() would have returned Err).
    if report.succeeded() {
        assert!(report.host_traffic > Bytes::ZERO);
    }
}

#[test]
fn nvme_tier_swap_counts_nvme_traffic_and_is_slower_than_dram() {
    // The §V hierarchy extension: swapping to the NVMe tier must account
    // traffic against the NVMe pool and cost more wall time than DRAM.
    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    let machine = Machine::builder()
        .name("mini4-nvme")
        .gpu(machine4(Bytes::gib(32)).gpu().clone())
        .topology(machine4(Bytes::gib(32)).topology().clone())
        .nvme(mpress_hw::NvmeSpec {
            capacity: Bytes::gib(512),
            read_bw: 3.0e9,
            write_bw: 2.0e9,
        })
        .build();
    let acts: Vec<_> = lowered
        .graph
        .tensors()
        .iter()
        .filter(|t| t.kind == TensorKind::Activation && t.stage == 0 && t.layer.is_some())
        .map(|t| t.id)
        .collect();
    let run = |tier: HostTier| {
        let plan: InstrumentationPlan = acts
            .iter()
            .map(|&t| (t, MemoryDirective::SwapToHost(tier)))
            .collect();
        Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
            .run()
            .unwrap()
    };
    let dram = run(HostTier::Dram);
    let nvme = run(HostTier::Nvme);
    assert!(dram.succeeded() && nvme.succeeded());
    assert_eq!(dram.nvme_traffic, Bytes::ZERO);
    assert!(nvme.nvme_traffic > Bytes::ZERO);
    assert!(nvme.nvme_peak > Bytes::ZERO);
    assert!(
        nvme.makespan >= dram.makespan,
        "NVMe {} vs DRAM {}",
        nvme.makespan,
        dram.makespan
    );
}

#[test]
fn ungated_run_observes_demand_gated_run_respects_capacity() {
    // The profiler's contract: with the memory gate off the engine never
    // stalls — every op executes and the peaks report the unconstrained
    // demand (well above capacity). The gated run on the same machine
    // stops at the first unresolvable stall instead.
    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::mib(512)); // far below stage-0 demand
    let plan = InstrumentationPlan::new();
    let ungated = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
        // The profiler's pairing: observe, don't stop.
        .with_config(SimConfig::default().memory_gate(false).strict_oom(false))
        .run()
        .unwrap();
    // The whole window completed despite the overflow (the final ops
    // executed; zero-duration ops at t=0 legitimately end at 0.0)...
    assert_eq!(ungated.op_end.len(), lowered.graph.ops().len());
    assert!(ungated.op_end.iter().cloned().fold(0.0, f64::max) <= ungated.makespan + 1e-9);
    assert!(ungated.makespan > 0.0);
    // ...and the true demand is visible in the peaks.
    assert!(
        ungated
            .device_peak
            .iter()
            .any(|p| *p > machine.gpu().usable_memory()),
        "ungated run must expose the true (overflowing) demand"
    );
    let gated = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
        .run()
        .unwrap();
    assert!(!gated.succeeded(), "the same job must OOM under the gate");
    // Strict gating stops at the first unresolvable stall, earlier than
    // the free-running window.
    assert!(gated.makespan <= ungated.makespan);
}

#[test]
fn non_strict_oom_run_completes_and_keeps_first_oom_event() {
    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::mib(512));
    let report = Simulator::new(
        &machine,
        &lowered.graph,
        &InstrumentationPlan::new(),
        DeviceMap::identity(4),
    )
    .with_config(SimConfig::default().strict_oom(false))
    .run()
    .unwrap();
    assert!(!report.succeeded());
    let oom = report.oom.unwrap();
    assert!(oom.device.is_some());
    // The overflow magnitude is observable: demand exceeds capacity.
    assert!(oom.used > oom.capacity);
}

#[test]
fn trace_covers_every_executed_op_with_monotone_spans() {
    let j = job(ScheduleKind::PipeDream);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::gib(32));
    let report = Simulator::new(
        &machine,
        &lowered.graph,
        &InstrumentationPlan::new(),
        DeviceMap::identity(4),
    )
    .with_config(SimConfig::default().trace(true))
    .run()
    .unwrap();
    let events = report.trace.as_deref().expect("trace requested");
    assert!(events.len() >= lowered.graph.ops().len());
    for e in events {
        assert!(e.end >= e.start, "span must be well-formed: {e:?}");
        assert!(e.end <= report.makespan + 1e-9);
    }
    // The export is valid JSON with one entry per event.
    let json = mpress_sim::trace::to_chrome_trace(events);
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed.as_array().unwrap().len(), events.len());
}

#[test]
fn gpipe_demands_more_memory_than_dapple_on_the_engine() {
    // The schedule ablation's claim, observed by the engine rather than
    // the analytic model: GPipe's all-forward phase piles up every
    // microbatch's activations.
    let run = |kind: ScheduleKind| {
        let j = job(kind);
        let lowered = j.lower().unwrap();
        Simulator::new(
            &machine4(Bytes::gib(32)),
            &lowered.graph,
            &InstrumentationPlan::new(),
            DeviceMap::identity(4),
        )
        .run()
        .unwrap()
    };
    let dapple = run(ScheduleKind::Dapple);
    let gpipe = run(ScheduleKind::GPipe);
    assert!(dapple.succeeded() && gpipe.succeeded());
    assert!(
        gpipe.device_peak[0] > dapple.device_peak[0],
        "gpipe {} vs dapple {}",
        gpipe.device_peak[0],
        dapple.device_peak[0]
    );
}

#[test]
fn metrics_stall_attribution_tiles_the_makespan() {
    let j = job(ScheduleKind::PipeDream);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::gib(32));
    let report = Simulator::new(
        &machine,
        &lowered.graph,
        &InstrumentationPlan::new(),
        DeviceMap::identity(4),
    )
    .with_config(SimConfig::default().metrics(true))
    .run()
    .unwrap();
    let m = report.metrics.expect("metrics were enabled");
    assert_eq!(m.total_time, report.makespan);
    assert_eq!(m.devices.len(), 4);
    // Per device, busy compute + the four stall buckets tile [0, makespan].
    assert!(
        m.stall_invariant_error() < 1e-9,
        "leak {} s",
        m.stall_invariant_error()
    );
    // Interior devices start late (waiting on upstream), so some device
    // attributes dependency-wait; the pipeline drains, so the last
    // backward's device idles at the end of the window.
    assert!(m
        .devices
        .iter()
        .any(|d| d.stalls.waiting_on_dependency > 0.0));
    assert!(m.devices.iter().any(|d| d.stalls.drained > 0.0));
    for d in &m.devices {
        assert!(d.busy.compute > 0.0, "{:?}", d);
    }
}

#[test]
fn metrics_report_is_absent_when_disabled() {
    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::gib(32));
    let report = Simulator::new(
        &machine,
        &lowered.graph,
        &InstrumentationPlan::new(),
        DeviceMap::identity(4),
    )
    .run()
    .unwrap();
    assert!(report.metrics.is_none());
}

#[test]
fn metrics_account_swap_bytes_on_links() {
    use mpress_hw::LinkKey;

    let j = job(ScheduleKind::Dapple);
    let lowered = j.lower().unwrap();
    let machine = machine4(Bytes::gib(32));

    // One host-swapped and one D2D-striped activation on stage 0.
    let host_act = lowered
        .graph
        .tensors()
        .iter()
        .find(|t| t.kind == TensorKind::Activation && t.stage == 0 && t.layer == Some(0))
        .unwrap();
    let d2d_act = lowered
        .graph
        .tensors()
        .iter()
        .find(|t| t.kind == TensorKind::Activation && t.stage == 0 && t.layer == Some(1))
        .unwrap();
    let stripe = StripePlan::weighted(d2d_act.bytes, &[(DeviceId(2), 1), (DeviceId(3), 1)]);
    let mut plan = InstrumentationPlan::new();
    plan.assign(host_act.id, MemoryDirective::SwapToHost(HostTier::Dram));
    plan.assign(d2d_act.id, MemoryDirective::SwapD2d(stripe));

    let report = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(4))
        .with_config(SimConfig::default().metrics(true))
        .run()
        .unwrap();
    assert!(report.succeeded());
    let m = report.metrics.expect("metrics were enabled");

    let bytes_on = |key: LinkKey| {
        m.links
            .iter()
            .find(|l| l.link == key)
            .map(|l| l.bytes)
            .unwrap_or(Bytes::ZERO)
    };
    // Host swaps cross stage 0's PCIe root port, out and back.
    assert_eq!(bytes_on(LinkKey::Pcie(DeviceId(0))), report.host_traffic);
    // Each stripe chunk's round trip lands on its canonical NVLink pair.
    let nvlink_total: Bytes = [DeviceId(2), DeviceId(3)]
        .into_iter()
        .map(|peer| bytes_on(LinkKey::nvlink(DeviceId(0), peer)))
        .sum();
    assert_eq!(nvlink_total, report.d2d_traffic);
    for l in &m.links {
        assert!((0.0..=1.0).contains(&l.occupancy), "{:?}", l);
        assert!(l.busy <= m.total_time + 1e-9, "{:?}", l);
    }
}

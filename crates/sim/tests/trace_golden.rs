//! Golden-file test for the chrome://tracing export.
//!
//! The simulator is deterministic, so the rendered trace of a fixed
//! micro-job must stay byte-identical across refactors. If an
//! *intentional* format or scheduling change shifts the output, refresh
//! the golden with:
//!
//! ```sh
//! MPRESS_REGEN_GOLDEN=1 cargo test -p mpress-sim --test trace_golden
//! ```

use mpress_compaction::InstrumentationPlan;
use mpress_hw::{Bytes, GpuSpec, Machine, Topology};
use mpress_model::{ModelFamily, PrecisionPolicy, TransformerConfig};
use mpress_pipeline::{PipelineJob, ScheduleKind};
use mpress_sim::{trace, DeviceMap, SimConfig, Simulator};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("tiny_trace.json")
}

/// A 2-stage, 2-microbatch job small enough that its trace stays
/// reviewable in a diff.
fn render_trace() -> String {
    let job = PipelineJob::builder()
        .model(
            TransformerConfig::builder(ModelFamily::Gpt)
                .layers(2)
                .hidden(256)
                .seq_len(128)
                .vocab(2048)
                .build(),
        )
        .schedule(ScheduleKind::Dapple)
        .stages(2)
        .microbatch_size(1)
        .microbatches(2)
        .precision(PrecisionPolicy::mixed())
        .build()
        .unwrap();
    let lowered = job.lower().unwrap();
    let lanes = vec![vec![0, 2], vec![2, 0]];
    let topo = Topology::from_lane_matrix(mpress_hw::TopologyKind::Asymmetric, lanes, 6);
    let mut gpu = GpuSpec::v100_32gb();
    gpu.memory = Bytes::gib(32);
    let machine = Machine::builder()
        .name("mini2")
        .gpu(gpu)
        .topology(topo)
        .build();
    let report = Simulator::new(
        &machine,
        &lowered.graph,
        &InstrumentationPlan::new(),
        DeviceMap::identity(2),
    )
    .with_config(SimConfig::default().trace(true))
    .run()
    .unwrap();
    trace::to_chrome_trace(report.trace.as_deref().unwrap_or(&[]))
}

#[test]
fn chrome_trace_matches_golden() {
    let rendered = render_trace();
    let path = golden_path();
    if std::env::var_os("MPRESS_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading {}: {e} (regen with MPRESS_REGEN_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "chrome trace drifted from {}; if intentional, regen with MPRESS_REGEN_GOLDEN=1",
        path.display()
    );
}

#[test]
fn golden_trace_is_valid_json_with_complete_events() {
    let rendered = render_trace();
    let parsed: serde_json::Value = serde_json::from_str(&rendered).unwrap();
    let events = parsed.as_array().expect("chrome trace is a JSON array");
    assert!(!events.is_empty());
    for e in events {
        // Chrome's complete-event schema: name, phase "X", timestamp,
        // duration, pid/tid lanes.
        for key in ["name", "ph", "ts", "dur", "pid", "tid"] {
            assert!(e.get(key).is_some(), "event missing {key}: {e:?}");
        }
    }
}

//! Incremental re-emulation: divergence checkpoints + delta replay.
//!
//! The planner's refinement loop emulates candidates that differ from
//! the incumbent plan by a single victim/stripe/recompute choice, yet
//! each emulation previously replayed the whole schedule from t=0. This
//! module makes the incumbent's run a reusable *base*:
//!
//! * [`Simulator::run_in_captured`] runs once while snapshotting the
//!   full engine state (event heap, stream cursors, memory residency,
//!   clock, per-task scalars) at window boundaries — `W` equal slices
//!   of the completed-task count — producing a [`RunBase`].
//! * [`Simulator::run_in_delta`] diffs the candidate plan against the
//!   base plan, derives a conservative *divergence bound* `T` (the
//!   earliest simulated time at which the two schedules could behave
//!   differently), restores the last checkpoint strictly before `T`,
//!   patches the task graph in place, and replays only the suffix.
//!
//! The checkpoint store doubles as the per-window memoization: every
//! window whose end lies before `T` is stitched from the base run
//! byte-for-byte instead of being re-simulated (sub-results are keyed
//! by the shared structural prefix, which the plan diff identifies).
//!
//! # Correctness stance
//!
//! The replay must be **byte-identical** to a from-scratch emulation of
//! the candidate — the planner's determinism contract (jobs=1 ≡ jobs=N,
//! `MPRESS_DELTA=0/1` pick the same plan) depends on it. Three devices
//! make that hold:
//!
//! 1. **Conservative divergence bounds.** Each changed tensor clamps
//!    `T` below every mechanism through which its directive is
//!    observable: FIFO head probes (`start_need` runs when the previous
//!    compute op ends), quiescent stall scans (`find_blocked` probes
//!    *any* ready task, so recompute/none diffs clamp to the first
//!    recorded stall), and evictions (which read directives of resident
//!    tensors, so swap→swap diffs clamp to the first eviction at or
//!    after the producer's start). Prefetch-anchor drift on *unchanged*
//!    tensors (possible when recomputation folds shift compute
//!    durations) clamps to both anchors' start times.
//! 2. **Structure-preserving patches.** A candidate may only *remove*
//!    or *retime* swap legs relative to the base, never add them (a
//!    directive gaining legs falls back to a full run). Removed legs
//!    become inert "dead slots": marked done, dependency count pinned
//!    unreachable, consumer dependency counts adjusted. Live legs keep
//!    their base task ids, so every scheduler tie-break — the
//!    completion heap's `(time, stream, seq)` key and the copy-stream
//!    `(priority, tid)` pick — orders tasks exactly as a scratch build
//!    would (the scratch numbering is a monotone renumbering of ours).
//! 3. **Bail-out everywhere else.** Static tensors, multi-writer
//!    tensors, producerless tensors, config/device-map/graph mismatches
//!    and checkpoint verification failures all take the from-scratch
//!    path. Falling back is always correct; replaying is only a speedup.
//!
//! `MPRESS_DELTA=0` (or `PlannerConfig::delta = false`) disables the
//! planner's use of this module entirely.

use crate::arena::{Buffers, SimArena};
use crate::device_map::DeviceMap;
use crate::engine::{
    plan_legs, sid, CompletionKey, EngineState, LegSpec, Loc, SimConfig, SimError, SimOutcome,
    Simulator, Task,
};
use crate::memory::MemoryTracker;
use crate::report::SimReport;
use mpress_compaction::{InstrumentationPlan, MemoryDirective};
use mpress_graph::TensorId;
use mpress_hw::{Bytes, Secs};
use std::cmp::Reverse;
use std::sync::Mutex;

/// Dependency count that can never reach zero: dead slots are parked
/// here so producer completions decrementing through them stay inert.
const DEAD_DEPS: usize = usize::MAX / 2;

/// The mutable per-task scalars a checkpoint must restore. Everything
/// else on a [`Task`] (payload, device, stream, priority, dependents)
/// is fixed at build time for build-emitted tasks.
#[derive(Debug, Clone, Copy)]
struct TaskState {
    deps: usize,
    trigger_fired: bool,
    started: bool,
    done: bool,
    start: Secs,
    end: Secs,
    ready_at: Secs,
    dep_wait_is_copy: bool,
}

impl TaskState {
    fn of(t: &Task) -> Self {
        TaskState {
            deps: t.deps,
            trigger_fired: t.trigger_fired,
            started: t.started,
            done: t.done,
            start: t.start,
            end: t.end,
            ready_at: t.ready_at,
            dep_wait_is_copy: t.dep_wait_is_copy,
        }
    }
}

/// One window-boundary snapshot of the engine, taken at a quiescent
/// loop-top (after `start_pass`, before the next completion pops), so
/// the event heap, stream busy flags and task scalars are consistent.
struct Checkpoint {
    clock: Secs,
    completed: usize,
    /// Window boundaries crossed when this snapshot was taken (1-based);
    /// restoring from here replays `windows - window` windows.
    window: usize,
    /// Scalars for the build-emitted tasks (`tid < n_build`).
    task_state: Vec<TaskState>,
    /// Full clones of eviction-spawned tasks (`tid >= n_build`) — their
    /// build-time-like fields are *not* recoverable from specs.
    evict_tasks: Vec<Task>,
    heap_keys: Vec<CompletionKey>,
    memory: MemoryTracker,
    residency: Vec<Loc>,
    active_swaps: Vec<u32>,
    runnable_swaps: Vec<u32>,
    /// Per-stream `(cursor, busy)`.
    cursors: Vec<(usize, bool)>,
    d2d_traffic: Bytes,
    host_traffic: Bytes,
    nvme_traffic: Bytes,
    recompute_time: Secs,
    evictions: usize,
    refetches: usize,
}

impl Checkpoint {
    fn capture(st: &EngineState<'_>, window: usize, n_build: usize) -> Self {
        Checkpoint {
            clock: st.clock,
            completed: st.completed,
            window,
            task_state: st.tasks[..n_build].iter().map(TaskState::of).collect(),
            evict_tasks: st.tasks[n_build..].to_vec(),
            heap_keys: st.heap.iter().map(|r| r.0).collect(),
            memory: st.memory.clone(),
            residency: st.residency.clone(),
            active_swaps: st.active_swaps.clone(),
            runnable_swaps: st.runnable_swaps.clone(),
            cursors: st.streams.iter().map(|s| (s.cursor, s.busy)).collect(),
            d2d_traffic: st.d2d_traffic,
            host_traffic: st.host_traffic,
            nvme_traffic: st.nvme_traffic,
            recompute_time: st.recompute_time,
            evictions: st.evictions,
            refetches: st.refetches,
        }
    }
}

/// Capture hook threaded through the event loop by
/// [`Simulator::run_in_captured`]. Pure observation: a captured run is
/// byte-identical to a plain one.
pub(crate) struct CaptureState {
    n_build: usize,
    /// Completed-task thresholds at which to snapshot (`k·total/W`).
    boundaries: Vec<usize>,
    next: usize,
    checkpoints: Vec<Checkpoint>,
    /// Clock at every quiescent memory-stall scan — recompute/none
    /// diffs may first diverge there.
    stall_times: Vec<Secs>,
    /// `(clock, device)` of every successful eviction round — swap→swap
    /// diffs may first diverge there, but only through evictions on the
    /// changed tensor's home device (victim candidacy is per-device).
    evict_times: Vec<(Secs, usize)>,
}

impl CaptureState {
    fn new(windows: usize, n_build: usize) -> Self {
        CaptureState {
            n_build,
            boundaries: (1..windows)
                .map(|k| ((k * n_build) / windows).max(1))
                .collect(),
            next: 0,
            checkpoints: Vec::new(),
            stall_times: Vec::new(),
            evict_times: Vec::new(),
        }
    }

    pub(crate) fn maybe_snapshot(&mut self, st: &EngineState<'_>) {
        let mut crossed = false;
        while self.next < self.boundaries.len() && st.completed >= self.boundaries[self.next] {
            self.next += 1;
            crossed = true;
        }
        if crossed {
            self.checkpoints
                .push(Checkpoint::capture(st, self.next, self.n_build));
        }
    }

    pub(crate) fn note_stall(&mut self, clock: Secs) {
        self.stall_times.push(clock);
    }

    pub(crate) fn note_evict(&mut self, clock: Secs, device: usize) {
        self.evict_times.push((clock, device));
    }
}

/// A reusable emulation base: the incumbent plan's full run, its window
/// checkpoints, and everything needed to diff and patch a candidate
/// against it. Produced by [`Simulator::run_in_captured`]; consumed —
/// concurrently, from the planner's worker pool — by
/// [`Simulator::run_in_delta`].
pub struct RunBase {
    graph_fp: u64,
    device_map: DeviceMap,
    plan: InstrumentationPlan,
    config: SimConfig,
    /// The base plan's ordered leg specs (leg tid = `n_ops + index`).
    base_specs: Vec<LegSpec>,
    /// Per-op durations with the base plan's recomputation folds.
    folded_base: Vec<Secs>,
    op_start: Vec<Secs>,
    op_end: Vec<Secs>,
    /// Base start/end times of every swap leg (indexed by spec index):
    /// the divergence bounds for retimed legs.
    leg_starts: Vec<Secs>,
    leg_ends: Vec<Secs>,
    evict_times: Vec<(Secs, usize)>,
    stall_times: Vec<Secs>,
    n_build_tasks: usize,
    n_ops: usize,
    windows: usize,
    checkpoints: Vec<Checkpoint>,
    /// The base run's final engine buffers — task list (with immutable
    /// build-time wiring intact), stream queues, trigger table. One
    /// replay borrows them at a time; a concurrent second replay simply
    /// falls back to a from-scratch run, which is byte-identical anyway.
    template: Mutex<Option<Buffers>>,
}

impl std::fmt::Debug for RunBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunBase")
            .field("graph_fp", &self.graph_fp)
            .field("n_build_tasks", &self.n_build_tasks)
            .field("windows", &self.windows)
            .field("checkpoints", &self.checkpoints.len())
            .finish()
    }
}

/// Outcome of [`Simulator::run_in_delta`].
#[derive(Debug, Clone)]
pub struct DeltaRun {
    /// Byte-identical to what [`Simulator::run_in`] would return.
    pub report: SimReport,
    /// Whether a checkpoint restore actually happened (false = full
    /// from-scratch fallback).
    pub used_delta: bool,
    /// The base's window count (denominator for replay accounting).
    pub windows_total: usize,
    /// Windows actually re-simulated (`windows_total` on fallback).
    pub windows_replayed: usize,
}

/// Outcome of [`Simulator::run_in_delta_bounded`]: the delta analogue
/// of [`SimOutcome`], carrying the replay-window accounting in both
/// arms so bounded and unbounded searches report the same counters.
// Unboxed for the same reason as `SimOutcome`: transient hot-path
// return, consumed immediately.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum DeltaOutcome {
    /// The (replayed or fallen-back) run finished normally.
    Completed(DeltaRun),
    /// The simulated clock passed the bound mid-replay (or mid-
    /// fallback); see [`SimOutcome::BoundExceeded`] for the soundness
    /// argument — replays commit completions in the same nondecreasing
    /// time order as from-scratch runs.
    BoundExceeded {
        /// The makespan bound the run was launched with.
        bound: Secs,
        /// The completion time that first exceeded it.
        exceeded_at: Secs,
        /// The base's window count (denominator for replay accounting).
        windows_total: usize,
        /// Windows the replay was re-simulating when it aborted.
        windows_replayed: usize,
    },
}

/// Configs the delta path supports: the planner's plain emulation mode.
/// Timelines/trace/metrics accumulate history the checkpoints don't
/// carry; `reference_scan` is the slow path by design; non-strict OOM
/// and ungated memory change the loop's control flow.
fn plain_config(c: &SimConfig) -> bool {
    c.strict_oom
        && c.memory_gate
        && !c.track_timeline
        && !c.trace
        && !c.metrics
        && !c.reference_scan
}

fn is_swap(d: Option<&MemoryDirective>) -> bool {
    matches!(
        d,
        Some(MemoryDirective::SwapToHost(_)) | Some(MemoryDirective::SwapD2d(_))
    )
}

impl<'a> Simulator<'a> {
    /// Runs like [`run_in`](Self::run_in) while capturing window
    /// checkpoints, returning the report plus a [`RunBase`] usable as a
    /// delta base for near-identical candidate plans. The base is
    /// `None` when the config is not the plain emulation mode, or when
    /// the run ends in OOM (an OOM prefix is not a usable base).
    ///
    /// # Errors
    ///
    /// Same as [`run_in`](Self::run_in).
    pub fn run_in_captured(
        &self,
        arena: &mut SimArena,
        windows: usize,
    ) -> Result<(SimReport, Option<RunBase>), SimError> {
        if !plain_config(&self.config) {
            return self.run_in(arena).map(|r| (r, None));
        }
        let windows = windows.max(2);
        self.plan.validate(self.graph)?;
        arena.ensure(self.graph);
        self.validate_inputs(arena.prebuilt())?;
        let pre = arena.prebuilt();
        let n_ops = pre.n_ops;
        // The capture uses its own buffers: the template must outlive
        // this call, so it cannot borrow the arena's recycled set.
        let mut state = EngineState::build(
            self.machine,
            self.graph,
            self.plan,
            pre,
            &self.device_map,
            self.config,
            Buffers::default(),
        )?;
        let n_build = state.tasks.len();
        let mut cap = CaptureState::new(windows, n_build);
        state.run_loop(self.config.strict_oom, 4 * n_build, Some(&mut cap), None);
        let folded_base: Vec<Secs> = state.tasks[..n_ops].iter().map(|t| t.duration).collect();
        let leg_starts: Vec<Secs> = state.tasks[n_ops..n_build]
            .iter()
            .map(|t| t.start)
            .collect();
        let leg_ends: Vec<Secs> = state.tasks[n_ops..n_build].iter().map(|t| t.end).collect();
        let (result, mut bufs) = state.into_report(self.graph);
        let report = result?;
        if report.oom.is_some() {
            return Ok((report, None));
        }
        let base_specs = std::mem::take(&mut bufs.specs);
        let base = RunBase {
            graph_fp: pre.fingerprint,
            device_map: self.device_map.clone(),
            plan: self.plan.clone(),
            config: self.config,
            base_specs,
            folded_base,
            op_start: report.op_start.clone(),
            op_end: report.op_end.clone(),
            leg_starts,
            leg_ends,
            evict_times: cap.evict_times,
            stall_times: cap.stall_times,
            n_build_tasks: n_build,
            n_ops,
            windows,
            checkpoints: cap.checkpoints,
            template: Mutex::new(Some(bufs)),
        };
        Ok((report, Some(base)))
    }

    /// Emulates this simulator's plan as a *delta* against `base`:
    /// restores the latest checkpoint provably before any divergence and
    /// replays only the suffix. Falls back to a full
    /// [`run_in`](Self::run_in) whenever the diff is unsupported — the
    /// result is byte-identical either way.
    ///
    /// # Errors
    ///
    /// Same as [`run_in`](Self::run_in).
    pub fn run_in_delta(&self, arena: &mut SimArena, base: &RunBase) -> Result<DeltaRun, SimError> {
        match self.run_in_delta_bounded(arena, base, None)? {
            DeltaOutcome::Completed(run) => Ok(run),
            DeltaOutcome::BoundExceeded { .. } => {
                unreachable!("an unbounded delta run cannot exceed a bound")
            }
        }
    }

    /// [`run_in_delta`](Self::run_in_delta) with an optional makespan
    /// bound (see [`Simulator::run_in_bounded`]): the replayed suffix —
    /// or the from-scratch fallback — aborts the moment its simulated
    /// clock passes the bound. Because the base is the *incumbent's*
    /// run and search bounds always sit at or above the incumbent's
    /// makespan, the stitched prefix can never itself exceed the bound;
    /// an abort is only possible in re-simulated events, where the
    /// from-scratch soundness argument applies unchanged.
    ///
    /// # Errors
    ///
    /// Same as [`run_in`](Self::run_in).
    pub fn run_in_delta_bounded(
        &self,
        arena: &mut SimArena,
        base: &RunBase,
        bound: Option<Secs>,
    ) -> Result<DeltaOutcome, SimError> {
        self.plan.validate(self.graph)?;
        arena.ensure(self.graph);
        self.validate_inputs(arena.prebuilt())?;
        let compatible = self.config == base.config
            && plain_config(&self.config)
            && self.device_map == base.device_map
            && arena.prebuilt().fingerprint == base.graph_fp;
        if compatible {
            if let Some(outcome) = self.delta_replay(arena, base, bound) {
                return outcome;
            }
        }
        match self.run_in_bounded(arena, bound)? {
            SimOutcome::Completed(report) => Ok(DeltaOutcome::Completed(DeltaRun {
                report,
                used_delta: false,
                windows_total: base.windows,
                windows_replayed: base.windows,
            })),
            SimOutcome::BoundExceeded { bound, exceeded_at } => Ok(DeltaOutcome::BoundExceeded {
                bound,
                exceeded_at,
                windows_total: base.windows,
                windows_replayed: base.windows,
            }),
        }
    }

    /// The replay fast path. `None` means "unsupported diff or
    /// checkpoint unusable — take the from-scratch fallback".
    #[allow(clippy::too_many_lines)]
    fn delta_replay(
        &self,
        arena: &SimArena,
        base: &RunBase,
        bound: Option<Secs>,
    ) -> Option<Result<DeltaOutcome, SimError>> {
        let pre = arena.prebuilt();
        let n_ops = base.n_ops;
        // --- Plan diff -------------------------------------------------
        // Merge-join over the two directive maps (both iterate in tensor
        // order), so the diff costs two sequential scans instead of a
        // tree lookup per entry. The result ascends by tensor index.
        let mut changed: Vec<(usize, Option<&MemoryDirective>, Option<&MemoryDirective>)> =
            Vec::new();
        {
            let mut bi = base.plan.iter().peekable();
            let mut ci = self.plan.iter().peekable();
            loop {
                match (bi.peek().copied(), ci.peek().copied()) {
                    (Some((tb, db)), Some((tc, dc))) => {
                        if tb < tc {
                            changed.push((tb.index(), Some(db), None));
                            bi.next();
                        } else if tc < tb {
                            changed.push((tc.index(), None, Some(dc)));
                            ci.next();
                        } else {
                            if db != dc {
                                changed.push((tb.index(), Some(db), Some(dc)));
                            }
                            bi.next();
                            ci.next();
                        }
                    }
                    (Some((tb, db)), None) => {
                        changed.push((tb.index(), Some(db), None));
                        bi.next();
                    }
                    (None, Some((tc, dc))) => {
                        changed.push((tc.index(), None, Some(dc)));
                        ci.next();
                    }
                    (None, None) => break,
                }
            }
        }

        // --- Divergence bound T ----------------------------------------
        // Induction over event order: every mechanism through which a
        // diff is observable is clamped by some contributor below, so
        // base and candidate runs are identical strictly before T.
        let probe_time = |op: usize| -> Secs {
            match pre.seq_pos.get(op).copied().flatten() {
                Some((stage, pos)) if pos > 0 => base.op_end[pre.compute_seq[stage][pos - 1]],
                _ => 0.0,
            }
        };
        let mut t_bound = f64::INFINITY;
        let mut stall_clamp = false;
        for &(ti, b, c) in &changed {
            let tensor = self.graph.tensor(TensorId(ti as u32));
            if tensor.kind.is_static() || pre.writer_counts[ti] != 1 {
                return None;
            }
            let producer = pre.producer_of[ti]?;
            if is_swap(c) && !is_swap(b) {
                return None; // leg-adding diff: tids would interleave
            }
            if is_swap(b) && is_swap(c) {
                // Legs exist on both sides and only retime. A duration
                // diff is first read when that leg *starts* (its
                // completion key is minted then) — clamped per differing
                // leg in the pairing pass below. Everything else the
                // directive feeds comes later still: the export's tier
                // choice (host vs NVMe pool, traffic) is read at its
                // *completion*, and anchor/admission drift on imports is
                // only observable once their export dependency resolves.
                // Both are bounded by the group's first export end. The
                // remaining early observer is an eviction reading the
                // directive once the tensor is resident — i.e. from the
                // producer's start. Victim candidacy is restricted to
                // the stalled device, so only evictions on this tensor's
                // home device can see it.
                let k0 = base.base_specs.partition_point(|s| s.tensor.index() < ti);
                if k0 >= base.base_specs.len() || base.base_specs[k0].tensor.index() != ti {
                    return None; // spec lists out of sync with the diff
                }
                t_bound = t_bound.min(base.leg_ends[k0]);
                let home_dev = self.device_map.device_of(tensor.stage).index();
                let from = base.op_start[producer];
                if let Some(&(e, _)) = base
                    .evict_times
                    .iter()
                    .find(|&&(e, d)| d == home_dev && e >= from)
                {
                    t_bound = t_bound.min(e);
                }
            } else {
                // A Recompute/None side alters start-need probes (FIFO
                // head checks and quiescent stall scans), recomputation
                // folds, and eviction candidacy.
                t_bound = t_bound.min(probe_time(producer));
                for &cons in &pre.consumers_of[ti] {
                    t_bound = t_bound.min(probe_time(cons));
                }
                stall_clamp = true;
            }
        }
        if stall_clamp {
            if let Some(&s) = base.stall_times.first() {
                t_bound = t_bound.min(s);
            }
        }
        let in_changed = |ti: usize| changed.binary_search_by_key(&ti, |&(i, _, _)| i).is_ok();

        // --- Candidate folds (exact build-order arithmetic) ------------
        // Recomputation folds must be re-accumulated in `op_reads` order
        // from the raw duration — adjusting the base fold by +/- cost
        // would round differently and break byte-identity.
        let mut cand_dir: Vec<Option<&MemoryDirective>> = vec![None; pre.n_tensors];
        for (t, d) in self.plan.iter() {
            cand_dir[t.index()] = Some(d);
        }
        let mut refold_ops: Vec<usize> = Vec::new();
        for &(ti, b, c) in &changed {
            let b_rec = matches!(b, Some(MemoryDirective::Recompute));
            let c_rec = matches!(c, Some(MemoryDirective::Recompute));
            if b_rec != c_rec {
                refold_ops.extend_from_slice(&pre.consumers_of[ti]);
            }
        }
        refold_ops.sort_unstable();
        refold_ops.dedup();
        let folded_patch: Option<Vec<Secs>> = if refold_ops.is_empty() {
            None
        } else {
            let mut folded = base.folded_base.clone();
            for &idx in &refold_ops {
                let mut dur = pre.op_duration[idx];
                for &r in &pre.op_reads[idx] {
                    if matches!(cand_dir[r], Some(MemoryDirective::Recompute)) {
                        dur += pre.recompute_cost[r];
                    }
                }
                folded[idx] = dur;
            }
            Some(folded)
        };
        let folded_cand: &[Secs] = folded_patch.as_deref().unwrap_or(&base.folded_base);

        // --- Candidate legs + pairing against the base -----------------
        // When no fold changed, every unchanged tensor's leg group is
        // byte-identical to the base's by construction (groups depend
        // only on their own tensor, the machine, and the op durations),
        // so only the changed tensors need re-emission — the dominant
        // diff cost for the single-class trials the refinement loop
        // produces. A fold change can drift *unchanged* tensors' anchors
        // through the shared duration sequence, so that path still emits
        // the full plan.
        let sparse = refold_ops.is_empty();
        let sparse_plan: InstrumentationPlan;
        let legs_plan: &InstrumentationPlan = if sparse {
            let mut p = InstrumentationPlan::new();
            for &(ti, _, c) in &changed {
                if let Some(d) = c {
                    p.assign(TensorId(ti as u32), d.clone());
                }
            }
            sparse_plan = p;
            &sparse_plan
        } else {
            self.plan
        };
        let mut cand_specs: Vec<LegSpec> = Vec::new();
        plan_legs(
            self.machine,
            self.graph,
            legs_plan,
            pre,
            &self.device_map,
            |i| folded_cand[i],
            &mut cand_specs,
        );
        let bs = &base.base_specs;
        // (base spec index, candidate spec) pairs that differ, and base
        // spec indices with no candidate counterpart (dead slots). Both
        // ascend in spec order.
        let mut patches: Vec<(usize, LegSpec)> = Vec::new();
        let mut dead: Vec<usize> = Vec::new();
        {
            let mut i = 0;
            let mut j = 0;
            while i < bs.len() {
                let t_b = bs[i].tensor;
                let i_end = {
                    let mut e = i;
                    while e < bs.len() && bs[e].tensor == t_b {
                        e += 1;
                    }
                    e
                };
                if sparse && !in_changed(t_b.index()) {
                    // Sparse emission skipped this group because it is
                    // byte-identical to the base (see above).
                    i = i_end;
                    continue;
                }
                let grouped_with_cand = j < cand_specs.len() && cand_specs[j].tensor == t_b;
                if !grouped_with_cand {
                    if j < cand_specs.len() && cand_specs[j].tensor < t_b {
                        return None; // candidate-only group: leg-adding
                    }
                    // Base-only group: every leg dies. Must stem from a
                    // recognized diff, otherwise the spec lists are out
                    // of sync and replay would be unsound.
                    if !in_changed(t_b.index()) {
                        return None;
                    }
                    dead.extend(i..i_end);
                    i = i_end;
                    continue;
                }
                let j_end = {
                    let mut e = j;
                    while e < cand_specs.len() && cand_specs[e].tensor == t_b {
                        e += 1;
                    }
                    e
                };
                if i_end - i != j_end - j {
                    return None; // leg structure changed shape
                }
                let tensor_changed = in_changed(t_b.index());
                for (kb, kc) in (i..i_end).zip(j..j_end) {
                    let b = bs[kb];
                    let c = cand_specs[kc];
                    if b == c && kb - i == kc - j {
                        continue;
                    }
                    // Structural fields must agree (out_dep compared
                    // group-relative: absolute spec indices shift when
                    // earlier groups die).
                    if b.kind != c.kind
                        || b.op_dep != c.op_dep
                        || b.consumer != c.consumer
                        || b.out_dep.map(|o| o - i) != c.out_dep.map(|o| o - j)
                    {
                        return None;
                    }
                    if tensor_changed {
                        // A retimed duration is first read when the base
                        // leg starts; anchor/admission drift is already
                        // clamped by the group's first export end above.
                        if b.dur != c.dur {
                            t_bound = t_bound.min(base.leg_starts[kb]);
                        }
                        patches.push((kb, c));
                        continue;
                    }
                    // Unchanged tensor: only anchor/admit drift from
                    // shifted folds is tolerable, bounded by both
                    // anchors' start times.
                    if b.dur != c.dur {
                        return None;
                    }
                    match (b.anchor, c.anchor) {
                        (Some(ab), Some(ac)) => {
                            t_bound = t_bound.min(base.op_start[ab]).min(base.op_start[ac]);
                        }
                        _ => return None, // presence flip: no usable bound
                    }
                    patches.push((kb, c));
                }
                i = i_end;
                j = j_end;
            }
            if j != cand_specs.len() {
                return None; // trailing candidate-only group
            }
        }

        // --- Checkpoint selection + verification -----------------------
        let cp = base
            .checkpoints
            .iter()
            .rev()
            .find(|c| c.clock < t_bound && c.completed > 0)?;
        let started = |tid: usize| cp.task_state[tid].started;
        let untouched_leg =
            |k: usize| !cp.task_state[n_ops + k].started && !cp.task_state[n_ops + k].done;
        if !dead.iter().all(|&k| untouched_leg(k)) {
            return None;
        }
        if !patches.iter().all(|&(k, _)| untouched_leg(k)) {
            return None;
        }
        if !refold_ops.iter().all(|&idx| !cp.task_state[idx].started) {
            return None;
        }
        for &(ti, b, c) in &changed {
            if cp.active_swaps[ti] != 0 || cp.runnable_swaps[ti] != 0 {
                return None;
            }
            let swap_swap = is_swap(b) && is_swap(c);
            let residency_ok = match cp.residency[ti] {
                Loc::Unmaterialized => true,
                Loc::Home => swap_swap,
                _ => false,
            };
            if !residency_ok {
                return None;
            }
        }

        // --- Restore ---------------------------------------------------
        // Everything below overlays the template buffers completely, so
        // no undo pass is needed: the next replay re-derives every
        // mutable field from its own checkpoint + diff.
        let mut bufs = base.template.lock().ok()?.take()?;
        let n_build = base.n_build_tasks;
        bufs.tasks.truncate(n_build);
        bufs.tasks.extend(cp.evict_tasks.iter().cloned());
        // One pass restores the checkpointed scalar state, the candidate
        // op folds and the ready-flag reset (legs get their durations in
        // the spec pass below; eviction clones carry their own state).
        for (tid, st) in cp.task_state.iter().enumerate() {
            let t = &mut bufs.tasks[tid];
            t.deps = st.deps;
            t.trigger_fired = st.trigger_fired;
            t.started = st.started;
            t.done = st.done;
            t.start = st.start;
            t.end = st.end;
            t.ready_at = st.ready_at;
            t.dep_wait_is_copy = st.dep_wait_is_copy;
            t.in_ready = false;
            if tid < n_ops {
                t.duration = folded_cand[tid];
            }
        }
        for t in bufs.tasks[n_build..].iter_mut() {
            t.in_ready = false;
        }
        for v in bufs.triggers.iter_mut() {
            v.clear();
        }
        {
            let mut pi = 0;
            let mut di = 0;
            for (k, bspec) in bs.iter().enumerate() {
                let tid = n_ops + k;
                if di < dead.len() && dead[di] == k {
                    di += 1;
                    let t = &mut bufs.tasks[tid];
                    t.deps = DEAD_DEPS;
                    t.trigger_fired = false;
                    t.started = false;
                    t.done = true;
                    if let Some(c) = bspec.consumer {
                        // The consumer's checkpointed count includes the
                        // dead import (verified unstarted above).
                        bufs.tasks[c].deps -= 1;
                    }
                    continue;
                }
                let spec = if pi < patches.len() && patches[pi].0 == k {
                    let s = patches[pi].1;
                    pi += 1;
                    let t = &mut bufs.tasks[tid];
                    t.duration = s.dur;
                    t.admit = s.admit;
                    t.trigger_fired = match s.anchor {
                        None => true,
                        Some(a) => started(a),
                    };
                    s
                } else {
                    // Restore base-build values (a previous replay may
                    // have patched this slot for its own candidate).
                    let t = &mut bufs.tasks[tid];
                    t.duration = bspec.dur;
                    t.admit = bspec.admit;
                    *bspec
                };
                if let Some(a) = spec.anchor {
                    if !started(a) {
                        bufs.triggers[a].push(tid);
                    }
                }
            }
        }
        for (s, stream) in bufs.streams.iter_mut().enumerate() {
            let (cursor, busy) = cp.cursors[s];
            stream.cursor = cursor;
            stream.busy = busy;
            if !stream.fifo {
                // Non-FIFO queues are write-only bookkeeping; replays
                // would otherwise grow them without bound.
                stream.queue.clear();
            }
            stream.ready.clear();
        }
        bufs.ready_set.clear_resize(bufs.tasks.len());
        for tid in 0..bufs.tasks.len() {
            if bufs.tasks[tid].is_ready() {
                bufs.ready_set.insert(tid);
                let s = sid(bufs.tasks[tid].device.index(), bufs.tasks[tid].stream);
                if !bufs.streams[s].fifo {
                    bufs.streams[s].ready.push(tid);
                    bufs.tasks[tid].in_ready = true;
                }
            }
        }
        bufs.dirty.clear();
        bufs.dirty.resize(bufs.streams.len(), true);
        bufs.heap.clear();
        bufs.heap.extend(cp.heap_keys.iter().map(|&k| Reverse(k)));
        bufs.residency.clear();
        bufs.residency.extend_from_slice(&cp.residency);
        bufs.active_swaps.clear();
        bufs.active_swaps.extend_from_slice(&cp.active_swaps);
        bufs.runnable_swaps.clear();
        bufs.runnable_swaps.extend_from_slice(&cp.runnable_swaps);
        bufs.scratch_alloc.clear();

        let mut state = EngineState {
            pre,
            tasks: std::mem::take(&mut bufs.tasks),
            streams: std::mem::take(&mut bufs.streams),
            dirty: std::mem::take(&mut bufs.dirty),
            ready_set: std::mem::take(&mut bufs.ready_set),
            heap: std::mem::take(&mut bufs.heap),
            clock: cp.clock,
            memory: cp.memory.clone(),
            residency: std::mem::take(&mut bufs.residency),
            triggers: std::mem::take(&mut bufs.triggers),
            home: std::mem::take(&mut bufs.home),
            directive: cand_dir,
            specs: cand_specs,
            d2d_traffic: cp.d2d_traffic,
            host_traffic: cp.host_traffic,
            nvme_traffic: cp.nvme_traffic,
            recompute_time: cp.recompute_time,
            // Dead slots count as "completed" so the all-done exit test
            // lines up with the padded task list.
            completed: cp.completed + dead.len(),
            memory_gate: self.config.memory_gate,
            reference_scan: false,
            stage_device: std::mem::take(&mut bufs.stage_device),
            active_swaps: std::mem::take(&mut bufs.active_swaps),
            runnable_swaps: std::mem::take(&mut bufs.runnable_swaps),
            evictions: cp.evictions,
            refetches: cp.refetches,
            pcie_curve: *self.machine.pcie(),
            trace: None,
            metrics: false,
            gpu_count: self.machine.gpu_count(),
            scratch_tid: usize::MAX,
            scratch_alloc: std::mem::take(&mut bufs.scratch_alloc),
            scratch_extra: 0.0,
        };
        // A scratch build of the candidate would cap evictions at 4x
        // its (smaller, dead-free) task count.
        if let Some(exceeded_at) = state.run_loop(true, 4 * (n_build - dead.len()), None, bound) {
            if let Ok(mut slot) = base.template.lock() {
                *slot = Some(state.recycle());
            }
            return Some(Ok(DeltaOutcome::BoundExceeded {
                bound: bound.unwrap_or(f64::INFINITY),
                exceeded_at,
                windows_total: base.windows,
                windows_replayed: base.windows - cp.window,
            }));
        }
        let (result, out_bufs) = state.into_report(self.graph);
        if let Ok(mut slot) = base.template.lock() {
            *slot = Some(out_bufs);
        }
        let report = match result {
            Ok(r) => r,
            Err(SimError::Deadlock { completed, total }) => {
                // Report the candidate's own task accounting, not the
                // padded one.
                return Some(Err(SimError::Deadlock {
                    completed: completed - dead.len(),
                    total: total - dead.len(),
                }));
            }
            Err(e) => return Some(Err(e)),
        };
        Some(Ok(DeltaOutcome::Completed(DeltaRun {
            report,
            used_delta: true,
            windows_total: base.windows,
            windows_replayed: base.windows - cp.window,
        })))
    }
}

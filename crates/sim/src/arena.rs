//! Reusable simulation arenas.
//!
//! A plan search runs thousands of emulator windows over the *same*
//! machine and graph; only the instrumentation plan and the device map
//! vary between calls. [`SimArena`] exploits that in two ways:
//!
//! * [`Prebuilt`] caches every plan-independent table the engine used to
//!   re-derive per run — per-op read/write/free tensor sets, per-tensor
//!   recomputation costs (which require a sort over sub-events), the
//!   producer/consumer tables, and the per-stage compute/comm sequences.
//! * [`Buffers`] recycles the engine's per-run allocations (task list,
//!   stream queues, residency, event heap, ready-set) between runs, so a
//!   steady-state `emulate()` call performs almost no heap traffic.
//!
//! The arena also hosts [`SimArena::makespan_lower_bound`], an analytic
//! best-case bound the planner uses to skip emulating refinement
//! candidates that cannot beat the incumbent (FlexFlow-style search
//! pruning): the bound is the max of the dependency-graph critical path
//! (per-stream FIFO chains plus cross-stage dependencies) and each copy
//! engine's total transfer time, both of which every simulated schedule
//! must respect.

use crate::device_map::DeviceMap;
use crate::engine::StreamKind;
use mpress_compaction::{HostTier, InstrumentationPlan, MemoryDirective};
use mpress_graph::{OpKind, TrainingGraph};
use mpress_hw::{Bytes, Machine, Secs};

/// Plan-independent tables derived from one [`TrainingGraph`].
///
/// Everything here depends only on the graph — op durations are stored
/// *unfolded* (recomputation folds are applied per run from the plan),
/// and device placements are resolved per run from the device map.
pub(crate) struct Prebuilt {
    /// Content fingerprint of the source graph; a mismatch rebuilds the
    /// tables (guards against arena reuse across different graphs).
    pub(crate) fingerprint: u64,
    pub(crate) n_ops: usize,
    pub(crate) n_tensors: usize,
    /// tensor -> bytes.
    pub(crate) bytes: Vec<Bytes>,
    /// tensor -> compute time to re-materialize it (layer forward time).
    pub(crate) recompute_cost: Vec<Secs>,
    /// op -> raw duration (no recomputation folds).
    pub(crate) op_duration: Vec<Secs>,
    /// op -> stream its task runs on.
    pub(crate) op_stream: Vec<StreamKind>,
    pub(crate) op_kinds: Vec<OpKind>,
    /// Per-op tensor index sets copied out of the graph.
    pub(crate) op_writes: Vec<Vec<usize>>,
    pub(crate) op_reads: Vec<Vec<usize>>,
    pub(crate) op_frees: Vec<Vec<usize>>,
    /// tensor -> first writing op index.
    pub(crate) producer_of: Vec<Option<usize>>,
    /// tensor -> sorted reader op indices.
    pub(crate) consumers_of: Vec<Vec<usize>>,
    /// tensor -> number of writing ops (plan validation).
    pub(crate) writer_counts: Vec<usize>,
    /// Per-stage ordered compute-op task ids.
    pub(crate) compute_seq: Vec<Vec<usize>>,
    /// Per-stage ordered comm-op task ids (send/recv FIFO chains).
    pub(crate) comm_seq: Vec<Vec<usize>>,
    /// op -> (stage, position) on its stage's compute sequence.
    pub(crate) seq_pos: Vec<Option<(usize, usize)>>,
}

/// Cheap content fingerprint of a graph: shape plus every op duration.
/// Collisions would need two *different* graphs with identical op count,
/// tensor count, stage count, dependency count and duration sequence —
/// and even then the damage is bounded to reusing equivalent tables.
///
/// Public so cross-run caches (the planner's process-global `PlanCache`)
/// can scope their keys to the graph content they were computed for.
pub fn graph_fingerprint(graph: &TrainingGraph) -> u64 {
    fingerprint(graph)
}

/// Private implementation of [`graph_fingerprint`]; also keys
/// [`Prebuilt`] table reuse inside [`SimArena`].
fn fingerprint(graph: &TrainingGraph) -> u64 {
    let mut h = Fnv::new();
    h.write(graph.ops().len() as u64);
    h.write(graph.tensors().len() as u64);
    h.write(graph.n_stages() as u64);
    h.write(graph.cross_deps().len() as u64);
    for op in graph.ops() {
        h.write(op.duration.to_bits());
    }
    for t in graph.tensors() {
        h.write(t.bytes.as_u64());
    }
    h.finish()
}

impl Prebuilt {
    fn build(graph: &TrainingGraph, fingerprint: u64) -> Self {
        let n_ops = graph.ops().len();
        let n_tensors = graph.tensors().len();

        let bytes: Vec<Bytes> = graph.tensors().iter().map(|t| t.bytes).collect();

        // Per-tensor recomputation cost: the producing layer's forward
        // time, recovered from the producer op's sub-event offsets.
        let mut recompute_cost = vec![0.0_f64; n_tensors];
        for op in graph.ops() {
            if op.kind != OpKind::Forward || op.sub_events.is_empty() {
                continue;
            }
            let mut events: Vec<_> = op.sub_events.iter().collect();
            events.sort_by(|a, b| a.offset.partial_cmp(&b.offset).expect("finite offsets"));
            let mut prev = 0.0;
            for e in events {
                recompute_cost[e.tensor.index()] = (e.offset - prev).max(0.0);
                prev = e.offset;
            }
        }
        // Tensors without sub-events recompute by re-running their whole
        // producing op.
        for op in graph.ops() {
            if op.kind != OpKind::Forward {
                continue;
            }
            for t in &op.writes {
                if op.sub_event_offset(*t).is_none() {
                    recompute_cost[t.index()] = op.duration;
                }
            }
        }

        let op_stream: Vec<StreamKind> = graph
            .ops()
            .iter()
            .map(|op| match op.kind {
                OpKind::Send | OpKind::Recv => StreamKind::Comm,
                OpKind::SwapOut => StreamKind::CopyOut,
                OpKind::SwapIn => StreamKind::CopyIn,
                _ => StreamKind::Compute,
            })
            .collect();

        // One pass over the ops gives producer/consumer/writer tables;
        // scanning per directive would be quadratic in graph size.
        let mut producer_of: Vec<Option<usize>> = vec![None; n_tensors];
        let mut consumers_of: Vec<Vec<usize>> = vec![Vec::new(); n_tensors];
        let mut writer_counts = vec![0usize; n_tensors];
        for op in graph.ops() {
            for w in &op.writes {
                producer_of[w.index()].get_or_insert(op.id.index());
                writer_counts[w.index()] += 1;
            }
            for r in &op.reads {
                consumers_of[r.index()].push(op.id.index());
            }
        }
        for consumers in consumers_of.iter_mut() {
            consumers.sort_unstable();
        }

        // Per-stage compute/comm sequences and each compute op's position
        // — prefetch triggers anchor a few ops upstream of the consumer.
        let mut compute_seq: Vec<Vec<usize>> = Vec::with_capacity(graph.n_stages());
        let mut comm_seq: Vec<Vec<usize>> = Vec::with_capacity(graph.n_stages());
        let mut seq_pos: Vec<Option<(usize, usize)>> = vec![None; n_ops];
        for stage in 0..graph.n_stages() {
            let program = graph.stage_program(stage);
            let seq: Vec<usize> = program
                .iter()
                .map(|id| id.index())
                .filter(|&i| op_stream[i] == StreamKind::Compute)
                .collect();
            for (pos, &i) in seq.iter().enumerate() {
                seq_pos[i] = Some((stage, pos));
            }
            compute_seq.push(seq);
            comm_seq.push(
                program
                    .iter()
                    .map(|id| id.index())
                    .filter(|&i| op_stream[i] == StreamKind::Comm)
                    .collect(),
            );
        }

        Prebuilt {
            fingerprint,
            n_ops,
            n_tensors,
            bytes,
            recompute_cost,
            op_duration: graph.ops().iter().map(|o| o.duration).collect(),
            op_stream,
            op_kinds: graph.ops().iter().map(|o| o.kind).collect(),
            op_writes: graph
                .ops()
                .iter()
                .map(|o| o.writes.iter().map(|t| t.index()).collect())
                .collect(),
            op_reads: graph
                .ops()
                .iter()
                .map(|o| o.reads.iter().map(|t| t.index()).collect())
                .collect(),
            op_frees: graph
                .ops()
                .iter()
                .map(|o| o.frees.iter().map(|t| t.index()).collect())
                .collect(),
            producer_of,
            consumers_of,
            writer_counts,
            compute_seq,
            comm_seq,
            seq_pos,
        }
    }
}

/// An indexed set of dependency-ready task ids, stored as a bitset:
/// O(1) insert/remove on the hot path (every task enters and leaves the
/// set once), with ascending-order iteration via word scans for the
/// quiescent blocked search — the same visit order as scanning all
/// tasks by id, at a fraction of the cost.
#[derive(Default)]
pub(crate) struct ReadySet {
    words: Vec<u64>,
}

impl ReadySet {
    /// Empties the set and reserves room for `n` task ids.
    pub(crate) fn clear_resize(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(64), 0);
    }

    pub(crate) fn insert(&mut self, tid: usize) {
        let w = tid / 64;
        if w >= self.words.len() {
            // Evictions append tasks past the build-time count.
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (tid % 64);
    }

    pub(crate) fn remove(&mut self, tid: usize) {
        if let Some(word) = self.words.get_mut(tid / 64) {
            *word &= !(1 << (tid % 64));
        }
    }

    /// The smallest member >= `from`, or `None`.
    pub(crate) fn next_at_or_after(&self, from: usize) -> Option<usize> {
        let mut w = from / 64;
        if w >= self.words.len() {
            return None;
        }
        // Mask off bits below `from` in the first word.
        let mut word = self.words[w] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            word = *self.words.get(w)?;
        }
    }
}

/// Recycled per-run engine buffers. Cleared (not reallocated) at the
/// start of every run built from an arena.
#[derive(Default)]
pub(crate) struct Buffers {
    pub(crate) tasks: Vec<crate::engine::Task>,
    pub(crate) streams: Vec<crate::engine::Stream>,
    pub(crate) dirty: Vec<bool>,
    pub(crate) ready_set: ReadySet,
    pub(crate) heap: std::collections::BinaryHeap<std::cmp::Reverse<crate::engine::CompletionKey>>,
    pub(crate) residency: Vec<crate::engine::Loc>,
    pub(crate) triggers: Vec<Vec<usize>>,
    pub(crate) home: Vec<mpress_hw::DeviceId>,
    pub(crate) stage_device: Vec<usize>,
    pub(crate) active_swaps: Vec<u32>,
    pub(crate) runnable_swaps: Vec<u32>,
    pub(crate) scratch_alloc: Vec<usize>,
    pub(crate) specs: Vec<crate::engine::LegSpec>,
}

/// A reusable allocation arena for repeated simulator runs.
///
/// ```no_run
/// use mpress_sim::{SimArena, Simulator, DeviceMap};
/// # fn demo(machine: &mpress_hw::Machine, graph: &mpress_graph::TrainingGraph,
/// #        plans: &[mpress_compaction::InstrumentationPlan]) {
/// let mut arena = SimArena::new();
/// for plan in plans {
///     let sim = Simulator::new(machine, graph, plan, DeviceMap::identity(graph.n_stages()));
///     let report = sim.run_in(&mut arena).expect("consistent inputs");
///     println!("makespan {:.3}s", report.makespan);
/// }
/// # }
/// ```
///
/// The arena is keyed by a content fingerprint of the graph: handing it
/// a different graph transparently rebuilds the cached tables, so reuse
/// is always safe, just fastest when the graph is stable.
#[derive(Default)]
pub struct SimArena {
    prebuilt: Option<Prebuilt>,
    buffers: Buffers,
}

impl std::fmt::Debug for SimArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimArena")
            .field("prebuilt", &self.prebuilt.as_ref().map(|p| p.fingerprint))
            .finish()
    }
}

/// A shareable pool of [`SimArena`]s.
///
/// Cloning the pool clones the *handle*; every clone checks arenas in
/// and out of the same underlying free list, so concurrent emulator
/// windows — within one planner search or across planner instances in a
/// long-running service — reuse the same prebuilt graph tables and task
/// buffers. The steady-state pool size is the peak number of concurrent
/// [`ArenaPool::with`] calls.
#[derive(Debug, Default, Clone)]
pub struct ArenaPool {
    free: std::sync::Arc<std::sync::Mutex<Vec<SimArena>>>,
    /// Lane-affine slots: pool/`par_run` worker threads carry a stable
    /// lane id (`mpress_par::current_lane`), and a lane that keeps
    /// checking out *the same* arena keeps its graph tables and task
    /// buffers cache-warm across speculative emulations. Slots are
    /// `try_lock`ed — when two concurrent searches collide on a lane id
    /// the loser silently falls back to the free list, so affinity is
    /// purely a wall-clock optimization.
    lanes: std::sync::Arc<Vec<std::sync::Mutex<Option<SimArena>>>>,
}

/// Lane slots held by an [`ArenaPool`]; lanes at or above this fall
/// back to the shared free list. Generously above any realistic
/// `MPRESS_JOBS` width.
const LANE_SLOTS: usize = 64;

impl ArenaPool {
    /// An empty pool; arenas materialize on first checkout.
    pub fn new() -> Self {
        ArenaPool {
            free: std::sync::Arc::default(),
            lanes: std::sync::Arc::new(
                (0..LANE_SLOTS)
                    .map(|_| std::sync::Mutex::new(None))
                    .collect(),
            ),
        }
    }

    /// Checks an arena out (or makes a fresh one), runs `f`, and returns
    /// the arena for the next window. Concurrent calls check out
    /// distinct arenas, so `f` never contends on arena state. Threads
    /// with a pool lane identity get a lane-affine arena (see
    /// [`ArenaPool::lanes`]); everyone else shares the free list.
    pub fn with<T>(&self, f: impl FnOnce(&mut SimArena) -> T) -> T {
        if let Some(lane) = mpress_par::current_lane() {
            if let Some(slot) = self.lanes.get(lane) {
                if let Ok(mut held) = slot.try_lock() {
                    let mut arena = match held.take() {
                        Some(arena) => arena,
                        None => self
                            .free
                            .lock()
                            .expect("arena pool lock")
                            .pop()
                            .unwrap_or_default(),
                    };
                    let out = f(&mut arena);
                    *held = Some(arena);
                    return out;
                }
            }
        }
        let mut arena = self
            .free
            .lock()
            .expect("arena pool lock")
            .pop()
            .unwrap_or_default();
        let out = f(&mut arena);
        self.free.lock().expect("arena pool lock").push(arena);
        out
    }

    /// Arenas currently checked in (idle). Steady state equals the peak
    /// concurrency the pool has served.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("arena pool lock").len()
    }
}

impl SimArena {
    /// An empty arena; tables materialize on first use.
    pub fn new() -> Self {
        SimArena::default()
    }

    /// Makes sure the cached tables match `graph`, rebuilding on change.
    pub(crate) fn ensure(&mut self, graph: &TrainingGraph) {
        let fp = fingerprint(graph);
        if self.prebuilt.as_ref().map(|p| p.fingerprint) != Some(fp) {
            self.prebuilt = Some(Prebuilt::build(graph, fp));
        }
    }

    pub(crate) fn prebuilt(&self) -> &Prebuilt {
        self.prebuilt.as_ref().expect("ensure() ran")
    }

    pub(crate) fn take_buffers(&mut self) -> Buffers {
        std::mem::take(&mut self.buffers)
    }

    pub(crate) fn put_buffers(&mut self, buffers: Buffers) {
        self.buffers = buffers;
    }

    /// An analytic lower bound on the makespan of `plan` on `machine`:
    /// no simulated schedule can beat it, because every component is a
    /// constraint the engine enforces. Thin wrapper over
    /// [`SimArena::cost_profile`]; see [`CostProfile::makespan_lo`].
    pub fn makespan_lower_bound(
        &mut self,
        machine: &Machine,
        graph: &TrainingGraph,
        plan: &InstrumentationPlan,
        device_map: &DeviceMap,
    ) -> Secs {
        self.cost_profile(machine, graph, plan, device_map)
            .makespan_lo
    }

    /// The analytic cost inputs the bounds pass and the planner's
    /// prefilter share, computed in one walk over the plan.
    ///
    /// The lower bound combines two constraints every simulated schedule
    /// must respect:
    ///
    /// * **Critical path** over the op dependency DAG, where consecutive
    ///   ops on one FIFO stream (compute/comm per stage) and cross-stage
    ///   dependencies are edges, and durations carry the same
    ///   recomputation folds the engine applies at build time.
    /// * **Copy-engine load**: each swap directive expands into exactly
    ///   the copy legs the engine builds (initial export for dynamic
    ///   tensors, one import per consumer, re-exports between consumers
    ///   and after statics); each device's copy-in/copy-out stream runs
    ///   its legs serially, so their duration sums bound the makespan.
    ///
    /// The bound ignores memory gating, admission windows and evictions,
    /// all of which only *delay* work — so it stays a true lower bound.
    ///
    /// The upper-bound ingredients mirror the engine's accounting the
    /// other way: the clock only ever advances to a task's completion
    /// time, so the makespan cannot exceed the summed duration of every
    /// task the run can create — the built tasks (ops plus planned swap
    /// legs, [`CostProfile::total_task_time`]) plus the worst-case
    /// eviction tasks (the engine caps evictions at `4 * n_tasks`, each
    /// `try_evict` sweep can add at most one eviction per tensor past
    /// the cap check, and each eviction pushes at most two legs of at
    /// most [`CostProfile::max_evict_leg`] each).
    pub fn cost_profile(
        &mut self,
        machine: &Machine,
        graph: &TrainingGraph,
        plan: &InstrumentationPlan,
        device_map: &DeviceMap,
    ) -> CostProfile {
        self.ensure(graph);
        let pre = self.prebuilt();
        let n_ops = pre.n_ops;

        let mut directive: Vec<Option<&MemoryDirective>> = vec![None; pre.n_tensors];
        for (t, d) in plan.iter() {
            directive[t.index()] = Some(d);
        }

        // Folded durations — identical rule to the engine's task build.
        let mut dur = pre.op_duration.clone();
        #[allow(clippy::needless_range_loop)]
        for idx in 0..n_ops {
            for &r in &pre.op_reads[idx] {
                if matches!(directive[r], Some(MemoryDirective::Recompute)) {
                    dur[idx] += pre.recompute_cost[r];
                }
            }
        }
        let op_total: Secs = dur.iter().sum();

        // DAG longest path via Kahn's algorithm over chain + cross edges.
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n_ops];
        let mut indeg = vec![0u32; n_ops];
        let mut chain = |seq: &[usize]| {
            for w in seq.windows(2) {
                succ[w[0]].push(w[1]);
                indeg[w[1]] += 1;
            }
        };
        for stage in 0..graph.n_stages() {
            chain(&pre.compute_seq[stage]);
            chain(&pre.comm_seq[stage]);
        }
        for &(a, b) in graph.cross_deps() {
            succ[a.index()].push(b.index());
            indeg[b.index()] += 1;
        }
        let mut start = vec![0.0_f64; n_ops];
        let mut queue: Vec<usize> = (0..n_ops).filter(|&i| indeg[i] == 0).collect();
        let mut critical_path = 0.0_f64;
        while let Some(u) = queue.pop() {
            let finish = start[u] + dur[u];
            critical_path = critical_path.max(finish);
            for &v in &succ[u] {
                if finish > start[v] {
                    start[v] = finish;
                }
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }

        // Per-device copy-stream load, mirroring the engine's swap-leg
        // construction exactly (leg counts, not schedules). The same walk
        // accumulates the upper-bound ingredients: the summed duration
        // and count of every planned leg, and the worst single eviction
        // leg (evictions re-export over plain PCIe or the stripe links,
        // never the NVMe path — matching `evict_tensor`).
        let gpus = machine.gpu_count();
        let mut out_sum = vec![0.0_f64; gpus];
        let mut in_sum = vec![0.0_f64; gpus];
        let mut leg_total = 0.0_f64;
        let mut n_legs = 0usize;
        let mut max_evict_leg = 0.0_f64;
        for (t, d) in plan.iter() {
            let i = t.index();
            let (out_dur, in_dur) = match d {
                MemoryDirective::Recompute => continue,
                MemoryDirective::SwapToHost(HostTier::Dram) => {
                    let one_way = machine.pcie_transfer_time(pre.bytes[i]);
                    (one_way, one_way)
                }
                MemoryDirective::SwapToHost(HostTier::Nvme) => {
                    let pcie = machine.pcie_transfer_time(pre.bytes[i]);
                    let out = pcie.max(machine.nvme_transfer_time(pre.bytes[i], true));
                    let inn = pcie.max(machine.nvme_transfer_time(pre.bytes[i], false));
                    (out, inn)
                }
                MemoryDirective::SwapD2d(stripe) => (stripe.one_way_time(), stripe.one_way_time()),
            };
            let evict_leg = match d {
                MemoryDirective::Recompute => unreachable!("skipped above"),
                MemoryDirective::SwapToHost(_) => machine.pcie_transfer_time(pre.bytes[i]),
                MemoryDirective::SwapD2d(stripe) => stripe.one_way_time(),
            };
            max_evict_leg = max_evict_leg.max(evict_leg);
            let dev = device_map.device_of(graph.tensor(t).stage).index();
            if dev >= gpus {
                continue; // bound stays valid; the run itself will error
            }
            let is_static = graph.tensor(t).kind.is_static();
            let n_cons = pre.consumers_of[i].len();
            let outs = usize::from(!is_static)
                + if n_cons > 0 {
                    n_cons - 1 + usize::from(is_static)
                } else {
                    0
                };
            out_sum[dev] += outs as f64 * out_dur;
            in_sum[dev] += n_cons as f64 * in_dur;
            leg_total += outs as f64 * out_dur + n_cons as f64 * in_dur;
            n_legs += outs + n_cons;
        }
        let copy_bound = out_sum
            .iter()
            .chain(in_sum.iter())
            .fold(0.0_f64, |acc, &x| acc.max(x));

        CostProfile {
            makespan_lo: critical_path.max(copy_bound),
            total_task_time: op_total + leg_total,
            n_tasks: n_ops + n_legs,
            n_tensors: pre.n_tensors,
            max_evict_leg,
        }
    }
}

/// Analytic cost inputs shared by the planner's prefilter and the
/// certified-bounds pass, computed by [`SimArena::cost_profile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostProfile {
    /// Certified makespan lower bound (critical path vs copy-engine
    /// load). Sound for *completed* runs only: an out-of-memory run
    /// stops early and may finish below the critical path.
    pub makespan_lo: Secs,
    /// Summed duration of every task the engine builds for this plan:
    /// recomputation-folded op durations plus every planned swap leg.
    pub total_task_time: Secs,
    /// Number of built tasks (ops + planned swap legs) — the base of the
    /// engine's eviction cap.
    pub n_tasks: usize,
    /// Tensor count (bounds the eviction overshoot past the cap check:
    /// one `try_evict` sweep evicts each tensor at most once).
    pub n_tensors: usize,
    /// Worst single eviction leg the engine could create: re-exports
    /// move over plain PCIe (host directives, both tiers) or the stripe
    /// links (D2D), mirroring `evict_tensor`.
    pub max_evict_leg: Secs,
}

impl CostProfile {
    /// Certified makespan upper bound: the clock only advances to task
    /// completion times, every completion time is a sum of distinct task
    /// durations, and the run can create at most
    /// `2 * (4 * n_tasks + n_tensors)` eviction legs on top of the built
    /// tasks. Sound for completed *and* out-of-memory runs.
    pub fn makespan_hi(&self) -> Secs {
        let evict_legs = 2 * (4 * self.n_tasks + self.n_tensors);
        self.total_task_time + evict_legs as f64 * self.max_evict_leg
    }
}

/// Minimal FNV-1a 64-bit hasher (std-only; `DefaultHasher` is not
/// guaranteed stable across releases and this hash feeds fingerprints).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

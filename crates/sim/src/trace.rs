//! Structured execution traces.
//!
//! When [`SimConfig::trace`](crate::SimConfig) is enabled, the engine
//! records one [`TraceEvent`] per task execution plus every eviction.
//! [`to_chrome_trace`] converts a trace to the Chrome/Perfetto
//! `chrome://tracing` JSON array format, with one row per (device,
//! stream) pair.

use mpress_hw::{Bytes, Secs};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// What kind of work a trace span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// Forward compute.
    Forward,
    /// Backward compute (includes folded recomputation time).
    Backward,
    /// Optimizer step.
    Optimizer,
    /// Inter-stage send.
    Send,
    /// Swap-out copy (export).
    SwapOut,
    /// Swap-in copy (fetch/prefetch).
    SwapIn,
    /// A pressure-driven eviction decision (zero-duration marker).
    Eviction,
}

impl TraceKind {
    /// Short label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Forward => "fwd",
            TraceKind::Backward => "bwd",
            TraceKind::Optimizer => "opt",
            TraceKind::Send => "send",
            TraceKind::SwapOut => "swap-out",
            TraceKind::SwapIn => "swap-in",
            TraceKind::Eviction => "evict",
        }
    }
}

/// One executed span (or eviction marker).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// The kind of work.
    pub kind: TraceKind,
    /// Executing device.
    pub device: usize,
    /// Start time, seconds.
    pub start: Secs,
    /// End time, seconds.
    pub end: Secs,
    /// Bytes moved (swaps/evictions) — zero for compute.
    pub bytes: Bytes,
}

/// Converts events to the Chrome tracing JSON array format
/// (`chrome://tracing` / Perfetto). Times are exported in microseconds.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in events.iter().enumerate() {
        let lane = match e.kind {
            TraceKind::Forward | TraceKind::Backward | TraceKind::Optimizer => "compute",
            TraceKind::Send => "comm",
            TraceKind::SwapOut | TraceKind::Eviction => "copy-out",
            TraceKind::SwapIn => "copy-in",
        };
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"cat\": \"{lane}\", \"ph\": \"X\", \
             \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": {}, \"tid\": \"{lane}\", \
             \"args\": {{\"bytes\": {}}}}}",
            e.kind.label(),
            e.start * 1e6,
            (e.end - e.start) * 1e6,
            e.device,
            e.bytes.as_u64(),
        );
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_trace_is_json_array() {
        let events = vec![
            TraceEvent {
                kind: TraceKind::Forward,
                device: 0,
                start: 0.0,
                end: 0.001,
                bytes: Bytes::ZERO,
            },
            TraceEvent {
                kind: TraceKind::SwapOut,
                device: 0,
                start: 0.001,
                end: 0.002,
                bytes: Bytes::mib(64),
            },
        ];
        let json = to_chrome_trace(&events);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"fwd\""));
        assert!(json.contains("\"swap-out\""));
        assert!(json.contains("\"bytes\": 67108864"));
        // Valid JSON (no trailing comma).
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        assert_eq!(parsed.as_array().unwrap().len(), 2);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TraceKind::Backward.label(), "bwd");
        assert_eq!(TraceKind::Eviction.label(), "evict");
    }
}

//! Per-run simulator metrics: where simulated time went.
//!
//! Populated by the engine (post-hoc, from the completed task list) when
//! [`SimConfig::metrics`](crate::SimConfig) is enabled. The headline
//! structure answers the paper's evaluation questions directly:
//!
//! * [`DeviceMetrics`] — per-device busy time per stream plus a stall
//!   attribution of the compute stream's idle time. The attribution is a
//!   partition: for every device, `busy.compute + stalls.total()` equals
//!   the run's makespan exactly.
//! * [`LinkMetrics`] — bytes carried and busy time per physical channel
//!   (NVLink pair, PCIe lane, NVMe drive), with occupancy relative to
//!   the makespan.
//!
//! Everything here serializes to JSON with stable field and key order,
//! so metrics-enabled runs are byte-reproducible.

use mpress_hw::{Bytes, DeviceId, LinkKey, Secs};
use mpress_obs::{MetricsReport, StallBreakdown};
use serde::{Deserialize, Serialize};

/// Seconds each of a device's four streams spent executing tasks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamBusy {
    /// Compute stream (forward/backward/optimizer, incl. recompute time).
    pub compute: Secs,
    /// Communication stream (pipeline sends/recvs).
    pub comm: Secs,
    /// Swap-out copy engine.
    pub copy_out: Secs,
    /// Swap-in copy engine.
    pub copy_in: Secs,
}

/// One device's time accounting for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceMetrics {
    /// The device.
    pub device: DeviceId,
    /// Busy seconds per stream.
    pub busy: StreamBusy,
    /// Attribution of the compute stream's idle time. Invariant:
    /// `busy.compute + stalls.total()` = the run's makespan.
    pub stalls: StallBreakdown,
}

/// Traffic accounting for one physical channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkMetrics {
    /// Which channel.
    pub link: LinkKey,
    /// Total bytes carried (both directions).
    pub bytes: Bytes,
    /// Seconds the channel spent carrying copies.
    pub busy: Secs,
    /// `busy / makespan` — the fraction of the run the channel was
    /// occupied (zero for a zero-length run).
    pub occupancy: f64,
}

/// The simulator's full metrics payload for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// The run's makespan (duplicated here so the payload stands alone).
    pub total_time: Secs,
    /// Per-device stream busy time and stall attribution, ascending by
    /// device id.
    pub devices: Vec<DeviceMetrics>,
    /// Per-link traffic, in [`LinkKey`] order (NVLink pairs, PCIe lanes,
    /// NVMe).
    pub links: Vec<LinkMetrics>,
    /// Memory-pressure evictions performed by the runtime's manager.
    pub evictions: u64,
    /// Refetch copies scheduled for evicted tensors with a future reader.
    pub refetches: u64,
    /// Counter/gauge/histogram families recorded during the run.
    pub recorder: MetricsReport,
}

impl SimMetrics {
    /// Largest deviation, over all devices, of
    /// `busy.compute + stalls.total()` from the makespan. Exposed so
    /// tests (and doubtful users) can check the attribution invariant.
    pub fn stall_invariant_error(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| ((d.busy.compute + d.stalls.total()) - self.total_time).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpress_obs::StallCause;

    #[test]
    fn invariant_error_reports_worst_device() {
        let mut good = DeviceMetrics {
            device: DeviceId(0),
            busy: StreamBusy {
                compute: 6.0,
                ..StreamBusy::default()
            },
            stalls: StallBreakdown::default(),
        };
        good.stalls.attribute(StallCause::Drained, 4.0);
        let mut bad = good;
        bad.device = DeviceId(1);
        bad.stalls.drained = 3.0; // off by 1s
        let m = SimMetrics {
            total_time: 10.0,
            devices: vec![good, bad],
            ..SimMetrics::default()
        };
        assert!((m.stall_invariant_error() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_have_zero_error() {
        assert_eq!(SimMetrics::default().stall_invariant_error(), 0.0);
    }
}

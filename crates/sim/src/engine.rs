//! The discrete-event execution engine.
//!
//! Models each GPU as four in-flight lanes — a compute stream, a
//! communication stream and two copy engines (swap-in / swap-out), the
//! same stream layout the paper's runtime builds with `cudaStreamCreate`
//! (§III-E). Swap directives expand into copy tasks chained to their
//! producer/consumer ops; recomputation folds into consumer durations;
//! memory is tracked per device with OOM detection.
//!
//! The scheduler is event-driven: a dirty-stream work-list wakes only
//! the streams whose state could have changed (dependency resolutions,
//! memory releases, admission-cursor advances), and an indexed ready-set
//! replaces the O(n_tasks) quiescent blocked scan. The original
//! full-scan loop is retained behind [`SimConfig::reference_scan`] so
//! the equivalence of both paths stays testable.

use crate::arena::{Buffers, Prebuilt, SimArena};
use crate::device_map::DeviceMap;
use crate::memory::MemoryTracker;
use crate::metrics::{DeviceMetrics, LinkMetrics, SimMetrics, StreamBusy};
use crate::report::SimReport;
use crate::trace::{TraceEvent, TraceKind};
use mpress_compaction::{HostTier, InstrumentationPlan, MemoryDirective, PlanValidationError};
use mpress_graph::{OpId, OpKind, TensorId, TrainingGraph};
use mpress_hw::{Bytes, DeviceId, LinkKey, Machine, Secs};
use mpress_obs::{trace_window, verbosity, MetricsRecorder, StallBreakdown, StallCause};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::error::Error;
use std::fmt;

/// Simulation options.
///
/// Marked `#[non_exhaustive]`: construct via [`SimConfig::default`] and
/// the chainable setters so new options can be added without breaking
/// downstream crates.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct SimConfig {
    /// Stop at the first out-of-memory event (the default). When false the
    /// run continues so the full overflow magnitude is observable.
    pub strict_oom: bool,
    /// Record per-device `(time, bytes)` usage timelines.
    pub track_timeline: bool,
    /// Stall tasks whose home-device allocation would overflow (the
    /// real-runtime behavior). Disable for *profiling* runs that must
    /// observe the unconstrained memory demand.
    pub memory_gate: bool,
    /// Record a [`TraceEvent`] per executed task (exportable to the
    /// Chrome tracing format via [`crate::trace::to_chrome_trace`]).
    pub trace: bool,
    /// Collect [`SimMetrics`] (per-stream busy time, stall attribution,
    /// per-link traffic) into [`SimReport::metrics`]. Off by default:
    /// disabled runs skip all metric assembly.
    pub metrics: bool,
    /// Schedule with the reference full-scan loop instead of the
    /// dirty-stream work-list and indexed ready-set. Slower but
    /// structurally simpler; the property suite asserts both paths
    /// produce byte-identical reports.
    pub reference_scan: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            strict_oom: true,
            track_timeline: false,
            memory_gate: true,
            trace: false,
            metrics: false,
            reference_scan: false,
        }
    }
}

impl SimConfig {
    /// Sets [`strict_oom`](Self::strict_oom).
    pub fn strict_oom(mut self, on: bool) -> Self {
        self.strict_oom = on;
        self
    }

    /// Sets [`track_timeline`](Self::track_timeline).
    pub fn track_timeline(mut self, on: bool) -> Self {
        self.track_timeline = on;
        self
    }

    /// Sets [`memory_gate`](Self::memory_gate).
    pub fn memory_gate(mut self, on: bool) -> Self {
        self.memory_gate = on;
        self
    }

    /// Sets [`trace`](Self::trace).
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Sets [`metrics`](Self::metrics).
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Sets [`reference_scan`](Self::reference_scan).
    pub fn reference_scan(mut self, on: bool) -> Self {
        self.reference_scan = on;
        self
    }
}

/// Errors that abort a simulation before it starts.
///
/// Marked `#[non_exhaustive]` (matching the other public error enums):
/// downstream matches need a wildcard arm so new failure kinds can be
/// added compatibly.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The instrumentation plan failed validation against the graph.
    PlanInvalid(PlanValidationError),
    /// The plan is inconsistent with the machine or graph in a way only
    /// the simulator can see (unreachable stripe targets, swapping a
    /// multi-writer tensor, ...).
    BadPlan(String),
    /// The device map is not a permutation covering every stage.
    BadDeviceMap(String),
    /// The task graph stalled — a dependency cycle introduced by
    /// instrumentation (indicates a planner bug).
    Deadlock {
        /// Tasks completed before the stall.
        completed: usize,
        /// Total tasks.
        total: usize,
    },
    /// The caller's cancellation token tripped (explicit cancel or an
    /// exhausted emulator-run budget) before this window could run.
    Cancelled,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PlanInvalid(e) => write!(f, "invalid instrumentation plan: {e}"),
            SimError::BadPlan(msg) => write!(f, "unusable instrumentation plan: {msg}"),
            SimError::BadDeviceMap(msg) => write!(f, "bad device map: {msg}"),
            SimError::Deadlock { completed, total } => {
                write!(f, "simulation deadlock after {completed}/{total} tasks")
            }
            SimError::Cancelled => write!(f, "run cancelled before execution"),
        }
    }
}

impl Error for SimError {}

impl From<PlanValidationError> for SimError {
    fn from(e: PlanValidationError) -> Self {
        SimError::PlanInvalid(e)
    }
}

/// Result of a *bounded* simulation ([`Simulator::run_in_bounded`]).
///
/// `BoundExceeded` is deliberately **not** a [`SimError`]: the run was
/// healthy, it just proved it cannot finish by the caller's deadline.
/// Planner searches use the incumbent's makespan (plus the acceptance
/// slack) as the bound — a candidate whose simulated clock passes it
/// has *already* lost, so finishing the window would only burn time.
/// This is also distinct from [`SimError::Cancelled`], which reflects
/// an external abort (budget/token), not a property of the plan.
// Not boxed despite the size skew: outcomes are transient returns on
// the emulation hot path, consumed immediately by the caller — an
// allocation per window would cost more than the move.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum SimOutcome {
    /// The run finished; the report is byte-identical to what the
    /// unbounded [`Simulator::run_in`] would have produced.
    Completed(SimReport),
    /// The simulated clock passed `bound` before the run finished. The
    /// final makespan is provably `>= exceeded_at > bound`: task
    /// completions commit in nondecreasing time order, so the first
    /// completion past the bound is a floor on every later one.
    BoundExceeded {
        /// The makespan bound the run was launched with.
        bound: Secs,
        /// The completion time that first exceeded it.
        exceeded_at: Secs,
    },
}

/// Total-ordered wrapper for event times (panics on NaN by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdTime(pub(crate) Secs);

impl Eq for OrdTime {}

impl PartialOrd for OrdTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("event times are finite")
    }
}

/// The four per-device lanes. The discriminants double as the stream's
/// slot inside a device's group of four (`sid = dev * 4 + kind`), and
/// the derived order matches the old `BTreeMap<(usize, StreamKind), _>`
/// iteration, which scheduling determinism depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) enum StreamKind {
    Compute = 0,
    Comm = 1,
    CopyOut = 2,
    CopyIn = 3,
}

/// Streams per device (one slot per [`StreamKind`]).
pub(crate) const STREAMS_PER_DEV: usize = 4;

/// The flat stream index of `(dev, kind)`.
#[inline]
pub(crate) fn sid(dev: usize, kind: StreamKind) -> usize {
    dev * STREAMS_PER_DEV + kind as usize
}

/// Event-queue ordering for task completions. `BinaryHeap` breaks ties
/// by whatever order equal keys were pushed, so the key must be a total
/// order over *all* pending completions: time first, then stream kind
/// (compute before comm before copies), then task sequence number.
/// This makes traces and reports stable — a prerequisite for asserting
/// parallel == serial plan search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct CompletionKey {
    pub(crate) time: OrdTime,
    pub(crate) stream: StreamKind,
    pub(crate) seq: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Payload {
    Op(OpId),
    SwapOut(TensorId),
    SwapIn(TensorId),
}

#[derive(Debug, Clone)]
pub(crate) struct Task {
    pub(crate) payload: Payload,
    pub(crate) device: DeviceId,
    pub(crate) stream: StreamKind,
    pub(crate) duration: Secs,
    pub(crate) deps: usize,
    pub(crate) trigger_fired: bool,
    pub(crate) dependents: Vec<usize>,
    pub(crate) started: bool,
    pub(crate) done: bool,
    /// Whether the task currently sits in its stream's ready list
    /// (non-FIFO streams only; avoids duplicate entries).
    pub(crate) in_ready: bool,
    /// Scheduling priority on non-FIFO streams: swap-ins carry their
    /// consumer's task id so prefetches land in execution order (fetching
    /// a later layer's tensor first can deadlock the earlier one out of
    /// memory). Lower runs first.
    pub(crate) priority: usize,
    /// For swap-ins: the (device, position) on the consumer's compute
    /// stream before which the fetch may not start — demand-window
    /// admission that stops far-future prefetches from squatting on
    /// memory the near-term work needs.
    pub(crate) admit: Option<(usize, usize)>,
    pub(crate) start: Secs,
    pub(crate) end: Secs,
    /// When the last dependency resolved (0 for tasks born ready). Feeds
    /// stall attribution: the gap before `ready_at` is dependency wait,
    /// the gap after is memory/back-pressure wait.
    pub(crate) ready_at: Secs,
    /// Whether the dependency that resolved last was a swap-in copy —
    /// splits dependency wait into exposed-copy vs pipeline stall.
    pub(crate) dep_wait_is_copy: bool,
}

impl Task {
    pub(crate) fn is_ready(&self) -> bool {
        !self.started && self.deps == 0 && self.trigger_fired
    }
}

#[derive(Debug)]
pub(crate) struct Stream {
    /// In-order (FIFO) streams model CUDA compute/comm queues; copy
    /// streams pick any ready task.
    pub(crate) fifo: bool,
    pub(crate) queue: Vec<usize>,
    pub(crate) cursor: usize,
    pub(crate) busy: bool,
    /// Dependency-ready, unstarted tasks (non-FIFO streams only) —
    /// bookkeeping that keeps scheduling O(ready) instead of O(queued).
    pub(crate) ready: Vec<usize>,
}

impl Stream {
    fn new(fifo: bool) -> Self {
        Stream {
            fifo,
            queue: Vec::new(),
            cursor: 0,
            busy: false,
            ready: Vec::new(),
        }
    }
}

/// Where a tensor currently lives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Loc {
    /// Not materialized yet (dynamic tensors before their producer runs).
    Unmaterialized,
    /// On its home GPU.
    Home,
    /// In host pinned memory.
    Host,
    /// Striped across peer GPUs.
    Peers,
    /// Released.
    Freed,
}

/// Executes one lowered training window against a machine model.
///
/// # Example
///
/// ```no_run
/// use mpress_sim::{Simulator, SimConfig, DeviceMap};
/// use mpress_compaction::InstrumentationPlan;
/// # fn demo(machine: &mpress_hw::Machine, graph: &mpress_graph::TrainingGraph) {
/// let plan = InstrumentationPlan::new();
/// let sim = Simulator::new(machine, graph, &plan, DeviceMap::identity(graph.n_stages()));
/// let report = sim.run().expect("consistent inputs");
/// println!("makespan: {:.3}s", report.makespan);
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    pub(crate) machine: &'a Machine,
    pub(crate) graph: &'a TrainingGraph,
    pub(crate) plan: &'a InstrumentationPlan,
    pub(crate) device_map: DeviceMap,
    pub(crate) config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with default config.
    pub fn new(
        machine: &'a Machine,
        graph: &'a TrainingGraph,
        plan: &'a InstrumentationPlan,
        device_map: DeviceMap,
    ) -> Self {
        Simulator {
            machine,
            graph,
            plan,
            device_map,
            config: SimConfig::default(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for inconsistent inputs or instrumentation
    /// deadlocks. An out-of-memory *model outcome* is NOT an error: it is
    /// reported via [`SimReport::oom`].
    pub fn run(&self) -> Result<SimReport, SimError> {
        let mut arena = SimArena::new();
        self.run_in(&mut arena)
    }

    /// Runs the simulation inside a reusable [`SimArena`].
    ///
    /// Equivalent to [`run`](Self::run), but graph-derived tables and
    /// per-run buffers are recycled across calls — the fast path for
    /// planners emulating thousands of candidate plans over one graph.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_in(&self, arena: &mut SimArena) -> Result<SimReport, SimError> {
        match self.run_in_bounded(arena, None)? {
            SimOutcome::Completed(report) => Ok(report),
            SimOutcome::BoundExceeded { .. } => {
                unreachable!("an unbounded run cannot exceed a bound")
            }
        }
    }

    /// [`run_in`](Self::run_in) with an optional makespan bound: the
    /// moment the simulated clock would commit a completion time past
    /// `bound`, the run aborts with [`SimOutcome::BoundExceeded`]
    /// instead of finishing the window. Aborting is *sound* for
    /// best-cost searches — completions commit in nondecreasing time
    /// order, so the final makespan of the aborted run is provably
    /// above the bound — and the abort recycles the arena buffers
    /// exactly like a completed run. `None` behaves like `run_in`.
    ///
    /// # Errors
    ///
    /// Same as [`run_in`](Self::run_in).
    pub fn run_in_bounded(
        &self,
        arena: &mut SimArena,
        bound: Option<Secs>,
    ) -> Result<SimOutcome, SimError> {
        self.plan.validate(self.graph)?;
        arena.ensure(self.graph);
        self.validate_inputs(arena.prebuilt())?;
        let bufs = arena.take_buffers();
        let mut state = EngineState::build(
            self.machine,
            self.graph,
            self.plan,
            arena.prebuilt(),
            &self.device_map,
            self.config,
            bufs,
        )?;
        if let Some(exceeded_at) = state.run(self.config.strict_oom, bound) {
            arena.put_buffers(state.recycle());
            let bound = bound.unwrap_or(f64::INFINITY);
            return Ok(SimOutcome::BoundExceeded { bound, exceeded_at });
        }
        let (result, bufs) = state.into_report(self.graph);
        arena.put_buffers(bufs);
        result.map(SimOutcome::Completed)
    }

    pub(crate) fn validate_inputs(&self, pre: &Prebuilt) -> Result<(), SimError> {
        if self.device_map.len() != self.graph.n_stages() {
            return Err(SimError::BadDeviceMap(format!(
                "map covers {} stages, graph has {}",
                self.device_map.len(),
                self.graph.n_stages()
            )));
        }
        for stage in 0..self.graph.n_stages() {
            let d = self.device_map.device_of(stage);
            if d.index() >= self.machine.gpu_count() {
                return Err(SimError::BadDeviceMap(format!(
                    "{d} beyond machine's {} GPUs",
                    self.machine.gpu_count()
                )));
            }
        }
        for (t, directive) in self.plan.iter() {
            let tensor = self.graph.tensor(t);
            let writers = pre.writer_counts[t.index()];
            match directive {
                MemoryDirective::SwapToHost(_) | MemoryDirective::SwapD2d(_) => {
                    if writers > 1 {
                        return Err(SimError::BadPlan(format!(
                            "tensor {t} is written by {writers} ops and cannot swap"
                        )));
                    }
                }
                MemoryDirective::Recompute => {}
            }
            if let MemoryDirective::SwapD2d(stripe) = directive {
                let home = self.device_map.device_of(tensor.stage);
                stripe
                    .validate(home, self.machine.topology())
                    .map_err(SimError::BadPlan)?;
            }
        }
        Ok(())
    }
}

/// Writes a fully reinitialized task into the next slot, reusing the
/// slot (and its `dependents` allocation) when the buffer still has one
/// from a previous run.
#[allow(clippy::too_many_arguments)]
fn emit_task(
    tasks: &mut Vec<Task>,
    live: &mut usize,
    payload: Payload,
    device: DeviceId,
    stream: StreamKind,
    duration: Secs,
) -> usize {
    let tid = *live;
    if tid < tasks.len() {
        let t = &mut tasks[tid];
        t.dependents.clear();
        t.payload = payload;
        t.device = device;
        t.stream = stream;
        t.duration = duration;
        t.deps = 0;
        t.trigger_fired = true;
        t.started = false;
        t.done = false;
        t.in_ready = false;
        t.priority = usize::MAX;
        t.admit = None;
        t.start = 0.0;
        t.end = 0.0;
        t.ready_at = 0.0;
        t.dep_wait_is_copy = false;
    } else {
        tasks.push(Task {
            payload,
            device,
            stream,
            duration,
            deps: 0,
            trigger_fired: true,
            dependents: Vec::new(),
            started: false,
            done: false,
            in_ready: false,
            priority: usize::MAX,
            admit: None,
            start: 0.0,
            end: 0.0,
            ready_at: 0.0,
            dep_wait_is_copy: false,
        });
    }
    *live += 1;
    tid
}

/// Copy direction of a swap leg; fixes the payload and stream kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LegKind {
    /// Export (`SwapOut` on the copy-out stream).
    Out,
    /// Import (`SwapIn` on the copy-in stream).
    In,
}

/// One swap task ("leg") an instrumentation directive expands into,
/// described structurally before any task exists. `build` emits the
/// swap tasks from this list in order — leg task id = `n_ops + spec
/// index` — and the delta-replay path diffs an incumbent's list against
/// a candidate's to bound where the two simulations can first diverge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct LegSpec {
    pub(crate) tensor: TensorId,
    pub(crate) kind: LegKind,
    pub(crate) dur: Secs,
    /// Op task id this leg depends on: the producer for a dynamic
    /// tensor's initial export, the consumer just served for a
    /// re-export. `None` for imports and static initial exports.
    pub(crate) op_dep: Option<usize>,
    /// Spec index of the export this import depends on (`None` for a
    /// static tensor's first import — the tensor starts swapped out).
    pub(crate) out_dep: Option<usize>,
    /// The consumer op an import feeds (doubles as its priority).
    pub(crate) consumer: Option<usize>,
    /// Prefetch trigger: the import stays untriggered until this op
    /// starts.
    pub(crate) anchor: Option<usize>,
    /// Demand-window admission `(device, compute position)`.
    pub(crate) admit: Option<(usize, usize)>,
}

/// Expands the plan's swap directives into the ordered leg-spec list.
/// `op_dur` must return the *folded* compute duration of an op task
/// (recomputation included) — the prefetch-anchor walk measures lead
/// time in folded durations, exactly as the emitted tasks will run.
pub(crate) fn plan_legs(
    machine: &Machine,
    graph: &TrainingGraph,
    plan: &InstrumentationPlan,
    pre: &Prebuilt,
    device_map: &DeviceMap,
    op_dur: impl Fn(usize) -> Secs,
    out: &mut Vec<LegSpec>,
) {
    out.clear();
    // The anchor op whose *start* leaves ~1.5x the swap-in time of
    // compute ahead of `consumer` — enough lead for the copy to land.
    let prefetch_anchor = |consumer: usize, in_dur: Secs| -> Option<usize> {
        let (stage, pos) = pre.seq_pos[consumer]?;
        let seq = &pre.compute_seq[stage];
        let mut lead = 0.0;
        let mut anchor = None;
        for j in (0..pos).rev() {
            anchor = Some(seq[j]);
            lead += op_dur(seq[j]);
            if lead >= 1.5 * in_dur {
                break;
            }
        }
        anchor
    };
    for (t, d) in plan.iter() {
        let (out_dur, in_dur) = match d {
            MemoryDirective::Recompute => continue,
            MemoryDirective::SwapToHost(HostTier::Dram) => {
                let one_way = machine.pcie_transfer_time(pre.bytes[t.index()]);
                (one_way, one_way)
            }
            MemoryDirective::SwapToHost(HostTier::Nvme) => {
                // GPU->host->NVMe staging pipelines; the slower leg
                // dominates each direction.
                let pcie = machine.pcie_transfer_time(pre.bytes[t.index()]);
                let out = pcie.max(machine.nvme_transfer_time(pre.bytes[t.index()], true));
                let inn = pcie.max(machine.nvme_transfer_time(pre.bytes[t.index()], false));
                (out, inn)
            }
            MemoryDirective::SwapD2d(stripe) => (stripe.one_way_time(), stripe.one_way_time()),
        };
        let tensor = graph.tensor(t);
        let producer = pre.producer_of[t.index()];
        let consumers = &pre.consumers_of[t.index()];
        let is_static = tensor.kind.is_static();

        // Static tensors start swapped out; dynamic ones swap out after
        // their producer.
        let mut last_out: Option<usize> = if is_static {
            None
        } else {
            out.push(LegSpec {
                tensor: t,
                kind: LegKind::Out,
                dur: out_dur,
                op_dep: producer,
                out_dep: None,
                consumer: None,
                anchor: None,
                admit: None,
            });
            Some(out.len() - 1)
        };

        for (k, &c) in consumers.iter().enumerate() {
            let anchor = prefetch_anchor(c, in_dur);
            let admit = anchor.and_then(|a| {
                pre.seq_pos[a].map(|(stage, pos)| (device_map.device_of(stage).index(), pos))
            });
            out.push(LegSpec {
                tensor: t,
                kind: LegKind::In,
                dur: in_dur,
                op_dep: None,
                out_dep: last_out,
                consumer: Some(c),
                anchor,
                admit,
            });

            // Re-export after the consumer. Dynamic tensors are freed
            // by their last consumer, but statics persist — without a
            // trailing export, consumed optimizer states would pile up
            // on the device and crowd out the next layer's swap-in.
            if k + 1 < consumers.len() || is_static {
                out.push(LegSpec {
                    tensor: t,
                    kind: LegKind::Out,
                    dur: out_dur,
                    op_dep: Some(c),
                    out_dep: None,
                    consumer: None,
                    anchor: None,
                    admit: None,
                });
                last_out = Some(out.len() - 1);
            } else {
                last_out = None;
            }
        }
    }
}

/// All mutable engine state for one run. Borrows the instrumentation
/// plan and the arena's prebuilt tables (`'p`) so directives, stripe
/// layouts and graph-derived tables are referenced, not cloned.
pub(crate) struct EngineState<'p> {
    pub(crate) pre: &'p Prebuilt,
    pub(crate) tasks: Vec<Task>,
    /// Flat stream table indexed by [`sid`].
    pub(crate) streams: Vec<Stream>,
    /// Work-list flags: streams whose scheduling state may have changed
    /// since they were last visited. The fast start-pass skips clean
    /// streams; every event that could enable a start marks one.
    pub(crate) dirty: Vec<bool>,
    /// Every task with `is_ready()` true, ordered by task id — the
    /// indexed replacement for the quiescent full-task blocked scan.
    pub(crate) ready_set: crate::arena::ReadySet,
    pub(crate) heap: BinaryHeap<Reverse<CompletionKey>>,
    pub(crate) clock: Secs,
    pub(crate) memory: MemoryTracker,
    pub(crate) residency: Vec<Loc>,
    /// op task id (dense, `< n_ops`) -> swap-in task ids it triggers on
    /// start.
    pub(crate) triggers: Vec<Vec<usize>>,
    /// tensor home device.
    pub(crate) home: Vec<DeviceId>,
    /// directive lookup by tensor index.
    pub(crate) directive: Vec<Option<&'p MemoryDirective>>,
    /// The leg specs the swap tasks were emitted from (leg task id =
    /// `n_ops + spec index`); recycled through [`Buffers`] and diffed by
    /// the delta-replay path.
    pub(crate) specs: Vec<LegSpec>,
    pub(crate) d2d_traffic: Bytes,
    pub(crate) host_traffic: Bytes,
    pub(crate) nvme_traffic: Bytes,
    pub(crate) recompute_time: Secs,
    pub(crate) completed: usize,
    pub(crate) memory_gate: bool,
    pub(crate) reference_scan: bool,
    /// stage -> hosting device index.
    pub(crate) stage_device: Vec<usize>,
    /// tensor index -> number of swap tasks currently *running* (started,
    /// not done); eviction requires zero — pending-but-unrunnable legs
    /// (e.g. a trailing export gated on a far-future consumer) must not
    /// pin a prefetched tensor in memory.
    pub(crate) active_swaps: Vec<u32>,
    /// tensor index -> number of swap tasks that are unstarted but already
    /// runnable (dependencies met). Evicting such a tensor would duplicate
    /// an imminent export, so eviction also requires zero here.
    pub(crate) runnable_swaps: Vec<u32>,
    pub(crate) evictions: usize,
    /// Refetch copies scheduled for evicted tensors with a future reader.
    pub(crate) refetches: usize,
    pub(crate) pcie_curve: mpress_hw::BandwidthCurve,
    pub(crate) trace: Option<Vec<TraceEvent>>,
    /// Assemble [`SimMetrics`] at report time (post-hoc; the hot loop only
    /// pays the two per-task stores `ready_at`/`dep_wait_is_copy`).
    pub(crate) metrics: bool,
    pub(crate) gpu_count: usize,
    /// `start_need` results for the most recently probed task, consumed
    /// by `start_task` so the admit path computes them exactly once:
    /// which tensors to materialize and the recompute time they fold in.
    pub(crate) scratch_tid: usize,
    pub(crate) scratch_alloc: Vec<usize>,
    pub(crate) scratch_extra: Secs,
}

impl<'p> EngineState<'p> {
    pub(crate) fn build(
        machine: &Machine,
        graph: &TrainingGraph,
        plan: &'p InstrumentationPlan,
        pre: &'p Prebuilt,
        device_map: &DeviceMap,
        config: SimConfig,
        mut bufs: Buffers,
    ) -> Result<Self, SimError> {
        let n_ops = pre.n_ops;
        let n_tensors = pre.n_tensors;

        let mut home = std::mem::take(&mut bufs.home);
        home.clear();
        home.extend(
            graph
                .tensors()
                .iter()
                .map(|t| device_map.device_of(t.stage)),
        );
        let mut directive: Vec<Option<&'p MemoryDirective>> = vec![None; n_tensors];
        for (t, d) in plan.iter() {
            directive[t.index()] = Some(d);
        }

        // --- Op tasks (task id == op index) ---------------------------------
        let mut tasks = std::mem::take(&mut bufs.tasks);
        let mut live = 0usize;
        for (idx, op) in graph.ops().iter().enumerate() {
            let mut duration = pre.op_duration[idx];
            // Recomputation folds into the consumer's compute time.
            for &r in &pre.op_reads[idx] {
                if matches!(directive[r], Some(MemoryDirective::Recompute)) {
                    duration += pre.recompute_cost[r];
                }
            }
            emit_task(
                &mut tasks,
                &mut live,
                Payload::Op(op.id),
                device_map.device_of(op.stage),
                pre.op_stream[idx],
                duration,
            );
        }
        for &(a, b) in graph.cross_deps() {
            tasks[a.index()].dependents.push(b.index());
            tasks[b.index()].deps += 1;
        }

        // --- Swap tasks ------------------------------------------------------
        let mut triggers = std::mem::take(&mut bufs.triggers);
        for v in triggers.iter_mut() {
            v.clear();
        }
        triggers.resize_with(n_ops, Vec::new);
        triggers.truncate(n_ops);
        let mut specs = std::mem::take(&mut bufs.specs);
        plan_legs(
            machine,
            graph,
            plan,
            pre,
            device_map,
            |i| tasks[i].duration,
            &mut specs,
        );
        for (k, &spec) in specs.iter().enumerate() {
            let (payload, stream) = match spec.kind {
                LegKind::Out => (Payload::SwapOut(spec.tensor), StreamKind::CopyOut),
                LegKind::In => (Payload::SwapIn(spec.tensor), StreamKind::CopyIn),
            };
            let tid = emit_task(
                &mut tasks,
                &mut live,
                payload,
                home[spec.tensor.index()],
                stream,
                spec.dur,
            );
            debug_assert_eq!(tid, n_ops + k, "leg task ids are dense after the ops");
            if let Some(p) = spec.op_dep {
                tasks[p].dependents.push(tid);
                tasks[tid].deps += 1;
            }
            if let Some(o) = spec.out_dep {
                tasks[n_ops + o].dependents.push(tid);
                tasks[tid].deps += 1;
            }
            if let Some(c) = spec.consumer {
                // Prefetch trigger: an upstream compute op whose start
                // leaves enough compute time to hide the copy. The same
                // position doubles as the admission gate.
                if let Some(anchor) = spec.anchor {
                    tasks[tid].trigger_fired = false;
                    triggers[anchor].push(tid);
                    tasks[tid].admit = spec.admit;
                }
                tasks[tid].dependents.push(c);
                tasks[tid].priority = c;
                tasks[c].deps += 1;
            }
        }
        tasks.truncate(live);
        let mut runnable_swaps = std::mem::take(&mut bufs.runnable_swaps);
        runnable_swaps.clear();
        runnable_swaps.resize(n_tensors, 0);
        for (k, spec) in specs.iter().enumerate() {
            if tasks[n_ops + k].deps == 0 {
                runnable_swaps[spec.tensor.index()] += 1;
            }
        }

        // --- Streams ----------------------------------------------------------
        let n_sids = machine.gpu_count() * STREAMS_PER_DEV;
        let mut streams = std::mem::take(&mut bufs.streams);
        for s in streams.iter_mut() {
            s.queue.clear();
            s.ready.clear();
            s.cursor = 0;
            s.busy = false;
        }
        while streams.len() < n_sids {
            streams.push(Stream::new(false));
        }
        streams.truncate(n_sids);
        for (s, stream) in streams.iter_mut().enumerate() {
            stream.fifo = matches!(s % STREAMS_PER_DEV, 0 | 1); // Compute, Comm
        }
        // Compute/comm queues follow the stage program order; copy queues
        // follow creation order (scan-ready anyway).
        for stage in 0..graph.n_stages() {
            for id in graph.stage_program(stage) {
                let tid = id.index();
                streams[sid(tasks[tid].device.index(), tasks[tid].stream)]
                    .queue
                    .push(tid);
            }
        }
        for tid in n_ops..tasks.len() {
            streams[sid(tasks[tid].device.index(), tasks[tid].stream)]
                .queue
                .push(tid);
        }
        // Seed the ready-set and the non-FIFO ready lists with
        // already-eligible tasks.
        let mut ready_set = std::mem::take(&mut bufs.ready_set);
        ready_set.clear_resize(tasks.len());
        for (tid, task) in tasks.iter_mut().enumerate() {
            if task.is_ready() {
                ready_set.insert(tid);
                let stream = &mut streams[sid(task.device.index(), task.stream)];
                if !stream.fifo {
                    stream.ready.push(tid);
                    task.in_ready = true;
                }
            }
        }
        let mut dirty = std::mem::take(&mut bufs.dirty);
        dirty.clear();
        dirty.resize(n_sids, true);
        let mut heap = std::mem::take(&mut bufs.heap);
        heap.clear();

        // --- Initial memory ----------------------------------------------------
        let mut memory = MemoryTracker::new(
            machine.gpu_count(),
            machine.gpu().usable_memory(),
            machine.cpu().memory,
            machine.nvme().map_or(Bytes::ZERO, |nv| nv.capacity),
            config.track_timeline,
        );
        let mut residency = std::mem::take(&mut bufs.residency);
        residency.clear();
        residency.resize(n_tensors, Loc::Unmaterialized);
        for tensor in graph.tensors() {
            let i = tensor.id.index();
            if !tensor.kind.is_static() {
                continue;
            }
            match directive[i] {
                None | Some(MemoryDirective::Recompute) => {
                    memory.alloc(home[i], pre.bytes[i], 0.0);
                    residency[i] = Loc::Home;
                }
                Some(MemoryDirective::SwapToHost(HostTier::Dram)) => {
                    memory.host_alloc(pre.bytes[i], 0.0);
                    residency[i] = Loc::Host;
                }
                Some(MemoryDirective::SwapToHost(HostTier::Nvme)) => {
                    memory.nvme_alloc(pre.bytes[i], 0.0);
                    residency[i] = Loc::Host;
                }
                Some(MemoryDirective::SwapD2d(stripe)) => {
                    for c in stripe.chunks() {
                        memory.alloc(c.target, c.bytes, 0.0);
                    }
                    residency[i] = Loc::Peers;
                }
            }
        }

        let mut stage_device = std::mem::take(&mut bufs.stage_device);
        stage_device.clear();
        stage_device.extend((0..graph.n_stages()).map(|st| device_map.device_of(st).index()));
        let mut active_swaps = std::mem::take(&mut bufs.active_swaps);
        active_swaps.clear();
        active_swaps.resize(n_tensors, 0);
        let mut scratch_alloc = std::mem::take(&mut bufs.scratch_alloc);
        scratch_alloc.clear();

        Ok(EngineState {
            pre,
            tasks,
            streams,
            dirty,
            ready_set,
            heap,
            clock: 0.0,
            memory,
            residency,
            triggers,
            home,
            directive,
            specs,
            d2d_traffic: Bytes::ZERO,
            host_traffic: Bytes::ZERO,
            nvme_traffic: Bytes::ZERO,
            recompute_time: 0.0,
            completed: 0,
            memory_gate: config.memory_gate,
            reference_scan: config.reference_scan,
            stage_device,
            active_swaps,
            runnable_swaps,
            evictions: 0,
            refetches: 0,
            pcie_curve: *machine.pcie(),
            trace: config.trace.then(Vec::new),
            metrics: config.metrics,
            gpu_count: machine.gpu_count(),
            scratch_tid: usize::MAX,
            scratch_alloc,
            scratch_extra: 0.0,
        })
    }

    fn run(&mut self, strict_oom: bool, bound: Option<Secs>) -> Option<Secs> {
        // Snapshot: evictions append tasks, so a cap computed on the live
        // length would recede forever and allow an unbounded evict/refetch
        // loop under hopeless memory pressure.
        let eviction_cap = 4 * self.tasks.len();
        self.run_loop(strict_oom, eviction_cap, None, bound)
    }

    /// The event loop, parameterized for delta replay: the eviction cap
    /// is passed in (a replay must use the candidate's *live* task count,
    /// not the padded one) and an optional capture hook snapshots window
    /// checkpoints plus stall/eviction times. The hooks observe only —
    /// a captured run is byte-identical to a plain one.
    ///
    /// A `bound` turns the loop into a bound-and-abort run: the first
    /// completion event whose time exceeds the bound stops the loop
    /// *before* committing the clock, and its time is returned. The
    /// prefix executed up to that point is byte-identical to the
    /// unbounded run's prefix — the bound is only ever *read*.
    pub(crate) fn run_loop(
        &mut self,
        strict_oom: bool,
        eviction_cap: usize,
        mut capture: Option<&mut crate::delta::CaptureState>,
        bound: Option<Secs>,
    ) -> Option<Secs> {
        loop {
            self.start_pass();
            if strict_oom && self.memory.oom().is_some() {
                break;
            }
            if let Some(cap) = capture.as_deref_mut() {
                if !self.heap.is_empty() {
                    cap.maybe_snapshot(self);
                }
            }
            if let Some(Reverse(key)) = self.heap.pop() {
                if let Some(b) = bound {
                    if key.time.0 > b {
                        return Some(key.time.0);
                    }
                }
                self.clock = key.time.0;
                self.complete_task(key.seq);
                continue;
            }
            // Quiescent. Done, or stalled on memory/dependencies.
            if self.completed >= self.tasks.len() {
                break;
            }
            if let Some(cap) = capture.as_deref_mut() {
                cap.note_stall(self.clock);
            }
            let Some((blocked_tid, dev, need)) = self.find_blocked() else {
                break; // dependency stall — surfaces as Deadlock
            };
            // The memory manager's move: evict prefetched/idle swappable
            // tensors (furthest next use first, vDNN-style) to unblock the
            // head of the compute queue. If nothing can be evicted the
            // stall is a genuine OOM.
            if self.evictions < eviction_cap && self.try_evict(blocked_tid, dev, need) {
                if let Some(cap) = capture.as_deref_mut() {
                    cap.note_evict(self.clock, dev.index());
                }
                continue;
            }
            if verbosity().sim_debug {
                let t = &self.tasks[blocked_tid];
                eprintln!(
                    "[stall] t={:.3}s dev={} need={} used={} cap={} payload={:?} evictions={} completed={}/{}",
                    self.clock, dev.index(), need, self.memory.used(dev),
                    self.memory.capacity(), t.payload, self.evictions,
                    self.completed, self.tasks.len()
                );
                let mut resident: Vec<(usize, Bytes)> = (0..self.residency.len())
                    .filter(|&i| self.residency[i] == Loc::Home && self.home[i] == dev)
                    .map(|i| (i, self.pre.bytes[i]))
                    .collect();
                resident.sort_by_key(|&(_, b)| std::cmp::Reverse(b));
                for (i, b) in resident.iter().take(8) {
                    eprintln!(
                        "  resident t{i}: {b} directive={:?} pending={}",
                        self.directive[*i].map(|d| d.technique()),
                        self.active_swaps[*i]
                    );
                }
            }
            self.memory.record_stall_oom(dev, need, self.clock);
            break;
        }
        None
    }

    /// Starts everything startable at the current clock. Tasks whose
    /// home-device allocation would not fit stay queued — this is the
    /// back-pressure that makes slow swap-outs *delay* the computation
    /// instead of overflowing it.
    ///
    /// The fast path visits only dirty streams; each pass a productive
    /// stream start marks every stream its side effects could wake, so
    /// skipping clean streams never skips a possible start. The
    /// reference path re-scans every stream, as the original loop did.
    fn start_pass(&mut self) {
        loop {
            let mut progress = false;
            for s in 0..self.streams.len() {
                if !self.reference_scan {
                    if !self.dirty[s] {
                        continue;
                    }
                    self.dirty[s] = false;
                }
                if self.streams[s].busy {
                    continue;
                }
                // Start immediately so this task's allocations are
                // visible to the next stream's memory-fit check.
                if let Some(tid) = self.pick_startable(s) {
                    let stream = &mut self.streams[s];
                    stream.busy = true;
                    if stream.fifo {
                        stream.cursor += 1;
                    }
                    self.start_task(tid);
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
    }

    /// The first (lowest task id) ready, admitted task whose start
    /// allocation does not fit — the quiescent stall witness. The fast
    /// path walks the indexed ready-set; the reference path re-derives
    /// readiness by scanning every task.
    fn find_blocked(&mut self) -> Option<(usize, DeviceId, Bytes)> {
        if self.reference_scan {
            let mut tid = 0;
            while tid < self.tasks.len() {
                if self.tasks[tid].is_ready() && self.admitted(tid) {
                    let (dev, need) = self.start_need(tid);
                    if !self.memory.fits(dev, need) {
                        return Some((tid, dev, need));
                    }
                }
                tid += 1;
            }
            None
        } else {
            let mut from = 0;
            loop {
                let tid = self.ready_set.next_at_or_after(from)?;
                from = tid + 1;
                debug_assert!(self.tasks[tid].is_ready(), "stale ready-set entry {tid}");
                if !self.admitted(tid) {
                    continue;
                }
                let (dev, need) = self.start_need(tid);
                if !self.memory.fits(dev, need) {
                    return Some((tid, dev, need));
                }
            }
        }
    }

    /// Re-exports Home-resident swap-directive tensors on `dev` until
    /// `need` bytes could fit, preferring tensors whose next use is
    /// furthest away. Returns false when no candidate exists.
    fn try_evict(&mut self, blocked_tid: usize, dev: DeviceId, need: Bytes) -> bool {
        let pre = self.pre;
        // Candidates: swap-directive tensors resident on `dev` with no
        // started-but-unfinished consumer; keyed by their next unstarted
        // consumer (None = no future use, evict first).
        let mut candidates: Vec<(usize, Option<usize>)> = Vec::new();
        for i in 0..self.residency.len() {
            if self.residency[i] != Loc::Home || self.home[i] != dev {
                continue;
            }
            let is_swap = matches!(
                self.directive[i],
                Some(MemoryDirective::SwapToHost(_)) | Some(MemoryDirective::SwapD2d(_))
            );
            if !is_swap {
                continue;
            }
            if self.active_swaps[i] != 0 || self.runnable_swaps[i] != 0 {
                continue; // a copy is in flight or imminently scheduled
            }
            let consumers = &pre.consumers_of[i];
            if consumers
                .iter()
                .any(|&c| self.tasks[c].started && !self.tasks[c].done)
            {
                continue; // actively being read
            }
            let next = consumers
                .iter()
                .copied()
                .filter(|&c| !self.tasks[c].started)
                .min();
            if next == Some(blocked_tid) {
                continue; // evicting the blocked task's own input livelocks
            }
            candidates.push((i, next));
        }
        if candidates.is_empty() {
            return false;
        }
        // No future use first, then furthest future use.
        candidates.sort_by(|a, b| match (a.1, b.1) {
            (None, None) => std::cmp::Ordering::Equal,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some(_), None) => std::cmp::Ordering::Greater,
            (Some(x), Some(y)) => y.cmp(&x),
        });
        let free_now = self.memory.capacity().saturating_sub(self.memory.used(dev));
        let mut to_free = need.saturating_sub(free_now);
        let mut evicted_any = false;
        for (i, next) in candidates {
            if to_free.is_zero() {
                break;
            }
            self.evict_tensor(i, next, blocked_tid);
            to_free = to_free.saturating_sub(self.pre.bytes[i]);
            evicted_any = true;
        }
        evicted_any
    }

    /// Creates the re-export (and, when a future consumer exists, the
    /// re-import) tasks for one evicted tensor.
    fn evict_tensor(&mut self, i: usize, next_consumer: Option<usize>, blocked_tid: usize) {
        self.evictions += 1;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent {
                kind: TraceKind::Eviction,
                device: self.home[i].index(),
                start: self.clock,
                end: self.clock,
                bytes: self.pre.bytes[i],
            });
        }
        if verbosity().sim_debug && self.evictions <= 30 || self.evictions.is_multiple_of(500) {
            eprintln!(
                "[evict#{}] t={:.3}s tensor=t{i} bytes={} next={:?}",
                self.evictions, self.clock, self.pre.bytes[i], next_consumer
            );
        }
        let t = TensorId(i as u32);
        let directive = self.directive[i].expect("swap directive");
        let out_dur = match directive {
            MemoryDirective::SwapToHost(_) => self.machine_pcie_time(self.pre.bytes[i]),
            MemoryDirective::SwapD2d(stripe) => stripe.one_way_time(),
            MemoryDirective::Recompute => unreachable!("not a swap directive"),
        };
        let dev = self.home[i];
        let out = self.push_task(Payload::SwapOut(t), dev, StreamKind::CopyOut, out_dur);
        self.runnable_swaps[i] += 1;
        if let Some(consumer) = next_consumer {
            self.refetches += 1;
            let inn = self.push_task(Payload::SwapIn(t), dev, StreamKind::CopyIn, out_dur);
            self.tasks[out].dependents.push(inn);
            self.bump_dep(inn);
            // The refetch is immediately eligible; the memory gate paces
            // it, and compute streams are scanned before copy-in per
            // device, so the blocked task claims freed space first.
            self.tasks[inn].dependents.push(consumer);
            self.tasks[inn].priority = consumer;
            // Admitted at the later of its own prefetch anchor and the
            // position right past the task this eviction unblocks —
            // otherwise the refetch instantly reclaims the freed bytes
            // and the run ping-pongs one tensor forever.
            let anchor = self.refetch_admit(consumer, out_dur);
            let past_blocked = self.position_of(blocked_tid).map(|(d, p)| (d, p + 1));
            self.tasks[inn].admit = match (anchor, past_blocked) {
                (Some((d, a)), Some((d2, b))) if d == d2 => Some((d, a.max(b))),
                (a, None) => a,
                (None, b) => b,
                (a, _) => a, // different devices: keep the anchor
            };
            self.bump_dep(consumer);
        }
    }

    /// Appends a dynamically created task and enqueues it on its stream.
    fn push_task(
        &mut self,
        payload: Payload,
        device: DeviceId,
        stream: StreamKind,
        duration: Secs,
    ) -> usize {
        let tid = self.tasks.len();
        self.tasks.push(Task {
            payload,
            device,
            stream,
            duration,
            deps: 0,
            trigger_fired: true,
            dependents: Vec::new(),
            started: false,
            done: false,
            in_ready: false,
            priority: usize::MAX,
            admit: None,
            start: 0.0,
            end: 0.0,
            ready_at: self.clock,
            dep_wait_is_copy: false,
        });
        self.streams[sid(device.index(), stream)].queue.push(tid);
        self.note_ready(tid);
        tid
    }

    /// Adds one dependency to a task, retracting it from the ready-set
    /// when it was ready (eviction wires refetch copies in front of
    /// already-eligible tasks).
    fn bump_dep(&mut self, tid: usize) {
        if self.tasks[tid].deps == 0 {
            self.ready_set.remove(tid);
        }
        self.tasks[tid].deps += 1;
    }

    fn machine_pcie_time(&self, bytes: Bytes) -> Secs {
        self.pcie_curve.transfer_time(bytes)
    }

    /// The next task the stream could start right now, honoring FIFO
    /// order for compute/comm streams and memory back-pressure everywhere.
    /// Non-FIFO streams consult only their ready list (lazily pruning
    /// stale entries), keeping scheduling O(ready) per attempt.
    ///
    /// Always probes `start_need` on the returned candidate, so
    /// `start_task` can consume the cached result instead of recomputing
    /// it on the admit path.
    fn pick_startable(&mut self, s: usize) -> Option<usize> {
        let gate = self.memory_gate;
        if self.streams[s].fifo {
            let stream = &self.streams[s];
            let &tid = stream.queue.get(stream.cursor)?;
            if !self.tasks[tid].is_ready() {
                return None;
            }
            let (dev, need) = self.start_need(tid);
            if gate && !self.memory.fits(dev, need) {
                return None;
            }
            Some(tid)
        } else {
            // Prune stale entries, then take the minimum-priority ready
            // task. A best task that does not fit BLOCKS the stream:
            // starting a lower-priority one instead would invert prefetch
            // order and can deadlock the blocked consumer out of memory.
            let mut j = 0;
            while j < self.streams[s].ready.len() {
                let tid = self.streams[s].ready[j];
                if self.tasks[tid].is_ready() {
                    j += 1;
                } else {
                    self.streams[s].ready.swap_remove(j);
                    self.tasks[tid].in_ready = false;
                }
            }
            let stream = &self.streams[s];
            let best = stream
                .ready
                .iter()
                .copied()
                .filter(|&tid| self.admitted(tid))
                .min_by_key(|&tid| (self.tasks[tid].priority, tid))?;
            let (dev, need) = self.start_need(best);
            if gate && !self.memory.fits(dev, need) {
                return None;
            }
            let stream = &mut self.streams[s];
            let pos = stream
                .ready
                .iter()
                .position(|&t| t == best)
                .expect("best is in ready");
            stream.ready.swap_remove(pos);
            self.tasks[best].in_ready = false;
            Some(best)
        }
    }

    /// Registers a task that may have just become dependency-ready:
    /// inserts it into the ready-set, marks its stream dirty, and (for
    /// non-FIFO streams) adds it to the stream's ready list.
    fn note_ready(&mut self, tid: usize) {
        if !self.tasks[tid].is_ready() {
            return;
        }
        self.ready_set.insert(tid);
        let s = sid(self.tasks[tid].device.index(), self.tasks[tid].stream);
        self.dirty[s] = true;
        if !self.streams[s].fifo && !self.tasks[tid].in_ready {
            self.streams[s].ready.push(tid);
            self.tasks[tid].in_ready = true;
        }
    }

    /// Marks all four streams of one device dirty — called when memory
    /// is released (or a tensor lands Home) on that device, which can
    /// unblock any stream whose head failed its memory-fit check.
    fn mark_device(&mut self, dev: usize) {
        let base = dev * STREAMS_PER_DEV;
        for k in 0..STREAMS_PER_DEV {
            self.dirty[base + k] = true;
        }
    }

    /// The admission gate for a refetch created at eviction time: the same
    /// anchor rule as build-time prefetches (enough compute upstream of
    /// the consumer to hide the copy).
    fn refetch_admit(&self, consumer_tid: usize, in_dur: Secs) -> Option<(usize, usize)> {
        let (stage, pos) = self.pre.seq_pos.get(consumer_tid).copied().flatten()?;
        let seq = &self.pre.compute_seq[stage];
        let mut lead = 0.0;
        let mut anchor_pos = None;
        for j in (0..pos).rev() {
            anchor_pos = Some(j);
            lead += self.tasks[seq[j]].duration;
            if lead >= 1.5 * in_dur {
                break;
            }
        }
        anchor_pos.map(|p| (self.stage_device[stage], p))
    }

    /// The compute-stream slot a task occupies (ops directly; swap-ins via
    /// their consumer).
    fn position_of(&self, tid: usize) -> Option<(usize, usize)> {
        let key = match self.tasks[tid].payload {
            Payload::Op(_) => tid,
            Payload::SwapIn(_) => self.tasks[tid].priority,
            Payload::SwapOut(_) => return None,
        };
        self.pre
            .seq_pos
            .get(key)
            .copied()
            .flatten()
            .map(|(stage, pos)| (self.stage_device[stage], pos))
    }

    /// Whether a task's demand-window admission is satisfied.
    fn admitted(&self, tid: usize) -> bool {
        match self.tasks[tid].admit {
            None => true,
            Some((dev, pos)) => self.streams[sid(dev, StreamKind::Compute)].cursor >= pos,
        }
    }

    /// Home-device bytes a task allocates the moment it starts. For ops,
    /// the tensors to materialize and the folded recompute time land in
    /// the scratch fields, which `start_task` consumes — the admit path
    /// computes them exactly once per started task.
    fn start_need(&mut self, tid: usize) -> (DeviceId, Bytes) {
        let pre = self.pre;
        let (payload, device) = (self.tasks[tid].payload, self.tasks[tid].device);
        self.scratch_tid = tid;
        self.scratch_extra = 0.0;
        self.scratch_alloc.clear();
        match payload {
            Payload::Op(op_id) => {
                let idx = op_id.index();
                let mut need = Bytes::ZERO;
                for &i in &pre.op_writes[idx] {
                    if matches!(self.directive[i], Some(MemoryDirective::Recompute)) {
                        continue; // materialized only inside the consumer
                    }
                    if self.residency[i] != Loc::Home {
                        need += pre.bytes[i];
                        self.scratch_alloc.push(i);
                    }
                }
                for &i in &pre.op_reads[idx] {
                    if matches!(self.directive[i], Some(MemoryDirective::Recompute))
                        && self.residency[i] != Loc::Home
                    {
                        need += pre.bytes[i];
                        self.scratch_alloc.push(i);
                        self.scratch_extra += pre.recompute_cost[i];
                    }
                }
                (device, need)
            }
            Payload::SwapIn(t) => (self.home[t.index()], pre.bytes[t.index()]),
            Payload::SwapOut(_) => (device, Bytes::ZERO),
        }
    }

    fn start_task(&mut self, tid: usize) {
        let clock = self.clock;
        if verbosity().sim_trace {
            let dev = self.tasks[tid].device.index();
            if trace_window().is_none_or(|w| w.contains(clock, dev)) {
                eprintln!(
                    "[start t={clock:.4}] task{tid} {:?} dur={:.4} prio={}",
                    self.tasks[tid].payload, self.tasks[tid].duration, self.tasks[tid].priority
                );
            }
        }
        self.ready_set.remove(tid);
        self.tasks[tid].started = true;
        self.tasks[tid].start = clock;
        let end = clock + self.tasks[tid].duration;
        self.tasks[tid].end = end;
        self.heap.push(Reverse(CompletionKey {
            time: OrdTime(end),
            stream: self.tasks[tid].stream,
            seq: tid,
        }));
        if self.tasks[tid].stream == StreamKind::Compute {
            // The compute cursor just advanced; swap-in admission windows
            // on any device may reference it.
            for dev in 0..self.gpu_count {
                self.dirty[sid(dev, StreamKind::CopyIn)] = true;
            }
        }

        match self.tasks[tid].payload {
            Payload::Op(_) => {
                // Fire prefetch triggers anchored on this op (op task ids
                // are dense, so a Vec indexed by tid replaces the map).
                let n_triggers = self.triggers[tid].len();
                for k in 0..n_triggers {
                    let f = self.triggers[tid][k];
                    self.tasks[f].trigger_fired = true;
                    self.note_ready(f);
                }
                self.triggers[tid].clear();
                // Materialize from the scratch the admit-path probe left.
                debug_assert_eq!(self.scratch_tid, tid, "start_need precedes start_task");
                self.recompute_time += self.scratch_extra;
                let to_alloc = std::mem::take(&mut self.scratch_alloc);
                for &i in &to_alloc {
                    self.memory.alloc(self.home[i], self.pre.bytes[i], clock);
                    self.residency[i] = Loc::Home;
                }
                self.scratch_alloc = to_alloc;
            }
            Payload::SwapIn(t) => {
                // The return buffer is allocated when the copy begins.
                let i = t.index();
                self.runnable_swaps[i] = self.runnable_swaps[i].saturating_sub(1);
                self.active_swaps[i] += 1;
                self.memory.alloc(self.home[i], self.pre.bytes[i], clock);
            }
            Payload::SwapOut(t) => {
                let i = t.index();
                self.runnable_swaps[i] = self.runnable_swaps[i].saturating_sub(1);
                self.active_swaps[i] += 1;
            }
        }
    }

    fn complete_task(&mut self, tid: usize) {
        let pre = self.pre;
        let clock = self.clock;
        self.tasks[tid].done = true;
        self.completed += 1;
        if self.trace.is_some() {
            let task = &self.tasks[tid];
            let (kind, bytes) = match task.payload {
                Payload::Op(op_id) => (
                    match pre.op_kinds[op_id.index()] {
                        OpKind::Forward => TraceKind::Forward,
                        OpKind::Backward | OpKind::Drop => TraceKind::Backward,
                        OpKind::OptimizerStep => TraceKind::Optimizer,
                        OpKind::Send | OpKind::Recv => TraceKind::Send,
                        OpKind::SwapOut => TraceKind::SwapOut,
                        OpKind::SwapIn => TraceKind::SwapIn,
                    },
                    Bytes::ZERO,
                ),
                Payload::SwapOut(t) => (TraceKind::SwapOut, pre.bytes[t.index()]),
                Payload::SwapIn(t) => (TraceKind::SwapIn, pre.bytes[t.index()]),
            };
            let event = TraceEvent {
                kind,
                device: task.device.index(),
                start: task.start,
                end: task.end,
                bytes,
            };
            if let Some(trace) = &mut self.trace {
                trace.push(event);
            }
        }
        let s = sid(self.tasks[tid].device.index(), self.tasks[tid].stream);
        self.streams[s].busy = false;
        self.dirty[s] = true;

        match self.tasks[tid].payload {
            Payload::Op(op_id) => {
                for &i in &pre.op_frees[op_id.index()] {
                    if self.residency[i] == Loc::Home {
                        self.memory.free(self.home[i], pre.bytes[i], clock);
                        self.residency[i] = Loc::Freed;
                        self.mark_device(self.home[i].index());
                    }
                }
            }
            Payload::SwapOut(t) => {
                let i = t.index();
                self.active_swaps[i] -= 1;
                self.memory.free(self.home[i], pre.bytes[i], clock);
                self.mark_device(self.home[i].index());
                match self.directive[i].expect("swap task has directive") {
                    MemoryDirective::SwapToHost(tier) => {
                        match tier {
                            HostTier::Dram => self.memory.host_alloc(pre.bytes[i], clock),
                            HostTier::Nvme => {
                                self.memory.nvme_alloc(pre.bytes[i], clock);
                                self.nvme_traffic += pre.bytes[i];
                            }
                        }
                        self.residency[i] = Loc::Host;
                        self.host_traffic += pre.bytes[i];
                    }
                    MemoryDirective::SwapD2d(stripe) => {
                        for c in stripe.chunks() {
                            self.memory.alloc(c.target, c.bytes, clock);
                        }
                        self.residency[i] = Loc::Peers;
                        self.d2d_traffic += pre.bytes[i];
                    }
                    MemoryDirective::Recompute => unreachable!("recompute has no swap tasks"),
                }
            }
            Payload::SwapIn(t) => {
                let i = t.index();
                self.active_swaps[i] -= 1;
                match self.directive[i].expect("swap task has directive") {
                    MemoryDirective::SwapToHost(tier) => {
                        match tier {
                            HostTier::Dram => self.memory.host_free(pre.bytes[i]),
                            HostTier::Nvme => {
                                self.memory.nvme_free(pre.bytes[i]);
                                self.nvme_traffic += pre.bytes[i];
                            }
                        }
                        self.host_traffic += pre.bytes[i];
                    }
                    MemoryDirective::SwapD2d(stripe) => {
                        for c in stripe.chunks() {
                            self.memory.free(c.target, c.bytes, clock);
                            self.mark_device(c.target.index());
                        }
                        self.d2d_traffic += pre.bytes[i];
                    }
                    MemoryDirective::Recompute => unreachable!("recompute has no swap tasks"),
                }
                self.residency[i] = Loc::Home;
                // Landing Home shrinks dependents' start allocations on
                // this device.
                self.mark_device(self.home[i].index());
            }
        }

        let completed_stream = self.tasks[tid].stream;
        let dependents = std::mem::take(&mut self.tasks[tid].dependents);
        for &d in &dependents {
            self.tasks[d].deps -= 1;
            if self.tasks[d].deps == 0 {
                // Last dependency just resolved — remember when and by
                // what, for post-hoc stall attribution.
                self.tasks[d].ready_at = clock;
                self.tasks[d].dep_wait_is_copy = completed_stream == StreamKind::CopyIn;
                match self.tasks[d].payload {
                    Payload::SwapIn(t) | Payload::SwapOut(t) => {
                        self.runnable_swaps[t.index()] += 1;
                    }
                    Payload::Op(_) => {}
                }
            }
            self.note_ready(d);
        }
        self.tasks[tid].dependents = dependents;
    }

    /// Consumes a bound-aborted state into its recycled buffers only:
    /// no report exists (the run did not finish and is not a deadlock),
    /// but the allocations must still flow back to the arena.
    pub(crate) fn recycle(self) -> Buffers {
        let EngineState {
            tasks,
            streams,
            dirty,
            ready_set,
            heap,
            residency,
            triggers,
            home,
            stage_device,
            active_swaps,
            runnable_swaps,
            scratch_alloc,
            specs,
            ..
        } = self;
        Buffers {
            tasks,
            streams,
            dirty,
            ready_set,
            heap,
            residency,
            triggers,
            home,
            stage_device,
            active_swaps,
            runnable_swaps,
            scratch_alloc,
            specs,
        }
    }

    /// Consumes the state into a report, handing the recycled buffers
    /// back for the arena regardless of the outcome.
    pub(crate) fn into_report(
        self,
        graph: &TrainingGraph,
    ) -> (Result<SimReport, SimError>, Buffers) {
        let n_ops = graph.ops().len();
        let total = self.tasks.len();
        let oom = self.memory.oom().copied();
        let deadlock = self.completed < total && oom.is_none();
        if deadlock && verbosity().sim_debug {
            for (tid, task) in self.tasks.iter().enumerate() {
                if !task.done {
                    eprintln!(
                        "[deadlock] task {tid}: {:?} dev={} stream={:?} deps={} trig={} started={}",
                        task.payload,
                        task.device.index(),
                        task.stream,
                        task.deps,
                        task.trigger_fired,
                        task.started
                    );
                }
            }
        }
        let makespan = self
            .tasks
            .iter()
            .filter(|t| t.done)
            .map(|t| t.end)
            .fold(0.0, f64::max);
        let metrics = (!deadlock && self.metrics).then(|| self.build_metrics(makespan));
        let op_start: Vec<Secs> = self.tasks[..n_ops].iter().map(|t| t.start).collect();
        let op_end: Vec<Secs> = self.tasks[..n_ops].iter().map(|t| t.end).collect();
        let nvme_peak = self.memory.nvme_peak();
        let (d2d_traffic, host_traffic, nvme_traffic) =
            (self.d2d_traffic, self.host_traffic, self.nvme_traffic);
        let (recompute_time, completed) = (self.recompute_time, self.completed);
        let EngineState {
            tasks,
            streams,
            dirty,
            ready_set,
            heap,
            memory,
            residency,
            triggers,
            home,
            stage_device,
            active_swaps,
            runnable_swaps,
            scratch_alloc,
            specs,
            trace,
            ..
        } = self;
        let bufs = Buffers {
            tasks,
            streams,
            dirty,
            ready_set,
            heap,
            residency,
            triggers,
            home,
            stage_device,
            active_swaps,
            runnable_swaps,
            scratch_alloc,
            specs,
        };
        if deadlock {
            return (Err(SimError::Deadlock { completed, total }), bufs);
        }
        let (device_peak, host_peak, oom, timelines) = memory.into_parts();
        (
            Ok(SimReport {
                makespan,
                op_start,
                op_end,
                device_peak,
                host_peak,
                nvme_peak,
                oom,
                d2d_traffic,
                host_traffic,
                nvme_traffic,
                recompute_time,
                timelines,
                trace,
                metrics,
            }),
            bufs,
        )
    }

    /// Assembles [`SimMetrics`] from the completed task list. Runs once,
    /// at report time, only for metrics-enabled configs — the event loop
    /// itself carries no metric bookkeeping beyond the per-task
    /// `ready_at`/`dep_wait_is_copy` stores.
    fn build_metrics(&self, makespan: Secs) -> SimMetrics {
        let pre = self.pre;
        let mut recorder = MetricsRecorder::new();

        // --- Per-device stream busy time + task-duration histograms -----
        let mut busy: Vec<StreamBusy> = vec![StreamBusy::default(); self.gpu_count];
        for task in self.tasks.iter().filter(|t| t.done) {
            let b = &mut busy[task.device.index()];
            let (slot, hist): (&mut Secs, &str) = match task.stream {
                StreamKind::Compute => (&mut b.compute, "sim.task_duration.compute"),
                StreamKind::Comm => (&mut b.comm, "sim.task_duration.comm"),
                StreamKind::CopyOut => (&mut b.copy_out, "sim.task_duration.copy_out"),
                StreamKind::CopyIn => (&mut b.copy_in, "sim.task_duration.copy_in"),
            };
            *slot += task.duration;
            recorder.observe(hist, task.duration);
            match task.payload {
                Payload::Op(_) => recorder.inc("sim.tasks.ops"),
                Payload::SwapOut(_) => recorder.inc("sim.tasks.swap_out"),
                Payload::SwapIn(_) => recorder.inc("sim.tasks.swap_in"),
            }
        }

        // --- Stall attribution ------------------------------------------
        // Tile each device's compute-stream timeline [0, makespan] with
        // the done tasks (FIFO, so non-overlapping): the gap before a
        // task splits at `ready_at` into dependency wait (copy-in vs
        // other producer) and memory/back-pressure wait; the tail after
        // the last task is drain. The tiling telescopes, so per device
        // busy.compute + stalls.total() equals the makespan exactly.
        let mut devices: Vec<DeviceMetrics> = Vec::with_capacity(self.gpu_count);
        for (dev, dev_busy) in busy.iter().enumerate() {
            let mut timeline: Vec<&Task> = self
                .tasks
                .iter()
                .filter(|t| t.done && t.device.index() == dev && t.stream == StreamKind::Compute)
                .collect();
            timeline.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite start times"));
            let mut stalls = StallBreakdown::default();
            let mut prev_end = 0.0_f64;
            for task in &timeline {
                if task.start > prev_end {
                    let dep_until = task.ready_at.clamp(prev_end, task.start);
                    let dep_cause = if task.dep_wait_is_copy {
                        StallCause::WaitingOnCopyIn
                    } else {
                        StallCause::WaitingOnDependency
                    };
                    stalls.attribute(dep_cause, dep_until - prev_end);
                    stalls.attribute(StallCause::WaitingOnMemory, task.start - dep_until);
                }
                prev_end = task.end;
            }
            stalls.attribute(StallCause::Drained, (makespan - prev_end).max(0.0));
            devices.push(DeviceMetrics {
                device: DeviceId(dev),
                busy: *dev_busy,
                stalls,
            });
            recorder.observe("sim.device_busy.compute", dev_busy.compute);
        }

        // --- Per-link traffic -------------------------------------------
        // Attributed post-hoc from the done swap tasks by directive:
        // host swaps occupy the home device's PCIe lane (NVMe-tier swaps
        // additionally the drive), D2D swaps occupy one NVLink pair per
        // stripe chunk (chunks move in parallel on distinct links).
        let mut links: BTreeMap<LinkKey, (Bytes, Secs)> = BTreeMap::new();
        let mut tally = |key: LinkKey, bytes: Bytes, secs: Secs| {
            let e = links.entry(key).or_insert((Bytes::ZERO, 0.0));
            e.0 += bytes;
            e.1 += secs;
        };
        for task in self.tasks.iter().filter(|t| t.done) {
            let t = match task.payload {
                Payload::SwapOut(t) | Payload::SwapIn(t) => t,
                Payload::Op(_) => continue,
            };
            let i = t.index();
            let home = self.home[i];
            match self.directive[i].expect("swap task has directive") {
                MemoryDirective::SwapToHost(HostTier::Dram) => {
                    tally(LinkKey::Pcie(home), pre.bytes[i], task.duration);
                }
                MemoryDirective::SwapToHost(HostTier::Nvme) => {
                    tally(LinkKey::Pcie(home), pre.bytes[i], task.duration);
                    tally(LinkKey::Nvme, pre.bytes[i], task.duration);
                }
                MemoryDirective::SwapD2d(stripe) => {
                    for c in stripe.chunks() {
                        tally(LinkKey::nvlink(home, c.target), c.bytes, task.duration);
                    }
                }
                MemoryDirective::Recompute => unreachable!("recompute has no swap tasks"),
            }
        }
        let links: Vec<LinkMetrics> = links
            .into_iter()
            .map(|(link, (bytes, busy))| LinkMetrics {
                link,
                bytes,
                busy,
                occupancy: if makespan > 0.0 { busy / makespan } else { 0.0 },
            })
            .collect();

        recorder.add("sim.tasks.completed", self.completed as u64);
        recorder.add("sim.tasks.total", self.tasks.len() as u64);
        recorder.add("sim.evictions", self.evictions as u64);
        recorder.add("sim.refetches", self.refetches as u64);
        recorder.set_gauge("sim.makespan", makespan);
        recorder.set_gauge("sim.recompute_time", self.recompute_time);

        SimMetrics {
            total_time: makespan,
            devices,
            links,
            evictions: self.evictions as u64,
            refetches: self.refetches as u64,
            recorder: recorder.snapshot(),
        }
    }
}

//! The discrete-event execution engine.
//!
//! Models each GPU as four in-flight lanes — a compute stream, a
//! communication stream and two copy engines (swap-in / swap-out), the
//! same stream layout the paper's runtime builds with `cudaStreamCreate`
//! (§III-E). Swap directives expand into copy tasks chained to their
//! producer/consumer ops; recomputation folds into consumer durations;
//! memory is tracked per device with OOM detection.

use crate::device_map::DeviceMap;
use crate::memory::MemoryTracker;
use crate::metrics::{DeviceMetrics, LinkMetrics, SimMetrics, StreamBusy};
use crate::report::SimReport;
use crate::trace::{TraceEvent, TraceKind};
use mpress_compaction::{HostTier, InstrumentationPlan, MemoryDirective, PlanValidationError};
use mpress_graph::{OpId, OpKind, TensorId, TrainingGraph};
use mpress_hw::{Bytes, DeviceId, LinkKey, Machine, Secs};
use mpress_obs::{verbosity, MetricsRecorder, StallBreakdown, StallCause};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::error::Error;
use std::fmt;

/// Simulation options.
///
/// Marked `#[non_exhaustive]`: construct via [`SimConfig::default`] and
/// the chainable setters so new options can be added without breaking
/// downstream crates.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct SimConfig {
    /// Stop at the first out-of-memory event (the default). When false the
    /// run continues so the full overflow magnitude is observable.
    pub strict_oom: bool,
    /// Record per-device `(time, bytes)` usage timelines.
    pub track_timeline: bool,
    /// Stall tasks whose home-device allocation would overflow (the
    /// real-runtime behavior). Disable for *profiling* runs that must
    /// observe the unconstrained memory demand.
    pub memory_gate: bool,
    /// Record a [`TraceEvent`] per executed task (exportable to the
    /// Chrome tracing format via [`crate::trace::to_chrome_trace`]).
    pub trace: bool,
    /// Collect [`SimMetrics`] (per-stream busy time, stall attribution,
    /// per-link traffic) into [`SimReport::metrics`]. Off by default:
    /// disabled runs skip all metric assembly.
    pub metrics: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            strict_oom: true,
            track_timeline: false,
            memory_gate: true,
            trace: false,
            metrics: false,
        }
    }
}

impl SimConfig {
    /// Sets [`strict_oom`](Self::strict_oom).
    pub fn strict_oom(mut self, on: bool) -> Self {
        self.strict_oom = on;
        self
    }

    /// Sets [`track_timeline`](Self::track_timeline).
    pub fn track_timeline(mut self, on: bool) -> Self {
        self.track_timeline = on;
        self
    }

    /// Sets [`memory_gate`](Self::memory_gate).
    pub fn memory_gate(mut self, on: bool) -> Self {
        self.memory_gate = on;
        self
    }

    /// Sets [`trace`](Self::trace).
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Sets [`metrics`](Self::metrics).
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }
}

/// Errors that abort a simulation before it starts.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The instrumentation plan failed validation against the graph.
    PlanInvalid(PlanValidationError),
    /// The plan is inconsistent with the machine or graph in a way only
    /// the simulator can see (unreachable stripe targets, swapping a
    /// multi-writer tensor, ...).
    BadPlan(String),
    /// The device map is not a permutation covering every stage.
    BadDeviceMap(String),
    /// The task graph stalled — a dependency cycle introduced by
    /// instrumentation (indicates a planner bug).
    Deadlock {
        /// Tasks completed before the stall.
        completed: usize,
        /// Total tasks.
        total: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PlanInvalid(e) => write!(f, "invalid instrumentation plan: {e}"),
            SimError::BadPlan(msg) => write!(f, "unusable instrumentation plan: {msg}"),
            SimError::BadDeviceMap(msg) => write!(f, "bad device map: {msg}"),
            SimError::Deadlock { completed, total } => {
                write!(f, "simulation deadlock after {completed}/{total} tasks")
            }
        }
    }
}

impl Error for SimError {}

impl From<PlanValidationError> for SimError {
    fn from(e: PlanValidationError) -> Self {
        SimError::PlanInvalid(e)
    }
}

/// Total-ordered wrapper for event times (panics on NaN by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdTime(Secs);

impl Eq for OrdTime {}

impl PartialOrd for OrdTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("event times are finite")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum StreamKind {
    Compute,
    Comm,
    CopyOut,
    CopyIn,
}

/// Event-queue ordering for task completions. `BinaryHeap` breaks ties
/// by whatever order equal keys were pushed, so the key must be a total
/// order over *all* pending completions: time first, then stream kind
/// (compute before comm before copies), then task sequence number.
/// This makes traces and reports stable — a prerequisite for asserting
/// parallel == serial plan search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CompletionKey {
    time: OrdTime,
    stream: StreamKind,
    seq: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Payload {
    Op(OpId),
    SwapOut(TensorId),
    SwapIn(TensorId),
}

#[derive(Debug, Clone)]
struct Task {
    payload: Payload,
    device: DeviceId,
    stream: StreamKind,
    duration: Secs,
    deps: usize,
    trigger_fired: bool,
    dependents: Vec<usize>,
    started: bool,
    done: bool,
    /// Whether the task currently sits in its stream's ready list
    /// (non-FIFO streams only; avoids duplicate entries).
    in_ready: bool,
    /// Scheduling priority on non-FIFO streams: swap-ins carry their
    /// consumer's task id so prefetches land in execution order (fetching
    /// a later layer's tensor first can deadlock the earlier one out of
    /// memory). Lower runs first.
    priority: usize,
    /// For swap-ins: the (device, position) on the consumer's compute
    /// stream before which the fetch may not start — demand-window
    /// admission that stops far-future prefetches from squatting on
    /// memory the near-term work needs.
    admit: Option<(usize, usize)>,
    start: Secs,
    end: Secs,
    /// When the last dependency resolved (0 for tasks born ready). Feeds
    /// stall attribution: the gap before `ready_at` is dependency wait,
    /// the gap after is memory/back-pressure wait.
    ready_at: Secs,
    /// Whether the dependency that resolved last was a swap-in copy —
    /// splits dependency wait into exposed-copy vs pipeline stall.
    dep_wait_is_copy: bool,
}

impl Task {
    fn is_ready(&self) -> bool {
        !self.started && self.deps == 0 && self.trigger_fired
    }
}

#[derive(Debug)]
struct Stream {
    /// In-order (FIFO) streams model CUDA compute/comm queues; copy
    /// streams pick any ready task.
    fifo: bool,
    queue: Vec<usize>,
    cursor: usize,
    busy: bool,
    /// Dependency-ready, unstarted tasks (non-FIFO streams only) —
    /// bookkeeping that keeps scheduling O(ready) instead of O(queued).
    ready: Vec<usize>,
}

impl Stream {
    fn new(fifo: bool) -> Self {
        Stream {
            fifo,
            queue: Vec::new(),
            cursor: 0,
            busy: false,
            ready: Vec::new(),
        }
    }
}

/// Where a tensor currently lives.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Loc {
    /// Not materialized yet (dynamic tensors before their producer runs).
    Unmaterialized,
    /// On its home GPU.
    Home,
    /// In host pinned memory.
    Host,
    /// Striped across peer GPUs.
    Peers,
    /// Released.
    Freed,
}

/// Executes one lowered training window against a machine model.
///
/// # Example
///
/// ```no_run
/// use mpress_sim::{Simulator, SimConfig, DeviceMap};
/// use mpress_compaction::InstrumentationPlan;
/// # fn demo(machine: &mpress_hw::Machine, graph: &mpress_graph::TrainingGraph) {
/// let plan = InstrumentationPlan::new();
/// let sim = Simulator::new(machine, graph, &plan, DeviceMap::identity(graph.n_stages()));
/// let report = sim.run().expect("consistent inputs");
/// println!("makespan: {:.3}s", report.makespan);
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    machine: &'a Machine,
    graph: &'a TrainingGraph,
    plan: &'a InstrumentationPlan,
    device_map: DeviceMap,
    config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with default config.
    pub fn new(
        machine: &'a Machine,
        graph: &'a TrainingGraph,
        plan: &'a InstrumentationPlan,
        device_map: DeviceMap,
    ) -> Self {
        Simulator {
            machine,
            graph,
            plan,
            device_map,
            config: SimConfig::default(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for inconsistent inputs or instrumentation
    /// deadlocks. An out-of-memory *model outcome* is NOT an error: it is
    /// reported via [`SimReport::oom`].
    pub fn run(&self) -> Result<SimReport, SimError> {
        self.plan.validate(self.graph)?;
        self.validate_inputs()?;
        let mut state = EngineState::build(
            self.machine,
            self.graph,
            self.plan,
            &self.device_map,
            self.config,
        )?;
        state.run(self.config.strict_oom);
        state.into_report(self.graph)
    }

    fn validate_inputs(&self) -> Result<(), SimError> {
        if self.device_map.len() != self.graph.n_stages() {
            return Err(SimError::BadDeviceMap(format!(
                "map covers {} stages, graph has {}",
                self.device_map.len(),
                self.graph.n_stages()
            )));
        }
        for stage in 0..self.graph.n_stages() {
            let d = self.device_map.device_of(stage);
            if d.index() >= self.machine.gpu_count() {
                return Err(SimError::BadDeviceMap(format!(
                    "{d} beyond machine's {} GPUs",
                    self.machine.gpu_count()
                )));
            }
        }
        let mut writer_counts = vec![0usize; self.graph.tensors().len()];
        for op in self.graph.ops() {
            for w in &op.writes {
                writer_counts[w.index()] += 1;
            }
        }
        for (t, directive) in self.plan.iter() {
            let tensor = self.graph.tensor(t);
            let writers = writer_counts[t.index()];
            match directive {
                MemoryDirective::SwapToHost(_) | MemoryDirective::SwapD2d(_) => {
                    if writers > 1 {
                        return Err(SimError::BadPlan(format!(
                            "tensor {t} is written by {writers} ops and cannot swap"
                        )));
                    }
                }
                MemoryDirective::Recompute => {}
            }
            if let MemoryDirective::SwapD2d(stripe) = directive {
                let home = self.device_map.device_of(tensor.stage);
                stripe
                    .validate(home, self.machine.topology())
                    .map_err(SimError::BadPlan)?;
            }
        }
        Ok(())
    }
}

/// All mutable engine state for one run. Borrows the instrumentation
/// plan (`'p`) so directives and stripe layouts are referenced, not
/// cloned, during task-graph build.
struct EngineState<'p> {
    tasks: Vec<Task>,
    streams: BTreeMap<(usize, StreamKind), Stream>,
    heap: BinaryHeap<Reverse<CompletionKey>>,
    clock: Secs,
    memory: MemoryTracker,
    residency: Vec<Loc>,
    /// op task id (dense, `< n_ops`) -> swap-in task ids it triggers on
    /// start.
    triggers: Vec<Vec<usize>>,
    /// tensor -> bytes (cached).
    bytes: Vec<Bytes>,
    /// tensor home device.
    home: Vec<DeviceId>,
    /// directive lookup by tensor index.
    directive: Vec<Option<&'p MemoryDirective>>,
    /// recompute compute-time of each tensor (layer forward time).
    recompute_cost: Vec<Secs>,
    /// Per-op tensor sets copied out of the graph (tensor indices).
    op_writes: Vec<Vec<usize>>,
    op_reads: Vec<Vec<usize>>,
    op_frees: Vec<Vec<usize>>,
    d2d_traffic: Bytes,
    host_traffic: Bytes,
    nvme_traffic: Bytes,
    recompute_time: Secs,
    completed: usize,
    memory_gate: bool,
    /// tensor index -> consumer task ids (populated for swap-directive
    /// tensors; empty elsewhere).
    swap_consumers: Vec<Vec<usize>>,
    /// op task id (dense, `< n_ops`) -> (stage, position) on its
    /// stage's compute sequence; `None` for non-compute ops.
    seq_pos: Vec<Option<(usize, usize)>>,
    /// Per-stage ordered compute-op task ids.
    compute_seq: Vec<Vec<usize>>,
    /// stage -> hosting device index.
    stage_device: Vec<usize>,
    /// tensor index -> number of swap tasks currently *running* (started,
    /// not done); eviction requires zero — pending-but-unrunnable legs
    /// (e.g. a trailing export gated on a far-future consumer) must not
    /// pin a prefetched tensor in memory.
    active_swaps: Vec<u32>,
    /// tensor index -> number of swap tasks that are unstarted but already
    /// runnable (dependencies met). Evicting such a tensor would duplicate
    /// an imminent export, so eviction also requires zero here.
    runnable_swaps: Vec<u32>,
    evictions: usize,
    /// Refetch copies scheduled for evicted tensors with a future reader.
    refetches: usize,
    pcie_curve: mpress_hw::BandwidthCurve,
    trace: Option<Vec<TraceEvent>>,
    op_kinds: Vec<OpKind>,
    /// Assemble [`SimMetrics`] at report time (post-hoc; the hot loop only
    /// pays the two per-task stores `ready_at`/`dep_wait_is_copy`).
    metrics: bool,
    gpu_count: usize,
}

impl<'p> EngineState<'p> {
    fn build(
        machine: &Machine,
        graph: &TrainingGraph,
        plan: &'p InstrumentationPlan,
        device_map: &DeviceMap,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        let n_ops = graph.ops().len();
        let n_tensors = graph.tensors().len();

        let bytes: Vec<Bytes> = graph.tensors().iter().map(|t| t.bytes).collect();
        let home: Vec<DeviceId> = graph
            .tensors()
            .iter()
            .map(|t| device_map.device_of(t.stage))
            .collect();
        let mut directive: Vec<Option<&'p MemoryDirective>> = vec![None; n_tensors];
        for (t, d) in plan.iter() {
            directive[t.index()] = Some(d);
        }

        // Per-tensor recomputation cost: the producing layer's forward
        // time, recovered from the producer op's sub-event offsets.
        let mut recompute_cost = vec![0.0_f64; n_tensors];
        for op in graph.ops() {
            if op.kind != OpKind::Forward || op.sub_events.is_empty() {
                continue;
            }
            let mut events: Vec<_> = op.sub_events.iter().collect();
            events.sort_by(|a, b| a.offset.partial_cmp(&b.offset).expect("finite offsets"));
            let mut prev = 0.0;
            for e in events {
                recompute_cost[e.tensor.index()] = (e.offset - prev).max(0.0);
                prev = e.offset;
            }
        }
        // Tensors without sub-events recompute by re-running their whole
        // producing op.
        for op in graph.ops() {
            if op.kind != OpKind::Forward {
                continue;
            }
            let missing: Vec<TensorId> = op
                .writes
                .iter()
                .copied()
                .filter(|t| op.sub_event_offset(*t).is_none())
                .collect();
            for t in &missing {
                recompute_cost[t.index()] = op.duration;
            }
        }

        // --- Op tasks (task id == op index) ---------------------------------
        let mut tasks: Vec<Task> = graph
            .ops()
            .iter()
            .map(|op| {
                let stream = match op.kind {
                    OpKind::Send | OpKind::Recv => StreamKind::Comm,
                    OpKind::SwapOut => StreamKind::CopyOut,
                    OpKind::SwapIn => StreamKind::CopyIn,
                    _ => StreamKind::Compute,
                };
                let mut duration = op.duration;
                // Recomputation folds into the consumer's compute time.
                for &r in &op.reads {
                    if matches!(directive[r.index()], Some(MemoryDirective::Recompute)) {
                        duration += recompute_cost[r.index()];
                    }
                }
                Task {
                    payload: Payload::Op(op.id),
                    device: device_map.device_of(op.stage),
                    stream,
                    duration,
                    deps: 0,
                    trigger_fired: true,
                    dependents: Vec::new(),
                    started: false,
                    done: false,
                    in_ready: false,
                    priority: usize::MAX,
                    admit: None,
                    start: 0.0,
                    end: 0.0,
                    ready_at: 0.0,
                    dep_wait_is_copy: false,
                }
            })
            .collect();
        for &(a, b) in graph.cross_deps() {
            tasks[a.index()].dependents.push(b.index());
            tasks[b.index()].deps += 1;
        }

        // Per-stage compute sequences and each op's position in them —
        // prefetch triggers anchor a few ops upstream of the consumer.
        let mut compute_seq: Vec<Vec<usize>> = Vec::with_capacity(graph.n_stages());
        let mut seq_pos: Vec<Option<(usize, usize)>> = vec![None; n_ops];
        for stage in 0..graph.n_stages() {
            let seq: Vec<usize> = graph
                .stage_program(stage)
                .iter()
                .map(|id| id.index())
                .filter(|&i| tasks[i].stream == StreamKind::Compute)
                .collect();
            for (pos, &i) in seq.iter().enumerate() {
                seq_pos[i] = Some((stage, pos));
            }
            compute_seq.push(seq);
        }
        // The anchor op whose *start* leaves ~1.5x the swap-in time of
        // compute ahead of `consumer` — enough lead for the copy to land.
        let prefetch_anchor = |consumer: usize, in_dur: Secs, tasks: &[Task]| -> Option<usize> {
            let (stage, pos) = seq_pos[consumer]?;
            let seq = &compute_seq[stage];
            let mut lead = 0.0;
            let mut anchor = None;
            for j in (0..pos).rev() {
                anchor = Some(seq[j]);
                lead += tasks[seq[j]].duration;
                if lead >= 1.5 * in_dur {
                    break;
                }
            }
            anchor
        };

        // --- Swap tasks ------------------------------------------------------
        // One pass over the ops gives producer/consumer tables; scanning
        // per directive would be quadratic in graph size.
        let mut producer_of: Vec<Option<OpId>> = vec![None; n_tensors];
        let mut consumers_of: Vec<Vec<OpId>> = vec![Vec::new(); n_tensors];
        for op in graph.ops() {
            for w in &op.writes {
                producer_of[w.index()].get_or_insert(op.id);
            }
            for r in &op.reads {
                consumers_of[r.index()].push(op.id);
            }
        }
        let mut triggers: Vec<Vec<usize>> = vec![Vec::new(); n_ops];
        let mut swap_consumers: Vec<Vec<usize>> = vec![Vec::new(); n_tensors];
        let mut swap_legs: Vec<(TensorId, bool /*is_in*/, usize /*task id*/)> = Vec::new();
        for (t, d) in plan.iter() {
            let (out_dur, in_dur) = match d {
                MemoryDirective::Recompute => continue,
                MemoryDirective::SwapToHost(HostTier::Dram) => {
                    let one_way = machine.pcie_transfer_time(bytes[t.index()]);
                    (one_way, one_way)
                }
                MemoryDirective::SwapToHost(HostTier::Nvme) => {
                    // GPU->host->NVMe staging pipelines; the slower leg
                    // dominates each direction.
                    let pcie = machine.pcie_transfer_time(bytes[t.index()]);
                    let out = pcie.max(machine.nvme_transfer_time(bytes[t.index()], true));
                    let inn = pcie.max(machine.nvme_transfer_time(bytes[t.index()], false));
                    (out, inn)
                }
                MemoryDirective::SwapD2d(stripe) => (stripe.one_way_time(), stripe.one_way_time()),
            };
            let tensor = graph.tensor(t);
            let dev = home[t.index()];
            let producer = producer_of[t.index()];
            let mut consumers: Vec<OpId> = std::mem::take(&mut consumers_of[t.index()]);
            consumers.sort_unstable();
            swap_consumers[t.index()] = consumers.iter().map(|c| c.index()).collect();
            let is_static = tensor.kind.is_static();

            let new_task =
                |tasks: &mut Vec<Task>, payload: Payload, stream: StreamKind, duration: Secs| {
                    tasks.push(Task {
                        payload,
                        device: dev,
                        stream,
                        duration,
                        deps: 0,
                        trigger_fired: true,
                        dependents: Vec::new(),
                        started: false,
                        done: false,
                        in_ready: false,
                        priority: usize::MAX,
                        admit: None,
                        start: 0.0,
                        end: 0.0,
                        ready_at: 0.0,
                        dep_wait_is_copy: false,
                    });
                    tasks.len() - 1
                };

            // Static tensors start swapped out; dynamic ones swap out after
            // their producer.
            let mut last_out: Option<usize> = if is_static {
                None
            } else {
                let out = new_task(
                    &mut tasks,
                    Payload::SwapOut(t),
                    StreamKind::CopyOut,
                    out_dur,
                );
                swap_legs.push((t, false, out));
                if let Some(p) = producer {
                    tasks[p.index()].dependents.push(out);
                    tasks[out].deps += 1;
                }
                Some(out)
            };

            for (k, &c) in consumers.iter().enumerate() {
                let inn = new_task(&mut tasks, Payload::SwapIn(t), StreamKind::CopyIn, in_dur);
                swap_legs.push((t, true, inn));
                if let Some(out) = last_out {
                    tasks[out].dependents.push(inn);
                    tasks[inn].deps += 1;
                }
                // Prefetch trigger: an upstream compute op whose start
                // leaves enough compute time to hide the copy. The same
                // position doubles as the admission gate.
                if let Some(anchor) = prefetch_anchor(c.index(), in_dur, &tasks) {
                    tasks[inn].trigger_fired = false;
                    triggers[anchor].push(inn);
                    tasks[inn].admit = seq_pos[anchor]
                        .map(|(stage, pos)| (device_map.device_of(stage).index(), pos));
                }
                tasks[inn].dependents.push(c.index());
                tasks[inn].priority = c.index();
                tasks[c.index()].deps += 1;

                // Re-export after the consumer. Dynamic tensors are freed
                // by their last consumer, but statics persist — without a
                // trailing export, consumed optimizer states would pile up
                // on the device and crowd out the next layer's swap-in.
                if k + 1 < consumers.len() || is_static {
                    let out = new_task(
                        &mut tasks,
                        Payload::SwapOut(t),
                        StreamKind::CopyOut,
                        out_dur,
                    );
                    swap_legs.push((t, false, out));
                    tasks[c.index()].dependents.push(out);
                    tasks[out].deps += 1;
                    last_out = Some(out);
                } else {
                    last_out = None;
                }
            }
        }
        let mut runnable_swaps = vec![0u32; n_tensors];
        for &(t, _, tid) in &swap_legs {
            if tasks[tid].deps == 0 {
                runnable_swaps[t.index()] += 1;
            }
        }

        // --- Streams ----------------------------------------------------------
        let mut streams: BTreeMap<(usize, StreamKind), Stream> = BTreeMap::new();
        for dev in 0..machine.gpu_count() {
            streams.insert((dev, StreamKind::Compute), Stream::new(true));
            streams.insert((dev, StreamKind::Comm), Stream::new(true));
            streams.insert((dev, StreamKind::CopyOut), Stream::new(false));
            streams.insert((dev, StreamKind::CopyIn), Stream::new(false));
        }
        // Compute/comm queues follow the stage program order; copy queues
        // follow creation order (scan-ready anyway).
        for stage in 0..graph.n_stages() {
            for id in graph.stage_program(stage) {
                let tid = id.index();
                let key = (tasks[tid].device.index(), tasks[tid].stream);
                streams
                    .get_mut(&key)
                    .expect("stream exists")
                    .queue
                    .push(tid);
            }
        }
        for (tid, task) in tasks.iter().enumerate().skip(n_ops) {
            let key = (task.device.index(), task.stream);
            streams
                .get_mut(&key)
                .expect("stream exists")
                .queue
                .push(tid);
        }
        // Seed the non-FIFO ready lists with already-eligible tasks.
        for (tid, task) in tasks.iter_mut().enumerate() {
            if task.is_ready() {
                let key = (task.device.index(), task.stream);
                let stream = streams.get_mut(&key).expect("stream exists");
                if !stream.fifo {
                    stream.ready.push(tid);
                    task.in_ready = true;
                }
            }
        }

        // --- Initial memory ----------------------------------------------------
        let mut memory = MemoryTracker::new(
            machine.gpu_count(),
            machine.gpu().usable_memory(),
            machine.cpu().memory,
            machine.nvme().map_or(Bytes::ZERO, |nv| nv.capacity),
            config.track_timeline,
        );
        let mut residency = vec![Loc::Unmaterialized; n_tensors];
        for tensor in graph.tensors() {
            let i = tensor.id.index();
            if !tensor.kind.is_static() {
                continue;
            }
            match directive[i] {
                None | Some(MemoryDirective::Recompute) => {
                    memory.alloc(home[i], bytes[i], 0.0);
                    residency[i] = Loc::Home;
                }
                Some(MemoryDirective::SwapToHost(HostTier::Dram)) => {
                    memory.host_alloc(bytes[i], 0.0);
                    residency[i] = Loc::Host;
                }
                Some(MemoryDirective::SwapToHost(HostTier::Nvme)) => {
                    memory.nvme_alloc(bytes[i], 0.0);
                    residency[i] = Loc::Host;
                }
                Some(MemoryDirective::SwapD2d(stripe)) => {
                    for c in stripe.chunks() {
                        memory.alloc(c.target, c.bytes, 0.0);
                    }
                    residency[i] = Loc::Peers;
                }
            }
        }

        let op_writes = graph
            .ops()
            .iter()
            .map(|o| o.writes.iter().map(|t| t.index()).collect())
            .collect();
        let op_reads = graph
            .ops()
            .iter()
            .map(|o| o.reads.iter().map(|t| t.index()).collect())
            .collect();
        let op_frees = graph
            .ops()
            .iter()
            .map(|o| o.frees.iter().map(|t| t.index()).collect())
            .collect();

        Ok(EngineState {
            tasks,
            streams,
            heap: BinaryHeap::new(),
            clock: 0.0,
            memory,
            residency,
            triggers,
            bytes,
            home,
            directive,
            recompute_cost,
            op_writes,
            op_reads,
            op_frees,
            d2d_traffic: Bytes::ZERO,
            host_traffic: Bytes::ZERO,
            nvme_traffic: Bytes::ZERO,
            recompute_time: 0.0,
            completed: 0,
            memory_gate: config.memory_gate,
            swap_consumers,
            seq_pos,
            compute_seq,
            stage_device: (0..graph.n_stages())
                .map(|st| device_map.device_of(st).index())
                .collect(),
            active_swaps: vec![0; n_tensors],
            runnable_swaps,
            evictions: 0,
            refetches: 0,
            pcie_curve: *machine.pcie(),
            trace: config.trace.then(Vec::new),
            op_kinds: graph.ops().iter().map(|o| o.kind).collect(),
            metrics: config.metrics,
            gpu_count: machine.gpu_count(),
        })
    }

    fn run(&mut self, strict_oom: bool) {
        let keys: Vec<(usize, StreamKind)> = self.streams.keys().copied().collect();
        // Snapshot: evictions append tasks, so a cap computed on the live
        // length would recede forever and allow an unbounded evict/refetch
        // loop under hopeless memory pressure.
        let eviction_cap = 4 * self.tasks.len();
        loop {
            // Start everything startable at the current clock. Tasks whose
            // home-device allocation would not fit stay queued — this is
            // the back-pressure that makes slow swap-outs *delay* the
            // computation instead of overflowing it.
            loop {
                let mut progress = false;
                for key in &keys {
                    if self.streams[key].busy {
                        continue;
                    }
                    // Start immediately so this task's allocations are
                    // visible to the next stream's memory-fit check.
                    if let Some(tid) = self.pick_startable(key) {
                        let stream = self.streams.get_mut(key).expect("stream exists");
                        stream.busy = true;
                        if stream.fifo {
                            stream.cursor += 1;
                        }
                        self.start_task(tid);
                        progress = true;
                    }
                }
                if !progress {
                    break;
                }
            }
            if strict_oom && self.memory.oom().is_some() {
                break;
            }
            if let Some(Reverse(key)) = self.heap.pop() {
                self.clock = key.time.0;
                self.complete_task(key.seq);
                continue;
            }
            // Quiescent. Done, or stalled on memory/dependencies.
            if self.completed >= self.tasks.len() {
                break;
            }
            let blocked = (0..self.tasks.len()).find_map(|tid| {
                if !self.tasks[tid].is_ready() || !self.admitted(tid) {
                    return None;
                }
                let (dev, need) = self.start_need(tid);
                (!self.memory.fits(dev, need)).then_some((tid, dev, need))
            });
            let Some((blocked_tid, dev, need)) = blocked else {
                break; // dependency stall — surfaces as Deadlock
            };
            // The memory manager's move: evict prefetched/idle swappable
            // tensors (furthest next use first, vDNN-style) to unblock the
            // head of the compute queue. If nothing can be evicted the
            // stall is a genuine OOM.
            if self.evictions < eviction_cap && self.try_evict(blocked_tid, dev, need) {
                continue;
            }
            if verbosity().sim_debug {
                let t = &self.tasks[blocked_tid];
                eprintln!(
                    "[stall] t={:.3}s dev={} need={} used={} cap={} payload={:?} evictions={} completed={}/{}",
                    self.clock, dev.index(), need, self.memory.used(dev),
                    self.memory.capacity(), t.payload, self.evictions,
                    self.completed, self.tasks.len()
                );
                let mut resident: Vec<(usize, Bytes)> = (0..self.residency.len())
                    .filter(|&i| self.residency[i] == Loc::Home && self.home[i] == dev)
                    .map(|i| (i, self.bytes[i]))
                    .collect();
                resident.sort_by_key(|&(_, b)| std::cmp::Reverse(b));
                for (i, b) in resident.iter().take(8) {
                    eprintln!(
                        "  resident t{i}: {b} directive={:?} pending={}",
                        self.directive[*i].map(|d| d.technique()),
                        self.active_swaps[*i]
                    );
                }
            }
            self.memory.record_stall_oom(dev, need, self.clock);
            break;
        }
    }

    /// Re-exports Home-resident swap-directive tensors on `dev` until
    /// `need` bytes could fit, preferring tensors whose next use is
    /// furthest away. Returns false when no candidate exists.
    fn try_evict(&mut self, blocked_tid: usize, dev: DeviceId, need: Bytes) -> bool {
        // Candidates: swap-directive tensors resident on `dev` with no
        // started-but-unfinished consumer; keyed by their next unstarted
        // consumer (None = no future use, evict first).
        let mut candidates: Vec<(usize, Option<usize>)> = Vec::new();
        for i in 0..self.residency.len() {
            if self.residency[i] != Loc::Home || self.home[i] != dev {
                continue;
            }
            let is_swap = matches!(
                self.directive[i],
                Some(MemoryDirective::SwapToHost(_)) | Some(MemoryDirective::SwapD2d(_))
            );
            if !is_swap {
                continue;
            }
            if self.active_swaps[i] != 0 || self.runnable_swaps[i] != 0 {
                continue; // a copy is in flight or imminently scheduled
            }
            let consumers = &self.swap_consumers[i];
            if consumers
                .iter()
                .any(|&c| self.tasks[c].started && !self.tasks[c].done)
            {
                continue; // actively being read
            }
            let next = consumers
                .iter()
                .copied()
                .filter(|&c| !self.tasks[c].started)
                .min();
            if next == Some(blocked_tid) {
                continue; // evicting the blocked task's own input livelocks
            }
            candidates.push((i, next));
        }
        if candidates.is_empty() {
            return false;
        }
        // No future use first, then furthest future use.
        candidates.sort_by(|a, b| match (a.1, b.1) {
            (None, None) => std::cmp::Ordering::Equal,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some(_), None) => std::cmp::Ordering::Greater,
            (Some(x), Some(y)) => y.cmp(&x),
        });
        let free_now = self.memory.capacity().saturating_sub(self.memory.used(dev));
        let mut to_free = need.saturating_sub(free_now);
        let mut evicted_any = false;
        for (i, next) in candidates {
            if to_free.is_zero() {
                break;
            }
            self.evict_tensor(i, next, blocked_tid);
            to_free = to_free.saturating_sub(self.bytes[i]);
            evicted_any = true;
        }
        evicted_any
    }

    /// Creates the re-export (and, when a future consumer exists, the
    /// re-import) tasks for one evicted tensor.
    fn evict_tensor(&mut self, i: usize, next_consumer: Option<usize>, blocked_tid: usize) {
        self.evictions += 1;
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent {
                kind: TraceKind::Eviction,
                device: self.home[i].index(),
                start: self.clock,
                end: self.clock,
                bytes: self.bytes[i],
            });
        }
        if verbosity().sim_debug && self.evictions <= 30 || self.evictions.is_multiple_of(500) {
            eprintln!(
                "[evict#{}] t={:.3}s tensor=t{i} bytes={} next={:?}",
                self.evictions, self.clock, self.bytes[i], next_consumer
            );
        }
        let t = TensorId(i as u32);
        let directive = self.directive[i].expect("swap directive");
        let out_dur = match directive {
            MemoryDirective::SwapToHost(_) => self.machine_pcie_time(self.bytes[i]),
            MemoryDirective::SwapD2d(stripe) => stripe.one_way_time(),
            MemoryDirective::Recompute => unreachable!("not a swap directive"),
        };
        let dev = self.home[i];
        let out = self.push_task(Payload::SwapOut(t), dev, StreamKind::CopyOut, out_dur);
        self.runnable_swaps[i] += 1;
        if let Some(consumer) = next_consumer {
            self.refetches += 1;
            let inn = self.push_task(Payload::SwapIn(t), dev, StreamKind::CopyIn, out_dur);
            self.tasks[out].dependents.push(inn);
            self.tasks[inn].deps += 1;
            // The refetch is immediately eligible; the memory gate paces
            // it, and compute streams are scanned before copy-in per
            // device, so the blocked task claims freed space first.
            self.tasks[inn].dependents.push(consumer);
            self.tasks[inn].priority = consumer;
            // Admitted at the later of its own prefetch anchor and the
            // position right past the task this eviction unblocks —
            // otherwise the refetch instantly reclaims the freed bytes
            // and the run ping-pongs one tensor forever.
            let anchor = self.refetch_admit(consumer, out_dur);
            let past_blocked = self.position_of(blocked_tid).map(|(d, p)| (d, p + 1));
            self.tasks[inn].admit = match (anchor, past_blocked) {
                (Some((d, a)), Some((d2, b))) if d == d2 => Some((d, a.max(b))),
                (a, None) => a,
                (None, b) => b,
                (a, _) => a, // different devices: keep the anchor
            };
            self.tasks[consumer].deps += 1;
        }
    }

    /// Appends a dynamically created task and enqueues it on its stream.
    fn push_task(
        &mut self,
        payload: Payload,
        device: DeviceId,
        stream: StreamKind,
        duration: Secs,
    ) -> usize {
        let tid = self.tasks.len();
        self.tasks.push(Task {
            payload,
            device,
            stream,
            duration,
            deps: 0,
            trigger_fired: true,
            dependents: Vec::new(),
            started: false,
            done: false,
            in_ready: false,
            priority: usize::MAX,
            admit: None,
            start: 0.0,
            end: 0.0,
            ready_at: self.clock,
            dep_wait_is_copy: false,
        });
        self.streams
            .get_mut(&(device.index(), stream))
            .expect("stream exists")
            .queue
            .push(tid);
        self.note_ready(tid);
        tid
    }

    fn machine_pcie_time(&self, bytes: Bytes) -> Secs {
        self.pcie_curve.transfer_time(bytes)
    }

    /// The next task the stream could start right now, honoring FIFO
    /// order for compute/comm streams and memory back-pressure everywhere.
    /// Non-FIFO streams consult only their ready list (lazily pruning
    /// stale entries), keeping scheduling O(ready) per attempt.
    fn pick_startable(&mut self, key: &(usize, StreamKind)) -> Option<usize> {
        let gate = self.memory_gate;
        if self.streams[key].fifo {
            let stream = &self.streams[key];
            let &tid = stream.queue.get(stream.cursor)?;
            if !self.tasks[tid].is_ready() {
                return None;
            }
            if gate {
                let (dev, need) = self.start_need(tid);
                if !self.memory.fits(dev, need) {
                    return None;
                }
            }
            Some(tid)
        } else {
            // Prune stale entries, then take the minimum-priority ready
            // task. A best task that does not fit BLOCKS the stream:
            // starting a lower-priority one instead would invert prefetch
            // order and can deadlock the blocked consumer out of memory.
            let stream = self.streams.get_mut(key).expect("stream exists");
            let mut j = 0;
            while j < stream.ready.len() {
                let tid = stream.ready[j];
                if self.tasks[tid].is_ready() {
                    j += 1;
                } else {
                    stream.ready.swap_remove(j);
                    self.tasks[tid].in_ready = false;
                }
            }
            let stream = &self.streams[key];
            let best = stream
                .ready
                .iter()
                .copied()
                .filter(|&tid| self.admitted(tid))
                .min_by_key(|&tid| (self.tasks[tid].priority, tid))?;
            if gate {
                let (dev, need) = self.start_need(best);
                if !self.memory.fits(dev, need) {
                    return None;
                }
            }
            let stream = self.streams.get_mut(key).expect("stream exists");
            let pos = stream
                .ready
                .iter()
                .position(|&t| t == best)
                .expect("best is in ready");
            stream.ready.swap_remove(pos);
            self.tasks[best].in_ready = false;
            Some(best)
        }
    }

    /// Registers a task that may have just become dependency-ready with
    /// its stream's ready list (non-FIFO streams only).
    fn note_ready(&mut self, tid: usize) {
        let task = &self.tasks[tid];
        if task.in_ready || !task.is_ready() {
            return;
        }
        let key = (task.device.index(), task.stream);
        let stream = self.streams.get_mut(&key).expect("stream exists");
        if !stream.fifo {
            stream.ready.push(tid);
            self.tasks[tid].in_ready = true;
        }
    }

    /// The admission gate for a refetch created at eviction time: the same
    /// anchor rule as build-time prefetches (enough compute upstream of
    /// the consumer to hide the copy).
    fn refetch_admit(&self, consumer_tid: usize, in_dur: Secs) -> Option<(usize, usize)> {
        let (stage, pos) = self.seq_pos.get(consumer_tid).copied().flatten()?;
        let seq = &self.compute_seq[stage];
        let mut lead = 0.0;
        let mut anchor_pos = None;
        for j in (0..pos).rev() {
            anchor_pos = Some(j);
            lead += self.tasks[seq[j]].duration;
            if lead >= 1.5 * in_dur {
                break;
            }
        }
        anchor_pos.map(|p| (self.stage_device[stage], p))
    }

    /// The compute-stream slot a task occupies (ops directly; swap-ins via
    /// their consumer).
    fn position_of(&self, tid: usize) -> Option<(usize, usize)> {
        let key = match self.tasks[tid].payload {
            Payload::Op(_) => tid,
            Payload::SwapIn(_) => self.tasks[tid].priority,
            Payload::SwapOut(_) => return None,
        };
        self.seq_pos
            .get(key)
            .copied()
            .flatten()
            .map(|(stage, pos)| (self.stage_device[stage], pos))
    }

    /// Whether a task's demand-window admission is satisfied.
    fn admitted(&self, tid: usize) -> bool {
        match self.tasks[tid].admit {
            None => true,
            Some((dev, pos)) => self.streams[&(dev, StreamKind::Compute)].cursor >= pos,
        }
    }

    /// Home-device bytes a task allocates the moment it starts.
    fn start_need(&self, tid: usize) -> (DeviceId, Bytes) {
        let task = &self.tasks[tid];
        match task.payload {
            Payload::Op(op_id) => {
                let idx = op_id.index();
                let mut need = Bytes::ZERO;
                for &i in &self.op_writes[idx] {
                    if matches!(self.directive[i], Some(MemoryDirective::Recompute)) {
                        continue;
                    }
                    if self.residency[i] != Loc::Home {
                        need += self.bytes[i];
                    }
                }
                for &i in &self.op_reads[idx] {
                    if matches!(self.directive[i], Some(MemoryDirective::Recompute))
                        && self.residency[i] != Loc::Home
                    {
                        need += self.bytes[i];
                    }
                }
                (task.device, need)
            }
            Payload::SwapIn(t) => (self.home[t.index()], self.bytes[t.index()]),
            Payload::SwapOut(_) => (task.device, Bytes::ZERO),
        }
    }

    fn start_task(&mut self, tid: usize) {
        let clock = self.clock;
        if verbosity().sim_trace
            && (6.4..8.4).contains(&clock)
            && self.tasks[tid].device.index() == 1
        {
            eprintln!(
                "[start t={clock:.4}] task{tid} {:?} dur={:.4} prio={}",
                self.tasks[tid].payload, self.tasks[tid].duration, self.tasks[tid].priority
            );
        }
        self.tasks[tid].started = true;
        self.tasks[tid].start = clock;
        let end = clock + self.tasks[tid].duration;
        self.tasks[tid].end = end;
        self.heap.push(Reverse(CompletionKey {
            time: OrdTime(end),
            stream: self.tasks[tid].stream,
            seq: tid,
        }));

        match self.tasks[tid].payload {
            Payload::Op(op_id) => {
                // Fire prefetch triggers anchored on this op (op task ids
                // are dense, so a Vec indexed by tid replaces the map).
                for f in std::mem::take(&mut self.triggers[tid]) {
                    self.tasks[f].trigger_fired = true;
                    self.note_ready(f);
                }
                self.on_op_start(op_id);
            }
            Payload::SwapIn(t) => {
                // The return buffer is allocated when the copy begins.
                let i = t.index();
                self.runnable_swaps[i] = self.runnable_swaps[i].saturating_sub(1);
                self.active_swaps[i] += 1;
                self.memory.alloc(self.home[i], self.bytes[i], clock);
            }
            Payload::SwapOut(t) => {
                let i = t.index();
                self.runnable_swaps[i] = self.runnable_swaps[i].saturating_sub(1);
                self.active_swaps[i] += 1;
            }
        }
    }

    fn on_op_start(&mut self, op_id: OpId) {
        let clock = self.clock;
        let idx = op_id.index();
        let mut to_alloc: Vec<usize> = Vec::new();
        for &i in &self.op_writes[idx] {
            if matches!(self.directive[i], Some(MemoryDirective::Recompute)) {
                continue; // materialized only inside the consumer
            }
            if self.residency[i] != Loc::Home {
                to_alloc.push(i);
            }
        }
        let mut recompute_extra = 0.0;
        for &i in &self.op_reads[idx] {
            if matches!(self.directive[i], Some(MemoryDirective::Recompute))
                && self.residency[i] != Loc::Home
            {
                to_alloc.push(i);
                recompute_extra += self.recompute_cost[i];
            }
        }
        self.recompute_time += recompute_extra;
        for i in to_alloc {
            self.memory.alloc(self.home[i], self.bytes[i], clock);
            self.residency[i] = Loc::Home;
        }
    }

    fn complete_task(&mut self, tid: usize) {
        let clock = self.clock;
        self.tasks[tid].done = true;
        self.completed += 1;
        if self.trace.is_some() {
            let task = &self.tasks[tid];
            let (kind, bytes) = match task.payload {
                Payload::Op(op_id) => (
                    match self.op_kinds[op_id.index()] {
                        OpKind::Forward => TraceKind::Forward,
                        OpKind::Backward | OpKind::Drop => TraceKind::Backward,
                        OpKind::OptimizerStep => TraceKind::Optimizer,
                        OpKind::Send | OpKind::Recv => TraceKind::Send,
                        OpKind::SwapOut => TraceKind::SwapOut,
                        OpKind::SwapIn => TraceKind::SwapIn,
                    },
                    Bytes::ZERO,
                ),
                Payload::SwapOut(t) => (TraceKind::SwapOut, self.bytes[t.index()]),
                Payload::SwapIn(t) => (TraceKind::SwapIn, self.bytes[t.index()]),
            };
            let event = TraceEvent {
                kind,
                device: task.device.index(),
                start: task.start,
                end: task.end,
                bytes,
            };
            if let Some(trace) = &mut self.trace {
                trace.push(event);
            }
        }
        let key = (self.tasks[tid].device.index(), self.tasks[tid].stream);
        self.streams.get_mut(&key).expect("stream exists").busy = false;

        match self.tasks[tid].payload {
            Payload::Op(op_id) => {
                let frees = std::mem::take(&mut self.op_frees[op_id.index()]);
                for &i in &frees {
                    if self.residency[i] == Loc::Home {
                        self.memory.free(self.home[i], self.bytes[i], clock);
                        self.residency[i] = Loc::Freed;
                    }
                }
                self.op_frees[op_id.index()] = frees;
            }
            Payload::SwapOut(t) => {
                let i = t.index();
                self.active_swaps[i] -= 1;
                self.memory.free(self.home[i], self.bytes[i], clock);
                match self.directive[i].expect("swap task has directive") {
                    MemoryDirective::SwapToHost(tier) => {
                        match tier {
                            HostTier::Dram => self.memory.host_alloc(self.bytes[i], clock),
                            HostTier::Nvme => {
                                self.memory.nvme_alloc(self.bytes[i], clock);
                                self.nvme_traffic += self.bytes[i];
                            }
                        }
                        self.residency[i] = Loc::Host;
                        self.host_traffic += self.bytes[i];
                    }
                    MemoryDirective::SwapD2d(stripe) => {
                        for c in stripe.chunks() {
                            self.memory.alloc(c.target, c.bytes, clock);
                        }
                        self.residency[i] = Loc::Peers;
                        self.d2d_traffic += self.bytes[i];
                    }
                    MemoryDirective::Recompute => unreachable!("recompute has no swap tasks"),
                }
            }
            Payload::SwapIn(t) => {
                let i = t.index();
                self.active_swaps[i] -= 1;
                match self.directive[i].expect("swap task has directive") {
                    MemoryDirective::SwapToHost(tier) => {
                        match tier {
                            HostTier::Dram => self.memory.host_free(self.bytes[i]),
                            HostTier::Nvme => {
                                self.memory.nvme_free(self.bytes[i]);
                                self.nvme_traffic += self.bytes[i];
                            }
                        }
                        self.host_traffic += self.bytes[i];
                    }
                    MemoryDirective::SwapD2d(stripe) => {
                        for c in stripe.chunks() {
                            self.memory.free(c.target, c.bytes, clock);
                        }
                        self.d2d_traffic += self.bytes[i];
                    }
                    MemoryDirective::Recompute => unreachable!("recompute has no swap tasks"),
                }
                self.residency[i] = Loc::Home;
            }
        }

        let completed_stream = self.tasks[tid].stream;
        let dependents = std::mem::take(&mut self.tasks[tid].dependents);
        for &d in &dependents {
            self.tasks[d].deps -= 1;
            if self.tasks[d].deps == 0 {
                // Last dependency just resolved — remember when and by
                // what, for post-hoc stall attribution.
                self.tasks[d].ready_at = clock;
                self.tasks[d].dep_wait_is_copy = completed_stream == StreamKind::CopyIn;
                match self.tasks[d].payload {
                    Payload::SwapIn(t) | Payload::SwapOut(t) => {
                        self.runnable_swaps[t.index()] += 1;
                    }
                    Payload::Op(_) => {}
                }
            }
            self.note_ready(d);
        }
        self.tasks[tid].dependents = dependents;
    }

    fn into_report(self, graph: &TrainingGraph) -> Result<SimReport, SimError> {
        let n_ops = graph.ops().len();
        let total = self.tasks.len();
        let oom = self.memory.oom().copied();
        if self.completed < total && oom.is_none() {
            if verbosity().sim_debug {
                for (tid, task) in self.tasks.iter().enumerate() {
                    if !task.done {
                        eprintln!(
                            "[deadlock] task {tid}: {:?} dev={} stream={:?} deps={} trig={} started={}",
                            task.payload, task.device.index(), task.stream,
                            task.deps, task.trigger_fired, task.started
                        );
                    }
                }
            }
            return Err(SimError::Deadlock {
                completed: self.completed,
                total,
            });
        }
        let makespan = self
            .tasks
            .iter()
            .filter(|t| t.done)
            .map(|t| t.end)
            .fold(0.0, f64::max);
        let metrics = self.metrics.then(|| self.build_metrics(makespan));
        let op_start = self.tasks[..n_ops].iter().map(|t| t.start).collect();
        let op_end = self.tasks[..n_ops].iter().map(|t| t.end).collect();
        let nvme_peak = self.memory.nvme_peak();
        let (device_peak, host_peak, oom, timelines) = self.memory.into_parts();
        Ok(SimReport {
            makespan,
            op_start,
            op_end,
            device_peak,
            host_peak,
            nvme_peak,
            oom,
            d2d_traffic: self.d2d_traffic,
            host_traffic: self.host_traffic,
            nvme_traffic: self.nvme_traffic,
            recompute_time: self.recompute_time,
            timelines,
            trace: self.trace,
            metrics,
        })
    }

    /// Assembles [`SimMetrics`] from the completed task list. Runs once,
    /// at report time, only for metrics-enabled configs — the event loop
    /// itself carries no metric bookkeeping beyond the per-task
    /// `ready_at`/`dep_wait_is_copy` stores.
    fn build_metrics(&self, makespan: Secs) -> SimMetrics {
        let mut recorder = MetricsRecorder::new();

        // --- Per-device stream busy time + task-duration histograms -----
        let mut busy: Vec<StreamBusy> = vec![StreamBusy::default(); self.gpu_count];
        for task in self.tasks.iter().filter(|t| t.done) {
            let b = &mut busy[task.device.index()];
            let (slot, hist): (&mut Secs, &str) = match task.stream {
                StreamKind::Compute => (&mut b.compute, "sim.task_duration.compute"),
                StreamKind::Comm => (&mut b.comm, "sim.task_duration.comm"),
                StreamKind::CopyOut => (&mut b.copy_out, "sim.task_duration.copy_out"),
                StreamKind::CopyIn => (&mut b.copy_in, "sim.task_duration.copy_in"),
            };
            *slot += task.duration;
            recorder.observe(hist, task.duration);
            match task.payload {
                Payload::Op(_) => recorder.inc("sim.tasks.ops"),
                Payload::SwapOut(_) => recorder.inc("sim.tasks.swap_out"),
                Payload::SwapIn(_) => recorder.inc("sim.tasks.swap_in"),
            }
        }

        // --- Stall attribution ------------------------------------------
        // Tile each device's compute-stream timeline [0, makespan] with
        // the done tasks (FIFO, so non-overlapping): the gap before a
        // task splits at `ready_at` into dependency wait (copy-in vs
        // other producer) and memory/back-pressure wait; the tail after
        // the last task is drain. The tiling telescopes, so per device
        // busy.compute + stalls.total() equals the makespan exactly.
        let mut devices: Vec<DeviceMetrics> = Vec::with_capacity(self.gpu_count);
        for (dev, dev_busy) in busy.iter().enumerate() {
            let mut timeline: Vec<&Task> = self
                .tasks
                .iter()
                .filter(|t| t.done && t.device.index() == dev && t.stream == StreamKind::Compute)
                .collect();
            timeline.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite start times"));
            let mut stalls = StallBreakdown::default();
            let mut prev_end = 0.0_f64;
            for task in &timeline {
                if task.start > prev_end {
                    let dep_until = task.ready_at.clamp(prev_end, task.start);
                    let dep_cause = if task.dep_wait_is_copy {
                        StallCause::WaitingOnCopyIn
                    } else {
                        StallCause::WaitingOnDependency
                    };
                    stalls.attribute(dep_cause, dep_until - prev_end);
                    stalls.attribute(StallCause::WaitingOnMemory, task.start - dep_until);
                }
                prev_end = task.end;
            }
            stalls.attribute(StallCause::Drained, (makespan - prev_end).max(0.0));
            devices.push(DeviceMetrics {
                device: DeviceId(dev),
                busy: *dev_busy,
                stalls,
            });
            recorder.observe("sim.device_busy.compute", dev_busy.compute);
        }

        // --- Per-link traffic -------------------------------------------
        // Attributed post-hoc from the done swap tasks by directive:
        // host swaps occupy the home device's PCIe lane (NVMe-tier swaps
        // additionally the drive), D2D swaps occupy one NVLink pair per
        // stripe chunk (chunks move in parallel on distinct links).
        let mut links: BTreeMap<LinkKey, (Bytes, Secs)> = BTreeMap::new();
        let mut tally = |key: LinkKey, bytes: Bytes, secs: Secs| {
            let e = links.entry(key).or_insert((Bytes::ZERO, 0.0));
            e.0 += bytes;
            e.1 += secs;
        };
        for task in self.tasks.iter().filter(|t| t.done) {
            let t = match task.payload {
                Payload::SwapOut(t) | Payload::SwapIn(t) => t,
                Payload::Op(_) => continue,
            };
            let i = t.index();
            let home = self.home[i];
            match self.directive[i].expect("swap task has directive") {
                MemoryDirective::SwapToHost(HostTier::Dram) => {
                    tally(LinkKey::Pcie(home), self.bytes[i], task.duration);
                }
                MemoryDirective::SwapToHost(HostTier::Nvme) => {
                    tally(LinkKey::Pcie(home), self.bytes[i], task.duration);
                    tally(LinkKey::Nvme, self.bytes[i], task.duration);
                }
                MemoryDirective::SwapD2d(stripe) => {
                    for c in stripe.chunks() {
                        tally(LinkKey::nvlink(home, c.target), c.bytes, task.duration);
                    }
                }
                MemoryDirective::Recompute => unreachable!("recompute has no swap tasks"),
            }
        }
        let links: Vec<LinkMetrics> = links
            .into_iter()
            .map(|(link, (bytes, busy))| LinkMetrics {
                link,
                bytes,
                busy,
                occupancy: if makespan > 0.0 { busy / makespan } else { 0.0 },
            })
            .collect();

        recorder.add("sim.tasks.completed", self.completed as u64);
        recorder.add("sim.tasks.total", self.tasks.len() as u64);
        recorder.add("sim.evictions", self.evictions as u64);
        recorder.add("sim.refetches", self.refetches as u64);
        recorder.set_gauge("sim.makespan", makespan);
        recorder.set_gauge("sim.recompute_time", self.recompute_time);

        SimMetrics {
            total_time: makespan,
            devices,
            links,
            evictions: self.evictions as u64,
            refetches: self.refetches as u64,
            recorder: recorder.snapshot(),
        }
    }
}

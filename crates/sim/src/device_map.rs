//! Stage-to-device mapping.
//!
//! MPress's device-mapping search (paper Fig. 6) permutes which GPU hosts
//! which pipeline stage so that memory-pressured stages sit next to
//! NVLink-reachable light-loaded peers. The simulator takes the chosen
//! permutation as input.

use mpress_hw::DeviceId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A bijective assignment of pipeline stages to GPU devices.
///
/// # Example
///
/// ```
/// use mpress_sim::DeviceMap;
/// use mpress_hw::DeviceId;
///
/// let id = DeviceMap::identity(8);
/// assert_eq!(id.device_of(3), DeviceId(3));
///
/// let swapped = DeviceMap::from_vec(vec![1, 0].into_iter().map(DeviceId).collect()).unwrap();
/// assert_eq!(swapped.device_of(0), DeviceId(1));
/// assert_eq!(swapped.stage_of(DeviceId(1)), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceMap {
    devices: Vec<DeviceId>,
}

impl DeviceMap {
    /// Stage `i` on device `i`.
    pub fn identity(n: usize) -> Self {
        DeviceMap {
            devices: (0..n).map(DeviceId).collect(),
        }
    }

    /// Builds a map from an explicit stage-indexed device vector.
    ///
    /// # Errors
    ///
    /// Returns a description when the vector is not a permutation (repeats
    /// a device).
    pub fn from_vec(devices: Vec<DeviceId>) -> Result<Self, String> {
        let mut seen = vec![false; devices.len()];
        for d in &devices {
            if d.index() >= devices.len() {
                return Err(format!("{d} out of range for {} stages", devices.len()));
            }
            if seen[d.index()] {
                return Err(format!("{d} assigned to two stages"));
            }
            seen[d.index()] = true;
        }
        Ok(DeviceMap { devices })
    }

    /// Number of stages mapped.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True for an empty map.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device hosting `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn device_of(&self, stage: usize) -> DeviceId {
        self.devices[stage]
    }

    /// The stage hosted by `device`, if mapped.
    pub fn stage_of(&self, device: DeviceId) -> Option<usize> {
        self.devices.iter().position(|&d| d == device)
    }

    /// The stage-indexed device vector.
    pub fn as_slice(&self) -> &[DeviceId] {
        &self.devices
    }
}

impl fmt::Display for DeviceMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stages->devices [")?;
        for (i, d) in self.devices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}:{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_straight_through() {
        let m = DeviceMap::identity(4);
        for i in 0..4 {
            assert_eq!(m.device_of(i), DeviceId(i));
            assert_eq!(m.stage_of(DeviceId(i)), Some(i));
        }
    }

    #[test]
    fn from_vec_rejects_duplicates() {
        let err = DeviceMap::from_vec(vec![DeviceId(0), DeviceId(0)]).unwrap_err();
        assert!(err.contains("two stages"), "{err}");
    }

    #[test]
    fn from_vec_rejects_out_of_range() {
        let err = DeviceMap::from_vec(vec![DeviceId(5), DeviceId(0)]).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn reversed_map_round_trips() {
        let m = DeviceMap::from_vec((0..8).rev().map(DeviceId).collect()).unwrap();
        assert_eq!(m.device_of(0), DeviceId(7));
        assert_eq!(m.stage_of(DeviceId(7)), Some(0));
        assert_eq!(m.len(), 8);
    }
}

//! Terminal visualizations of simulation results: per-device memory
//! charts (the hand-drawn curves under the paper's Fig. 1) and an
//! execution Gantt (its timeline boxes).

use crate::report::SimReport;
use mpress_graph::{OpKind, TrainingGraph};
use mpress_hw::{Bytes, Secs};
use std::fmt::Write as _;

const SHADES: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders each device's memory-usage timeline as a sparkline scaled to
/// `capacity` (full block = at capacity), `width` characters wide.
///
/// Requires the report to have been produced with
/// [`SimConfig::track_timeline`](crate::SimConfig) enabled; returns a
/// hint string otherwise.
pub fn memory_chart(report: &SimReport, capacity: Bytes, width: usize) -> String {
    let Some(timelines) = &report.timelines else {
        return "(enable SimConfig::track_timeline to chart memory)".to_owned();
    };
    let mut out = String::new();
    let span = report.makespan.max(f64::MIN_POSITIVE);
    for (dev, timeline) in timelines.iter().enumerate() {
        let mut row = String::with_capacity(width);
        let mut level = Bytes::ZERO;
        let mut idx = 0;
        for col in 0..width {
            let t = span * (col as f64 + 1.0) / width as f64;
            // Track the max level within the bin for peak visibility.
            let mut bin_max = level;
            while idx < timeline.len() && timeline[idx].0 <= t {
                level = timeline[idx].1;
                bin_max = bin_max.max(level);
                idx += 1;
            }
            let frac = (bin_max.as_f64() / capacity.as_f64()).clamp(0.0, 1.0);
            let shade = (frac * (SHADES.len() - 1) as f64).round() as usize;
            row.push(SHADES[shade]);
        }
        let _ = writeln!(
            out,
            "GPU{dev} |{row}| peak {:>10}",
            report
                .device_peak
                .get(dev)
                .copied()
                .unwrap_or(Bytes::ZERO)
                .to_string()
        );
    }
    out
}

/// Renders per-device execution lanes: `F` forward, `B` backward, `U`
/// optimizer, `s` send, `.` idle — one character per time bin.
///
/// `stage_of_device` maps each device row back to the stage whose ops it
/// executed (the inverse of the device map used in the run).
pub fn gantt(
    report: &SimReport,
    graph: &TrainingGraph,
    stage_of_device: &[usize],
    width: usize,
) -> String {
    let span: Secs = report.makespan.max(f64::MIN_POSITIVE);
    let mut lanes = vec![vec!['.'; width]; stage_of_device.len()];
    for op in graph.ops() {
        let Some(device) = stage_of_device.iter().position(|&s| s == op.stage) else {
            continue;
        };
        let glyph = match op.kind {
            OpKind::Forward => 'F',
            OpKind::Backward => 'B',
            OpKind::OptimizerStep => 'U',
            OpKind::Send | OpKind::Recv => 's',
            OpKind::SwapOut => 'o',
            OpKind::SwapIn => 'i',
            OpKind::Drop => 'd',
        };
        let start = report.op_start[op.id.index()];
        let end = report.op_end[op.id.index()];
        let a = ((start / span) * width as f64).floor() as usize;
        let b = (((end / span) * width as f64).ceil() as usize).min(width);
        for cell in lanes[device].iter_mut().take(b).skip(a.min(width)) {
            // Compute beats comm in a shared bin.
            if *cell == '.' || (*cell == 's' && glyph != 's') {
                *cell = glyph;
            }
        }
    }
    let mut out = String::new();
    for (dev, lane) in lanes.iter().enumerate() {
        let _ = writeln!(out, "GPU{dev} |{}|", lane.iter().collect::<String>());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceMap, SimConfig, Simulator};
    use mpress_compaction::InstrumentationPlan;
    use mpress_hw::Machine;
    use mpress_model::{ModelFamily, PrecisionPolicy, TransformerConfig};
    use mpress_pipeline::{PipelineJob, ScheduleKind};

    fn run() -> (SimReport, TrainingGraph) {
        let job = PipelineJob::builder()
            .model(
                TransformerConfig::builder(ModelFamily::Gpt)
                    .layers(8)
                    .hidden(512)
                    .seq_len(256)
                    .build(),
            )
            .machine(Machine::dgx1())
            .schedule(ScheduleKind::Dapple)
            .stages(4)
            .microbatch_size(2)
            .microbatches(6)
            .precision(PrecisionPolicy::mixed())
            .build()
            .unwrap();
        let lowered = job.lower().unwrap();
        let report = Simulator::new(
            job.machine(),
            &lowered.graph,
            &InstrumentationPlan::new(),
            DeviceMap::identity(4),
        )
        .with_config(SimConfig::default().track_timeline(true))
        .run()
        .unwrap();
        (report, lowered.graph)
    }

    #[test]
    fn memory_chart_has_one_lane_per_device() {
        let (report, _) = run();
        // Scale to the observed peak so the lanes use the shade range.
        let chart = memory_chart(&report, report.max_device_peak(), 60);
        assert_eq!(chart.lines().count(), 8);
        assert!(chart.contains("GPU0"));
        // Stage 0 (the hottest) must saturate the scale somewhere...
        let lane0 = chart.lines().next().unwrap();
        assert!(lane0.contains('█'), "{lane0}");
        // ...and show more dark cells than the lightest-loaded stage 3.
        let dark = |lane: &str| lane.chars().filter(|&c| c == '█' || c == '▇').count();
        let lane3 = chart.lines().nth(3).unwrap();
        assert!(dark(lane0) > dark(lane3), "{lane0}\n{lane3}");
    }

    #[test]
    fn memory_chart_without_timelines_hints() {
        let (mut report, _) = run();
        report.timelines = None;
        let chart = memory_chart(&report, Bytes::gib(32), 40);
        assert!(chart.contains("track_timeline"));
    }

    #[test]
    fn gantt_shows_pipeline_ramp() {
        let (report, graph) = run();
        let art = gantt(&report, &graph, &[0, 1, 2, 3], 80);
        assert_eq!(art.lines().count(), 4);
        // The last stage idles at the start (pipeline fill): its lane
        // begins with '.', the first stage's with 'F'.
        let first = art.lines().next().unwrap();
        let last = art.lines().last().unwrap();
        assert!(first.contains("|F"), "{first}");
        assert!(last.contains("|.."), "{last}");
    }
}

//! Per-device and host memory accounting.

use crate::report::{OomEvent, PoolKind};
use mpress_hw::{Bytes, DeviceId, Secs};

/// Per-device `(time, used-bytes)` usage samples.
pub type UsageTimeline = Vec<(Secs, Bytes)>;

/// Tracks used/peak bytes on every GPU plus host pinned memory, recording
/// the first out-of-memory event and optional usage timelines.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    capacity: Bytes,
    host_capacity: Bytes,
    nvme_capacity: Bytes,
    used: Vec<Bytes>,
    peak: Vec<Bytes>,
    host_used: Bytes,
    host_peak: Bytes,
    nvme_used: Bytes,
    nvme_peak: Bytes,
    oom: Option<OomEvent>,
    timelines: Option<Vec<UsageTimeline>>,
}

impl MemoryTracker {
    /// A tracker over `n` GPUs of `capacity` bytes each, a host pool of
    /// `host_capacity` and an NVMe pool of `nvme_capacity`.
    pub fn new(
        n: usize,
        capacity: Bytes,
        host_capacity: Bytes,
        nvme_capacity: Bytes,
        track_timeline: bool,
    ) -> Self {
        MemoryTracker {
            capacity,
            host_capacity,
            nvme_capacity,
            used: vec![Bytes::ZERO; n],
            peak: vec![Bytes::ZERO; n],
            host_used: Bytes::ZERO,
            host_peak: Bytes::ZERO,
            nvme_used: Bytes::ZERO,
            nvme_peak: Bytes::ZERO,
            oom: None,
            timelines: track_timeline.then(|| vec![Vec::new(); n]),
        }
    }

    /// Allocates `bytes` on `dev` at `time`, recording an OOM event if the
    /// device overflows (usage keeps counting so the overflow magnitude is
    /// visible).
    pub fn alloc(&mut self, dev: DeviceId, bytes: Bytes, time: Secs) {
        let i = dev.index();
        self.used[i] += bytes;
        if self.used[i] > self.peak[i] {
            self.peak[i] = self.used[i];
        }
        if self.used[i] > self.capacity && self.oom.is_none() {
            self.oom = Some(OomEvent {
                pool: PoolKind::Gpu,
                device: Some(dev),
                time,
                used: self.used[i],
                capacity: self.capacity,
            });
        }
        self.sample(i, time);
    }

    /// Frees `bytes` on `dev`.
    ///
    /// # Panics
    ///
    /// Panics on a free larger than the device's current usage (a sim
    /// accounting bug, never a modeled condition).
    pub fn free(&mut self, dev: DeviceId, bytes: Bytes, time: Secs) {
        let i = dev.index();
        self.used[i] = self.used[i]
            .checked_sub(bytes)
            .unwrap_or_else(|| panic!("freeing {bytes} with only {} used on {dev}", self.used[i]));
        self.sample(i, time);
    }

    /// Allocates host pinned memory.
    pub fn host_alloc(&mut self, bytes: Bytes, time: Secs) {
        self.host_used += bytes;
        if self.host_used > self.host_peak {
            self.host_peak = self.host_used;
        }
        if self.host_used > self.host_capacity && self.oom.is_none() {
            self.oom = Some(OomEvent {
                pool: PoolKind::Host,
                device: None,
                time,
                used: self.host_used,
                capacity: self.host_capacity,
            });
        }
    }

    /// Allocates NVMe space.
    pub fn nvme_alloc(&mut self, bytes: Bytes, time: Secs) {
        self.nvme_used += bytes;
        if self.nvme_used > self.nvme_peak {
            self.nvme_peak = self.nvme_used;
        }
        if self.nvme_used > self.nvme_capacity && self.oom.is_none() {
            self.oom = Some(OomEvent {
                pool: PoolKind::Nvme,
                device: None,
                time,
                used: self.nvme_used,
                capacity: self.nvme_capacity,
            });
        }
    }

    /// Frees NVMe space.
    ///
    /// # Panics
    ///
    /// Panics on a free larger than current NVMe usage.
    pub fn nvme_free(&mut self, bytes: Bytes) {
        self.nvme_used = self
            .nvme_used
            .checked_sub(bytes)
            .expect("nvme free exceeds usage");
    }

    /// Frees host pinned memory.
    ///
    /// # Panics
    ///
    /// Panics on a free larger than current host usage.
    pub fn host_free(&mut self, bytes: Bytes) {
        self.host_used = self
            .host_used
            .checked_sub(bytes)
            .expect("host free exceeds usage");
    }

    fn sample(&mut self, dev: usize, time: Secs) {
        if let Some(tl) = &mut self.timelines {
            tl[dev].push((time, self.used[dev]));
        }
    }

    /// Current usage on one device.
    pub fn used(&self, dev: DeviceId) -> Bytes {
        self.used[dev.index()]
    }

    /// Whether `bytes` more would still fit on `dev`.
    pub fn fits(&self, dev: DeviceId, bytes: Bytes) -> bool {
        self.used[dev.index()] + bytes <= self.capacity
    }

    /// The per-device capacity.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Records an OOM diagnosed by the engine (a compute stall that can
    /// never resolve), keeping any earlier tracker-detected event.
    pub fn record_stall_oom(&mut self, dev: DeviceId, needed: Bytes, time: Secs) {
        if self.oom.is_none() {
            self.oom = Some(OomEvent {
                pool: PoolKind::Gpu,
                device: Some(dev),
                time,
                used: self.used[dev.index()] + needed,
                capacity: self.capacity,
            });
        }
    }

    /// Peak NVMe usage.
    pub fn nvme_peak(&self) -> Bytes {
        self.nvme_peak
    }

    /// Peak usage per device.
    pub fn peaks(&self) -> &[Bytes] {
        &self.peak
    }

    /// Peak host usage.
    pub fn host_peak(&self) -> Bytes {
        self.host_peak
    }

    /// The first OOM event, if any.
    pub fn oom(&self) -> Option<&OomEvent> {
        self.oom.as_ref()
    }

    /// Consumes the tracker, returning `(peaks, host_peak, oom, timelines)`.
    pub fn into_parts(
        self,
    ) -> (
        Vec<Bytes>,
        Bytes,
        Option<OomEvent>,
        Option<Vec<UsageTimeline>>,
    ) {
        (self.peak, self.host_peak, self.oom, self.timelines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_tracks_peak() {
        let mut m = MemoryTracker::new(2, Bytes::gib(1), Bytes::gib(4), Bytes::gib(100), false);
        m.alloc(DeviceId(0), Bytes::mib(600), 0.0);
        m.alloc(DeviceId(0), Bytes::mib(300), 1.0);
        m.free(DeviceId(0), Bytes::mib(500), 2.0);
        assert_eq!(m.used(DeviceId(0)), Bytes::mib(400));
        assert_eq!(m.peaks()[0], Bytes::mib(900));
        assert!(m.oom().is_none());
    }

    #[test]
    fn overflow_records_first_oom_only() {
        let mut m = MemoryTracker::new(1, Bytes::mib(100), Bytes::gib(1), Bytes::gib(100), false);
        m.alloc(DeviceId(0), Bytes::mib(150), 3.0);
        m.alloc(DeviceId(0), Bytes::mib(150), 4.0);
        let oom = m.oom().unwrap();
        assert_eq!(oom.time, 3.0);
        assert_eq!(oom.used, Bytes::mib(150));
        assert_eq!(oom.device, Some(DeviceId(0)));
    }

    #[test]
    fn host_overflow_reports_device_none() {
        let mut m = MemoryTracker::new(1, Bytes::gib(1), Bytes::mib(10), Bytes::gib(100), false);
        m.host_alloc(Bytes::mib(20), 1.5);
        assert_eq!(m.oom().unwrap().device, None);
        m.host_free(Bytes::mib(20));
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut m = MemoryTracker::new(1, Bytes::gib(1), Bytes::gib(1), Bytes::gib(100), false);
        m.free(DeviceId(0), Bytes::mib(1), 0.0);
    }

    #[test]
    fn timeline_records_changes() {
        let mut m = MemoryTracker::new(1, Bytes::gib(1), Bytes::gib(1), Bytes::gib(100), true);
        m.alloc(DeviceId(0), Bytes::mib(10), 0.5);
        m.free(DeviceId(0), Bytes::mib(10), 1.5);
        let (_, _, _, tl) = m.into_parts();
        let tl = tl.unwrap();
        assert_eq!(tl[0].len(), 2);
        assert_eq!(tl[0][0], (0.5, Bytes::mib(10)));
        assert_eq!(tl[0][1], (1.5, Bytes::ZERO));
    }
}

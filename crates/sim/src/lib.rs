//! Discrete-event simulator for the MPress reproduction.
//!
//! Plays the role of the real multi-GPU runtime the paper measures: it
//! executes a lowered [`TrainingGraph`](mpress_graph::TrainingGraph) on a
//! modeled [`Machine`](mpress_hw::Machine), honoring
//!
//! * per-device **streams** — one compute stream, one communication
//!   stream, and separate swap-in/swap-out copy streams (the paper's
//!   runtime creates dedicated CUDA streams for exactly this overlap,
//!   §III-E),
//! * an [`InstrumentationPlan`](mpress_compaction::InstrumentationPlan)
//!   whose directives expand into swap tasks and recomputation time, and
//! * per-device memory accounting with out-of-memory detection — the
//!   red-cross failures of Figs. 7 and 8.
//!
//! The result is a [`SimReport`] carrying the makespan (→ throughput and
//! achieved TFLOPS), per-device memory peaks/timelines, swap traffic and
//! op timings (which feed MPress's live-interval profiler).

#![forbid(unsafe_code)]

pub mod arena;
pub mod delta;
pub mod device_map;
pub mod engine;
pub mod memory;
pub mod metrics;
pub mod report;
pub mod trace;
pub mod viz;

pub use arena::{graph_fingerprint, ArenaPool, CostProfile, SimArena};
pub use delta::{DeltaOutcome, DeltaRun, RunBase};
pub use device_map::DeviceMap;
pub use engine::{SimConfig, SimError, SimOutcome, Simulator};
pub use metrics::{DeviceMetrics, LinkMetrics, SimMetrics, StreamBusy};
pub use report::{OomEvent, PoolKind, SimReport};
pub use trace::{TraceEvent, TraceKind};

//! Simulation results.

use mpress_hw::{Bytes, DeviceId, Secs};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which memory pool overflowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// A GPU's HBM.
    Gpu,
    /// Host pinned DRAM.
    Host,
    /// The NVMe array.
    Nvme,
}

impl fmt::Display for PoolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolKind::Gpu => write!(f, "GPU"),
            PoolKind::Host => write!(f, "host"),
            PoolKind::Nvme => write!(f, "NVMe"),
        }
    }
}

/// An out-of-memory failure observed during simulation — the red-cross
/// marks of the paper's Figs. 7 and 8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OomEvent {
    /// Which pool overflowed.
    pub pool: PoolKind,
    /// The overflowing GPU, or `None` for off-GPU pools.
    pub device: Option<DeviceId>,
    /// Simulated time of the overflow.
    pub time: Secs,
    /// Bytes in use at the overflow.
    pub used: Bytes,
    /// The capacity that was exceeded.
    pub capacity: Bytes,
}

impl fmt::Display for OomEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.device {
            Some(d) => write!(
                f,
                "OOM on {d} at {:.3}s: {} used of {}",
                self.time, self.used, self.capacity
            ),
            None => write!(
                f,
                "{} OOM at {:.3}s: {} used of {}",
                self.pool, self.time, self.used, self.capacity
            ),
        }
    }
}

/// Everything one simulation run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// End-to-end time of the simulated window.
    pub makespan: Secs,
    /// Start time of every op (graph op-id order).
    pub op_start: Vec<Secs>,
    /// End time of every op.
    pub op_end: Vec<Secs>,
    /// Peak bytes per GPU.
    pub device_peak: Vec<Bytes>,
    /// Peak host pinned-memory bytes.
    pub host_peak: Bytes,
    /// Peak NVMe bytes used by tiered swaps.
    pub nvme_peak: Bytes,
    /// First out-of-memory event, if the job failed.
    pub oom: Option<OomEvent>,
    /// Total bytes moved over NVLink by D2D swaps (both directions).
    pub d2d_traffic: Bytes,
    /// Total bytes moved over PCIe by GPU-CPU swaps (both directions,
    /// including the PCIe leg of NVMe-tier swaps).
    pub host_traffic: Bytes,
    /// Total bytes staged to/from the NVMe array.
    pub nvme_traffic: Bytes,
    /// Total compute time added by recomputation across all devices.
    pub recompute_time: Secs,
    /// Per-device `(time, used-bytes)` samples when timeline tracking was
    /// enabled.
    pub timelines: Option<Vec<Vec<(Secs, Bytes)>>>,
    /// Executed-task trace when tracing was enabled.
    pub trace: Option<Vec<crate::trace::TraceEvent>>,
    /// Stream/stall/link metrics when `SimConfig::metrics` was enabled.
    pub metrics: Option<crate::metrics::SimMetrics>,
}

impl SimReport {
    /// Whether the job completed without overflowing any memory pool.
    pub fn succeeded(&self) -> bool {
        self.oom.is_none()
    }

    /// Training throughput in samples per second for a window that
    /// processed `samples`.
    ///
    /// # Panics
    ///
    /// Panics if the makespan is zero.
    pub fn throughput(&self, samples: usize) -> f64 {
        assert!(self.makespan > 0.0, "zero makespan");
        samples as f64 / self.makespan
    }

    /// Achieved model TFLOPS for a window that executed `total_flops`
    /// floating-point operations (the paper's Figs. 7/8 metric).
    pub fn achieved_tflops(&self, total_flops: f64) -> f64 {
        assert!(self.makespan > 0.0, "zero makespan");
        total_flops / self.makespan / 1e12
    }

    /// The largest per-device peak.
    pub fn max_device_peak(&self) -> Bytes {
        self.device_peak
            .iter()
            .copied()
            .max()
            .unwrap_or(Bytes::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            makespan: 2.0,
            op_start: vec![0.0],
            op_end: vec![2.0],
            device_peak: vec![Bytes::gib(10), Bytes::gib(4)],
            host_peak: Bytes::ZERO,
            nvme_peak: Bytes::ZERO,
            oom: None,
            d2d_traffic: Bytes::ZERO,
            host_traffic: Bytes::ZERO,
            nvme_traffic: Bytes::ZERO,
            recompute_time: 0.0,
            timelines: None,
            trace: None,
            metrics: None,
        }
    }

    #[test]
    fn throughput_and_tflops() {
        let r = report();
        assert_eq!(r.throughput(64), 32.0);
        assert_eq!(r.achieved_tflops(4.0e12), 2.0);
        assert_eq!(r.max_device_peak(), Bytes::gib(10));
        assert!(r.succeeded());
    }

    #[test]
    fn oom_display() {
        let e = OomEvent {
            pool: PoolKind::Gpu,
            device: Some(DeviceId(0)),
            time: 1.0,
            used: Bytes::gib(33),
            capacity: Bytes::gib(32),
        };
        let s = e.to_string();
        assert!(s.contains("GPU0") && s.contains("OOM"), "{s}");
    }
}

//! Hardware-insights projection (paper §V).
//!
//! The paper closes with a back-of-the-envelope analysis of MPress on the
//! Grace-Hopper generation: each Hopper GPU gets 96 GB of HBM plus a
//! dedicated 512 GB CPU-side pool over NVLink-C2C, which the paper models
//! at 64 GB/s per GPU. Its claims:
//!
//! 1. even 96 GB + 512 GB per device cannot hold a 175 B GPT-3 pipeline
//!    stage — the memory wall persists;
//! 2. *fully hiding* GPU-CPU swap would need well over the superchip's
//!    CPU-link bandwidth (the paper estimates >140 GB/s);
//! 3. D2D swap therefore stays valuable: it either recovers the compute
//!    recomputation wastes (~25% of the forward work) or avoids the
//!    slowdown of exposed CPU-side swapping (~13%).
//!
//! This module recomputes each claim from this reproduction's own models
//! so the projection updates with the calibration.

use mpress_hw::{Bytes, GpuSpec, Secs};
use mpress_model::{flops, ModelFamily, PrecisionPolicy, TransformerConfig};
use mpress_pipeline::{MemoryDemands, PartitionGoal, ScheduleKind, StagePartition};
use serde::{Deserialize, Serialize};

/// The per-GPU slice of a Grace-Hopper node as §V describes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraceHopperNode {
    /// The Hopper GPU (96 GB HBM3).
    pub gpu: GpuSpec,
    /// Dedicated CPU-side memory per GPU.
    pub cpu_per_gpu: Bytes,
    /// Effective per-GPU bandwidth to that pool (paper's figure).
    pub cpu_link_bw: f64,
    /// GPUs per node.
    pub gpus: usize,
}

impl Default for GraceHopperNode {
    fn default() -> Self {
        GraceHopperNode {
            gpu: GpuSpec::grace_hopper(),
            cpu_per_gpu: Bytes::gib(512),
            cpu_link_bw: 64.0e9,
            gpus: 8,
        }
    }
}

/// GPT-3 175B in this reproduction's model vocabulary (96 layers, hidden
/// 12288, sequence 2048).
pub fn gpt3_175b() -> TransformerConfig {
    TransformerConfig::builder(ModelFamily::Gpt)
        .name("GPT3-175B")
        .layers(96)
        .hidden(12288)
        .seq_len(2048)
        .build()
}

/// The recomputed §V projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraceHopperProjection {
    /// Per-stage peak demand of the hottest stage for GPT-3 175B.
    pub hottest_stage_demand: Bytes,
    /// HBM + CPU pool available per GPU.
    pub per_gpu_capacity: Bytes,
    /// Whether the 175B pipeline still overflows (paper: yes).
    pub still_oom: bool,
    /// CPU-link bandwidth needed to fully hide the hottest stage's swap
    /// traffic inside its compute cycle, bytes/s (paper: >140 GB/s).
    pub bandwidth_to_hide_swap: f64,
    /// The node's actual CPU-link bandwidth.
    pub available_bandwidth: f64,
    /// Fraction of forward compute recomputation would re-execute
    /// (the waste D2D swap can recover; paper: ~25%).
    pub recompute_waste: f64,
    /// Fractional training-time increase from exposed CPU-side swapping
    /// (the slowdown D2D swap can avoid; paper: ~13%).
    pub exposed_swap_slowdown: f64,
}

impl GraceHopperProjection {
    /// Recomputes the projection for a node and microbatch size.
    pub fn compute(node: &GraceHopperNode, microbatch: usize) -> Self {
        let model = gpt3_175b();
        let policy = PrecisionPolicy::mixed();
        let partition = StagePartition::balanced(
            &model,
            node.gpus,
            microbatch,
            &policy,
            PartitionGoal::Computation,
        );
        let demands = MemoryDemands::compute(
            &model,
            &partition,
            ScheduleKind::Dapple,
            microbatch,
            2 * node.gpus,
            &policy,
        );
        let hottest = demands.max_stage();
        let capacity = node.gpu.usable_memory() + node.cpu_per_gpu;

        // Swap traffic the hottest stage must round-trip per microbatch
        // cycle if everything beyond HBM goes to the CPU pool.
        let spill = hottest.saturating_sub(node.gpu.usable_memory());
        let in_flight = ScheduleKind::Dapple.in_flight(0, node.gpus, 2 * node.gpus) as f64;
        let per_cycle_bytes = spill.as_f64() / in_flight;
        let layers0 = partition.stage_layers(0).len() as f64;
        let t_layer: Secs = node.gpu.compute_time(
            flops::layer_forward_flops(&model, microbatch),
            policy.compute_fp16(),
        );
        let cycle: Secs = 3.0 * layers0 * t_layer;
        // Both directions share the cycle on separate copy engines.
        let bandwidth_to_hide = per_cycle_bytes / cycle;

        // Recomputation re-executes the forward pass of dropped layers:
        // one extra forward per three units of fwd+bwd work.
        let recompute_waste = 1.0 / 3.0;
        // Exposed swap slowdown when the link is slower than needed.
        let exposed: Secs = (per_cycle_bytes / node.cpu_link_bw - cycle).max(0.0);
        let exposed_swap_slowdown = exposed / cycle;

        GraceHopperProjection {
            hottest_stage_demand: hottest,
            per_gpu_capacity: capacity,
            still_oom: hottest > capacity,
            bandwidth_to_hide_swap: bandwidth_to_hide,
            available_bandwidth: node.cpu_link_bw,
            recompute_waste,
            exposed_swap_slowdown,
        }
    }

    /// Renders the projection as display lines.
    pub fn summary(&self) -> String {
        format!(
            "GPT-3 175B hottest stage: {} vs {} per-GPU capacity -> {}\n\
             bandwidth to hide CPU-side swap: {:.0} GB/s (available: {:.0} GB/s)\n\
             recomputation waste D2D can recover: {:.0}% of forward work\n\
             exposed-swap slowdown D2D can avoid: {:.0}%",
            self.hottest_stage_demand,
            self.per_gpu_capacity,
            if self.still_oom { "still OOM" } else { "fits" },
            self.bandwidth_to_hide_swap / 1e9,
            self.available_bandwidth / 1e9,
            100.0 * self.recompute_waste,
            100.0 * self.exposed_swap_slowdown,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_is_175b() {
        let p = gpt3_175b().total_params() as f64;
        assert!((165.0e9..185.0e9).contains(&p), "{p:.3e}");
    }

    /// §V claim 1: the wall persists even on Grace-Hopper.
    #[test]
    fn grace_hopper_still_ooms_on_175b() {
        let proj = GraceHopperProjection::compute(&GraceHopperNode::default(), 2);
        assert!(proj.still_oom, "{}", proj.summary());
    }

    /// §V claim 2: hiding the swap needs more than the superchip link.
    #[test]
    fn hiding_swap_needs_more_than_c2c_bandwidth() {
        let proj = GraceHopperProjection::compute(&GraceHopperNode::default(), 2);
        assert!(
            proj.bandwidth_to_hide_swap > proj.available_bandwidth,
            "needed {:.0} GB/s vs available {:.0} GB/s",
            proj.bandwidth_to_hide_swap / 1e9,
            proj.available_bandwidth / 1e9
        );
    }

    /// §V claim 3: D2D's recoverable costs are material.
    #[test]
    fn d2d_remains_valuable() {
        let proj = GraceHopperProjection::compute(&GraceHopperNode::default(), 2);
        assert!(proj.recompute_waste >= 0.25);
        assert!(proj.exposed_swap_slowdown > 0.0);
    }

    /// A hypothetical fat link erases the exposed-swap slowdown.
    #[test]
    fn fat_link_hides_the_swap() {
        let node = GraceHopperNode {
            cpu_link_bw: 1.0e12,
            ..GraceHopperNode::default()
        };
        let proj = GraceHopperProjection::compute(&node, 2);
        assert_eq!(proj.exposed_swap_slowdown, 0.0);
    }
}

//! MPress Static's profiler (paper Fig. 5, steps 1-2).
//!
//! Runs one *uninstrumented* training window in the simulator (even when
//! it would not fit on the real GPUs — the tracker keeps counting past
//! capacity) and distills, per *tensor class*, the stats the planner's
//! cost model needs: bytes, peak-resident instance counts, live intervals
//! and recomputation (layer forward) times — the contents of the paper's
//! Table III.

use mpress_compaction::InstrumentationPlan;
use mpress_graph::{LivenessAnalysis, OpKind, TensorId, TensorKind};
use mpress_hw::{Bytes, Machine, Secs};
use mpress_pipeline::{LoweredJob, PipelineJob};
use mpress_sim::{DeviceMap, SimConfig, SimError, SimReport, Simulator};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a class of tensors is, for planning purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorClassKind {
    /// One layer's activation across all microbatches (`layer` is the
    /// global layer index; `None` is the embedding activation).
    Activation {
        /// Global layer index (`None` = embedding block).
        layer: Option<usize>,
    },
    /// The stage's stashed weight versions (PipeDream).
    Stash,
    /// One layer's optimizer state.
    OptimizerState {
        /// Global layer index (`None` = embedding block).
        layer: Option<usize>,
    },
}

/// A group of same-shaped tensors the planner treats as one unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorClass {
    /// Owning pipeline stage.
    pub stage: usize,
    /// What the class is.
    pub kind: TensorClassKind,
    /// Member tensors (one per microbatch for activations; one for
    /// statics).
    pub instances: Vec<TensorId>,
    /// Bytes of one instance.
    pub bytes_per_instance: Bytes,
    /// Instances simultaneously resident at the stage's memory peak.
    pub resident_at_peak: u64,
    /// Smallest live interval across instances (steady-state, the
    /// conservative value for hiding swap latency).
    pub live_interval: Secs,
    /// Forward time of the producing layer (recomputation cost); zero for
    /// non-activations.
    pub recompute_time: Secs,
    /// Whether every instance can be swapped (single writer, >=1 consumer
    /// allows prefetch legs; zero-consumer statics can also swap).
    pub swappable: bool,
}

impl TensorClass {
    /// GPU bytes freed on the home stage when the whole class is
    /// compacted.
    pub fn peak_saving(&self) -> Bytes {
        self.bytes_per_instance * self.resident_at_peak
    }

    /// Whether recomputation applies (activations only).
    pub fn recomputable(&self) -> bool {
        matches!(self.kind, TensorClassKind::Activation { .. })
    }
}

/// Profiler output: timings, liveness and the class table.
#[derive(Debug, Clone)]
pub struct Profile {
    /// The uninstrumented simulation (identity device map, OOM ignored).
    pub baseline: SimReport,
    /// Per-tensor live intervals from the baseline timings.
    pub liveness: LivenessAnalysis,
    /// The planner's class table.
    pub classes: Vec<TensorClass>,
}

impl Profile {
    /// Profiles `job` (lowered as `lowered`) on `machine`.
    ///
    /// # Errors
    ///
    /// Propagates simulator input errors (never OOM — the profiling run
    /// deliberately keeps counting past capacity).
    pub fn collect(
        machine: &Machine,
        job: &PipelineJob,
        lowered: &LoweredJob,
    ) -> Result<Profile, SimError> {
        let plan = InstrumentationPlan::new();
        let baseline = Simulator::new(
            machine,
            &lowered.graph,
            &plan,
            DeviceMap::identity(lowered.graph.n_stages()),
        )
        .with_config(SimConfig::default().strict_oom(false).memory_gate(false))
        .run()?;
        let liveness = LivenessAnalysis::compute(&lowered.graph, &baseline.op_start);
        let classes = build_classes(job, lowered, &liveness, &baseline);
        Ok(Profile {
            baseline,
            liveness,
            classes,
        })
    }

    /// Classes on one stage.
    pub fn stage_classes(&self, stage: usize) -> impl Iterator<Item = &TensorClass> {
        self.classes.iter().filter(move |c| c.stage == stage)
    }
}

fn build_classes(
    job: &PipelineJob,
    lowered: &LoweredJob,
    liveness: &LivenessAnalysis,
    baseline: &SimReport,
) -> Vec<TensorClass> {
    let graph = &lowered.graph;
    let schedule = job.schedule();
    let s = graph.n_stages();
    let m = job.microbatches();

    // Per-tensor recomputation time: re-running the producing forward op.
    // Sub-event deltas refine it for coarse (multi-layer) forward ops.
    let mut recompute_time = vec![0.0_f64; graph.tensors().len()];
    for op in graph.ops() {
        if op.kind != OpKind::Forward {
            continue;
        }
        if op.sub_events.is_empty() {
            for t in &op.writes {
                recompute_time[t.index()] = op.duration;
            }
            continue;
        }
        let mut events = op.sub_events.clone();
        events.sort_by(|a, b| a.offset.partial_cmp(&b.offset).expect("finite"));
        let mut prev = 0.0;
        for e in events {
            recompute_time[e.tensor.index()] = (e.offset - prev).max(0.0);
            prev = e.offset;
        }
    }

    let mut writer_counts = vec![0usize; graph.tensors().len()];
    for op in graph.ops() {
        for w in &op.writes {
            writer_counts[w.index()] += 1;
        }
    }
    let writer_count = |t: TensorId| writer_counts[t.index()];

    let mut classes = Vec::new();

    // --- Activation classes: group by (stage, layer) ------------------------
    let mut groups: BTreeMap<(usize, Option<usize>), Vec<TensorId>> = BTreeMap::new();
    for t in graph.tensors() {
        if t.kind == TensorKind::Activation {
            groups.entry((t.stage, t.layer)).or_default().push(t.id);
        }
    }
    for ((stage, layer), instances) in groups {
        let bytes = graph.tensor(instances[0]).bytes;
        let live = instances
            .iter()
            .map(|&t| liveness.interval(t).duration())
            .fold(f64::INFINITY, f64::min);
        let rec = recompute_time[instances[0].index()];
        let in_flight = schedule.in_flight(stage, s, m) as u64;
        classes.push(TensorClass {
            stage,
            kind: TensorClassKind::Activation { layer },
            swappable: instances.iter().all(|&t| writer_count(t) <= 1),
            bytes_per_instance: bytes,
            resident_at_peak: in_flight,
            live_interval: if live.is_finite() { live } else { 0.0 },
            recompute_time: rec,
            instances,
        });
    }

    // --- Stash classes: one class per stage over its version tensors ----------
    for (stage, versions) in lowered.stash_tensors.iter().enumerate() {
        if versions.is_empty() {
            continue;
        }
        let bytes = graph.tensor(versions[0]).bytes;
        // Static tensors "define" at t=0; their hiding window is the time
        // until their first use (the whole window when never read).
        let interval = versions
            .iter()
            .map(|&t| {
                let live = liveness.interval(t);
                if live.is_used() {
                    live.first_use
                } else {
                    baseline.makespan
                }
            })
            .fold(f64::INFINITY, f64::min);
        classes.push(TensorClass {
            stage,
            kind: TensorClassKind::Stash,
            swappable: versions.iter().all(|&t| writer_count(t) == 0),
            instances: versions.clone(),
            bytes_per_instance: bytes,
            resident_at_peak: versions.len() as u64,
            live_interval: interval,
            recompute_time: 0.0,
        });
    }

    // --- Optimizer-state classes ---------------------------------------------
    for t in graph.tensors() {
        if t.kind != TensorKind::OptimizerState {
            continue;
        }
        let consumers = graph.consumers_of(t.id);
        // Only swap-friendly when read by at most one op (DAPPLE's
        // per-minibatch optimizer step); PipeDream's folded updates touch
        // them every backward.
        if consumers.len() > 1 {
            continue;
        }
        let live = liveness.interval(t.id);
        let interval = if live.is_used() {
            live.first_use
        } else {
            baseline.makespan
        };
        classes.push(TensorClass {
            stage: t.stage,
            kind: TensorClassKind::OptimizerState { layer: t.layer },
            instances: vec![t.id],
            bytes_per_instance: t.bytes,
            resident_at_peak: 1,
            live_interval: interval,
            recompute_time: 0.0,
            swappable: writer_count(t.id) <= 1,
        });
    }

    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpress_model::{ModelFamily, PrecisionPolicy, TransformerConfig};
    use mpress_pipeline::ScheduleKind;

    fn job(kind: ScheduleKind) -> PipelineJob {
        PipelineJob::builder()
            .model(
                TransformerConfig::builder(ModelFamily::Gpt)
                    .layers(8)
                    .hidden(512)
                    .seq_len(256)
                    .vocab(2048) // keep the head small vs. stage compute
                    .build(),
            )
            .schedule(kind)
            .stages(4)
            .microbatch_size(2)
            .microbatches(8)
            .precision(PrecisionPolicy::mixed())
            .build()
            .unwrap()
    }

    #[test]
    fn profile_builds_activation_classes_per_layer() {
        let machine = Machine::dgx1();
        let j = job(ScheduleKind::Dapple);
        let lowered = j.lower().unwrap();
        let p = Profile::collect(&machine, &j, &lowered).unwrap();
        let act_classes: Vec<_> = p
            .classes
            .iter()
            .filter(|c| matches!(c.kind, TensorClassKind::Activation { layer: Some(_) }))
            .collect();
        assert_eq!(act_classes.len(), 8); // one per layer
        for c in &act_classes {
            assert_eq!(c.instances.len(), 8); // one per microbatch
            assert!(c.swappable);
            assert!(c.recompute_time > 0.0);
        }
    }

    #[test]
    fn early_stage_classes_have_longer_live_intervals() {
        let machine = Machine::dgx1();
        let j = job(ScheduleKind::Dapple);
        let lowered = j.lower().unwrap();
        let p = Profile::collect(&machine, &j, &lowered).unwrap();
        let avg = |stage: usize| {
            let v: Vec<f64> = p
                .stage_classes(stage)
                .filter(|c| matches!(c.kind, TensorClassKind::Activation { layer: Some(_) }))
                .map(|c| c.live_interval)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(0) > avg(3), "{} vs {}", avg(0), avg(3));
    }

    #[test]
    fn pipedream_has_stash_classes_dapple_has_optimizer_classes() {
        let machine = Machine::dgx1();
        let pd = job(ScheduleKind::PipeDream);
        let pl = pd.lower().unwrap();
        let pp = Profile::collect(&machine, &pd, &pl).unwrap();
        assert!(pp.classes.iter().any(|c| c.kind == TensorClassKind::Stash));
        // PipeDream folds updates into backwards: optimizer states are
        // multi-consumer and excluded.
        assert!(!pp
            .classes
            .iter()
            .any(|c| matches!(c.kind, TensorClassKind::OptimizerState { .. })));

        let dp = job(ScheduleKind::Dapple);
        let dl = dp.lower().unwrap();
        let dpp = Profile::collect(&machine, &dp, &dl).unwrap();
        assert!(dpp
            .classes
            .iter()
            .any(|c| matches!(c.kind, TensorClassKind::OptimizerState { .. })));
        assert!(!dpp.classes.iter().any(|c| c.kind == TensorClassKind::Stash));
    }

    #[test]
    fn peak_saving_multiplies_in_flight() {
        let machine = Machine::dgx1();
        let j = job(ScheduleKind::Dapple);
        let lowered = j.lower().unwrap();
        let p = Profile::collect(&machine, &j, &lowered).unwrap();
        let c0 = p
            .stage_classes(0)
            .find(|c| matches!(c.kind, TensorClassKind::Activation { layer: Some(_) }))
            .unwrap();
        assert_eq!(c0.resident_at_peak, 4);
        assert_eq!(c0.peak_saving(), c0.bytes_per_instance * 4);
    }
}

//! Stage-to-device mapping search (paper §III-C, Fig. 6).
//!
//! Inter-operator training makes early stages memory-hungry and late
//! stages light. On an *asymmetric* fabric (DGX-1) it matters which GPU
//! hosts which stage: a pressured stage wants its spare-memory donors to
//! be NVLink neighbours, ideally over double lanes. The search enumerates
//! stage→device permutations, assigns donor spare memory to reachable
//! exporters, and scores each candidate by the reciprocal of the slowest
//! exporter's D2D drain time — exactly the paper's scoring rule.
//!
//! On *symmetric* fabrics (DGX-2/NVSwitch) every mapping is equivalent, so
//! the search degenerates to the identity map (the paper "randomly maps
//! stages to devices" there).

use mpress_hw::{Bytes, DeviceId, Machine, TopologyKind, NVLINK2_LANE_BW, PCIE3_X16_BW};
use mpress_sim::DeviceMap;
use serde::{Deserialize, Serialize};

/// Donated spare capacity, from one stage's point of view: which peer
/// devices will accept its D2D stripes, over how many lanes, up to how
/// many bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpareAssignment {
    /// `per_stage[stage]` = `(donor device, lanes, byte budget)` entries.
    pub per_stage: Vec<Vec<(DeviceId, u32, Bytes)>>,
}

impl SpareAssignment {
    /// Total byte budget donated to one stage.
    pub fn budget_of(&self, stage: usize) -> Bytes {
        self.per_stage[stage].iter().map(|&(_, _, b)| b).sum()
    }

    /// Total lanes serving one stage.
    pub fn lanes_of(&self, stage: usize) -> u32 {
        self.per_stage[stage].iter().map(|&(_, l, _)| l).sum()
    }
}

/// Searches for the device mapping maximizing D2D drain bandwidth.
#[derive(Debug, Clone)]
pub struct MappingSearch<'a> {
    machine: &'a Machine,
}

impl<'a> MappingSearch<'a> {
    /// Creates a search over `machine`'s topology.
    pub fn new(machine: &'a Machine) -> Self {
        MappingSearch { machine }
    }

    /// Finds the best mapping for per-stage `overflow` (bytes that must
    /// leave each stage) and `spare` (bytes each stage can donate).
    ///
    /// Returns the chosen map, the resulting donor assignment and the
    /// winning score.
    ///
    /// # Panics
    ///
    /// Panics if `overflow` and `spare` lengths differ or exceed the GPU
    /// count.
    pub fn search(&self, overflow: &[Bytes], spare: &[Bytes]) -> (DeviceMap, SpareAssignment, f64) {
        assert_eq!(overflow.len(), spare.len(), "per-stage arrays must align");
        let n = overflow.len();
        assert!(
            n <= self.machine.gpu_count(),
            "more stages than GPUs on {}",
            self.machine.name()
        );
        let identity = DeviceMap::identity(n);
        if self.machine.topology().kind() == TopologyKind::Symmetric {
            let assignment = self.assign_spare(&identity, overflow, spare);
            let score = self.score_assignment(&identity, overflow, &assignment);
            return (identity, assignment, score);
        }
        let mut best_assignment = self.assign_spare(&identity, overflow, spare);
        let mut best_score = self.score_assignment(&identity, overflow, &best_assignment);
        let mut best_perm: Vec<usize> = (0..n).collect();
        // Enumerating n! permutations dominates planning cost when each
        // candidate materializes a full `SpareAssignment`. Instead, score
        // every permutation allocation-free against precomputed
        // device-pair tables (budgets and lane counts are integer sums,
        // so the flat scorer reproduces `score_assignment` exactly) and
        // rebuild the winning assignment once at the end.
        let topo = self.machine.topology();
        let g = self.machine.gpu_count();
        // Transposed pair tables: row = donor device, column = exporter
        // device, so one donor's reachability/lanes sit contiguously.
        // Orientation matches `topo.reachable(exporter, donor)` exactly.
        let mut reach_t = vec![false; g * g];
        let mut lanes_t = vec![0u32; g * g];
        for dd in 0..g {
            for ed in 0..g {
                reach_t[dd * g + ed] = topo.reachable(DeviceId(ed), DeviceId(dd));
                lanes_t[dd * g + ed] = topo.nvlink_lanes(DeviceId(ed), DeviceId(dd));
            }
        }
        let lane_budget = topo.lane_budget();
        // Scoring only visits stages with demand or supply; both lists
        // stay in ascending stage order so the float accumulation order
        // (and thus every rounded share) matches `assign_spare`.
        let exporters: Vec<(usize, f64, Bytes)> = overflow
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.is_zero())
            .map(|(e, &o)| (e, o.as_f64(), o))
            .collect();
        let donors: Vec<(usize, f64)> = spare
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_zero())
            .map(|(d, &s)| (d, s.as_f64()))
            .collect();
        let any = !exporters.is_empty();
        let mut budget = vec![0u64; n];
        let mut lane_sum = vec![0u32; n];
        let mut perm: Vec<usize> = (0..n).collect();
        permute(&mut perm, 0, &mut |p| {
            for &(e, _, _) in &exporters {
                budget[e] = 0;
                lane_sum[e] = 0;
            }
            for &(donor, donor_spare) in &donors {
                let row = p[donor] * g;
                let mut demand_total = 0.0_f64;
                for &(e, of, _) in &exporters {
                    if e != donor && reach_t[row + p[e]] {
                        demand_total += of;
                    }
                }
                if demand_total == 0.0 {
                    continue;
                }
                for &(e, of, _) in &exporters {
                    if e == donor || !reach_t[row + p[e]] {
                        continue;
                    }
                    // `Bytes::scale` verbatim, minus the finite assert.
                    let share = (donor_spare * (of / demand_total)).round() as u64;
                    if share != 0 {
                        budget[e] += share;
                        lane_sum[e] += lanes_t[row + p[e]];
                    }
                }
            }
            let mut worst: f64 = 0.0;
            for &(e, of, demand) in &exporters {
                let served = demand.min(Bytes(budget[e]));
                let stage_lanes = lane_sum[e].min(lane_budget);
                let d2d_bw = f64::from(stage_lanes.max(1)) * NVLINK2_LANE_BW;
                let mut t = served.as_f64() / d2d_bw;
                let unserved = of - served.as_f64();
                t += unserved / PCIE3_X16_BW;
                worst = worst.max(t);
            }
            let score = if any { 1.0 / worst } else { f64::INFINITY };
            if score > best_score {
                best_score = score;
                best_perm.copy_from_slice(p);
            }
        });
        let best_map = DeviceMap::from_vec(best_perm.iter().map(|&d| DeviceId(d)).collect())
            .expect("permutation is bijective");
        if best_map != DeviceMap::identity(n) {
            best_assignment = self.assign_spare(&best_map, overflow, spare);
        }
        (best_map, best_assignment, best_score)
    }

    /// Donor-side spare distribution (the paper's `assign_mem`): every
    /// stage with spare memory splits it among NVLink-reachable overflowed
    /// stages, proportionally to their demand.
    pub fn assign_spare(
        &self,
        map: &DeviceMap,
        overflow: &[Bytes],
        spare: &[Bytes],
    ) -> SpareAssignment {
        let n = overflow.len();
        let topo = self.machine.topology();
        let symmetric = topo.kind() == TopologyKind::Symmetric;
        let mut per_stage: Vec<Vec<(DeviceId, u32, Bytes)>> = vec![Vec::new(); n];
        for (donor, &donor_spare) in spare.iter().enumerate() {
            if donor_spare.is_zero() {
                continue;
            }
            let donor_dev = map.device_of(donor);
            let reachable: Vec<usize> = (0..n)
                .filter(|&e| {
                    e != donor
                        && !overflow[e].is_zero()
                        && topo.reachable(map.device_of(e), donor_dev)
                })
                .collect();
            let demand_total: f64 = reachable.iter().map(|&e| overflow[e].as_f64()).sum();
            if demand_total == 0.0 {
                continue;
            }
            for &e in &reachable {
                let share = donor_spare.scale(overflow[e].as_f64() / demand_total);
                if share.is_zero() {
                    continue;
                }
                let lanes = topo.nvlink_lanes(map.device_of(e), donor_dev);
                per_stage[e].push((donor_dev, lanes, share));
            }
        }
        // On a switched fabric the exporter's six-lane egress budget is
        // split across its donors.
        if symmetric {
            for entries in &mut per_stage {
                let k = entries.len() as u32;
                if k == 0 {
                    continue;
                }
                let lanes = (topo.lane_budget() / k).max(1);
                for entry in entries.iter_mut() {
                    entry.1 = lanes;
                }
            }
        }
        per_stage
            .iter_mut()
            .for_each(|v| v.sort_by_key(|&(d, _, _)| d));
        SpareAssignment { per_stage }
    }

    /// The paper's score: the reciprocal of the slowest exporter's drain
    /// time. Overflow that no donor can absorb drains over PCIe instead,
    /// which the score naturally punishes.
    pub fn score_assignment(
        &self,
        _map: &DeviceMap,
        overflow: &[Bytes],
        assignment: &SpareAssignment,
    ) -> f64 {
        let mut worst: f64 = 0.0;
        let mut any = false;
        for (stage, &demand) in overflow.iter().enumerate() {
            if demand.is_zero() {
                continue;
            }
            any = true;
            let budget = assignment.budget_of(stage);
            let served = demand.min(budget);
            let lanes = assignment
                .lanes_of(stage)
                .min(self.machine.topology().lane_budget());
            let d2d_bw = f64::from(lanes.max(1)) * NVLINK2_LANE_BW;
            let mut t = served.as_f64() / d2d_bw;
            let unserved = demand.saturating_sub(budget);
            t += unserved.as_f64() / PCIE3_X16_BW;
            worst = worst.max(t);
        }
        if !any {
            return f64::INFINITY;
        }
        1.0 / worst
    }
}

/// Heap's-style recursive permutation visitor.
fn permute(items: &mut [usize], k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpress_hw::Machine;

    #[test]
    fn permute_visits_all_orderings() {
        let mut seen = 0;
        let mut v = vec![0, 1, 2, 3];
        permute(&mut v, 0, &mut |_| seen += 1);
        assert_eq!(seen, 24);
    }

    #[test]
    fn symmetric_topology_skips_search() {
        let machine = Machine::dgx2();
        let search = MappingSearch::new(&machine);
        let overflow = vec![
            Bytes::gib(10),
            Bytes::ZERO,
            Bytes::ZERO,
            Bytes::ZERO,
            Bytes::ZERO,
            Bytes::ZERO,
            Bytes::ZERO,
            Bytes::ZERO,
        ];
        let spare = vec![
            Bytes::ZERO,
            Bytes::gib(4),
            Bytes::gib(4),
            Bytes::gib(4),
            Bytes::gib(4),
            Bytes::gib(4),
            Bytes::gib(4),
            Bytes::gib(4),
        ];
        let (map, assignment, score) = search.search(&overflow, &spare);
        assert_eq!(map, DeviceMap::identity(8));
        // All seven donors reachable; egress lanes split the budget of 6.
        assert_eq!(assignment.per_stage[0].len(), 7);
        assert!(assignment.budget_of(0) >= Bytes::gib(27));
        assert!(score.is_finite() && score > 0.0);
    }

    #[test]
    fn asymmetric_search_beats_worst_mapping() {
        let machine = Machine::dgx1();
        let search = MappingSearch::new(&machine);
        // Stage 0 overflows; stages 4-7 have spare.
        let mut overflow = vec![Bytes::ZERO; 8];
        overflow[0] = Bytes::gib(8);
        let mut spare = vec![Bytes::ZERO; 8];
        spare[4..8].fill(Bytes::gib(8));
        let (best_map, _, best_score) = search.search(&overflow, &spare);
        // Compare against a deliberately bad map that puts the donors out
        // of reach: identity (stage0 on GPU0, donors on GPU4-7; GPU0
        // reaches only GPU4 of those).
        let id = DeviceMap::identity(8);
        let id_assignment = search.assign_spare(&id, &overflow, &spare);
        let id_score = search.score_assignment(&id, &overflow, &id_assignment);
        assert!(
            best_score >= id_score,
            "search ({best_score}) must beat identity ({id_score})"
        );
        assert!(best_map.len() == 8);
    }

    #[test]
    fn no_overflow_scores_infinite() {
        let machine = Machine::dgx1();
        let search = MappingSearch::new(&machine);
        let overflow = vec![Bytes::ZERO; 8];
        let spare = vec![Bytes::gib(1); 8];
        let (_, _, score) = search.search(&overflow, &spare);
        assert!(score.is_infinite());
    }

    #[test]
    fn donors_split_proportionally_to_demand() {
        let machine = Machine::dgx2();
        let search = MappingSearch::new(&machine);
        let mut overflow = vec![Bytes::ZERO; 4];
        overflow[0] = Bytes::gib(6);
        overflow[1] = Bytes::gib(2);
        let mut spare = vec![Bytes::ZERO; 4];
        spare[3] = Bytes::gib(4);
        let map = DeviceMap::identity(4);
        let a = search.assign_spare(&map, &overflow, &spare);
        // Donor 3 splits 4 GiB as 3:1.
        assert_eq!(a.budget_of(0), Bytes::gib(3));
        assert_eq!(a.budget_of(1), Bytes::gib(1));
    }

    #[test]
    fn unservable_overflow_lowers_score() {
        let machine = Machine::dgx1();
        let search = MappingSearch::new(&machine);
        let mut overflow = vec![Bytes::ZERO; 8];
        overflow[0] = Bytes::gib(8);
        let plenty = {
            let mut spare = vec![Bytes::ZERO; 8];
            spare[3] = Bytes::gib(8);
            spare
        };
        let scarce = {
            let mut spare = vec![Bytes::ZERO; 8];
            spare[3] = Bytes::gib(1);
            spare
        };
        let map = DeviceMap::identity(8);
        let a1 = search.assign_spare(&map, &overflow, &plenty);
        let a2 = search.assign_spare(&map, &overflow, &scarce);
        let s1 = search.score_assignment(&map, &overflow, &a1);
        let s2 = search.score_assignment(&map, &overflow, &a2);
        assert!(s1 > s2, "served {s1} vs starved {s2}");
    }
}

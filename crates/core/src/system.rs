//! The MPress system facade: configure, plan, train.

use crate::cache::{CancelToken, PlanCache};
use crate::planner::{MpressPlan, Planner, PlannerConfig};
use crate::telemetry::TelemetryReport;
use mpress_graph::GraphError;
use mpress_hw::{Bytes, Machine};
use mpress_pipeline::{LoweredJob, PipelineJob};
use mpress_sim::{ArenaPool, DeviceMap, SimConfig, SimError, SimReport, Simulator};

pub use crate::planner::OptimizationSet;

use crate::planner::{fnv as fnv_u64, FNV_SEED};

/// Folds a string into the digest byte-by-byte (length-prefixed so
/// `"ab" + "c"` and `"a" + "bc"` cannot collide).
fn fnv_str(h: u64, s: &str) -> u64 {
    let mut h = fnv_u64(h, s.len() as u64);
    for b in s.bytes() {
        h = fnv_u64(h, u64::from(b));
    }
    h
}

/// Errors the facade can raise.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm so
/// new error kinds can be added compatibly.
#[derive(Debug)]
#[non_exhaustive]
pub enum MpressError {
    /// The job could not be lowered into a dataflow graph.
    Lowering(GraphError),
    /// The simulator rejected its inputs or deadlocked.
    Simulation(SimError),
    /// No job was configured.
    MissingJob,
}

impl std::fmt::Display for MpressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpressError::Lowering(e) => write!(f, "lowering failed: {e}"),
            MpressError::Simulation(e) => write!(f, "simulation failed: {e}"),
            MpressError::MissingJob => write!(f, "no pipeline job configured"),
        }
    }
}

impl std::error::Error for MpressError {}

impl From<GraphError> for MpressError {
    fn from(e: GraphError) -> Self {
        MpressError::Lowering(e)
    }
}

impl From<SimError> for MpressError {
    fn from(e: SimError) -> Self {
        MpressError::Simulation(e)
    }
}

/// The outcome of one planned-and-simulated training window.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// The plan that was executed.
    pub plan: MpressPlan,
    /// The instrumented simulation.
    pub sim: SimReport,
    /// Samples per second.
    pub throughput: f64,
    /// Achieved model TFLOPS (the paper's Figs. 7-8 metric).
    pub tflops: f64,
    /// Structured telemetry when the system was built with
    /// [`MpressBuilder::metrics`].
    pub metrics: Option<TelemetryReport>,
}

impl TrainingReport {
    /// Whether training fit in memory.
    pub fn succeeded(&self) -> bool {
        self.sim.oom.is_none()
    }

    /// Largest per-device memory peak.
    pub fn max_device_peak(&self) -> Bytes {
        self.sim.max_device_peak()
    }
}

/// The MPress system: a pipeline job plus a planner configuration.
///
/// # Example
///
/// ```no_run
/// use mpress::{Mpress, OptimizationSet};
/// use mpress_pipeline::PipelineJob;
/// use mpress_model::zoo;
///
/// let job = PipelineJob::builder().model(zoo::bert_1_67b()).build()?;
/// let mpress = Mpress::builder()
///     .job(job)
///     .optimizations(OptimizationSet::all())
///     .build();
/// let report = mpress.train()?;
/// assert!(report.succeeded());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Mpress {
    job: PipelineJob,
    planner_config: PlannerConfig,
    metrics: bool,
    plan_cache: Option<PlanCache>,
    arena_pool: Option<ArenaPool>,
    cancel: Option<CancelToken>,
}

impl Mpress {
    /// Starts configuring an MPress instance.
    pub fn builder() -> MpressBuilder {
        MpressBuilder::default()
    }

    /// The configured job.
    pub fn job(&self) -> &PipelineJob {
        &self.job
    }

    /// The machine the job runs on.
    pub fn machine(&self) -> &Machine {
        self.job.machine()
    }

    /// The planner configuration.
    pub fn planner_config(&self) -> &PlannerConfig {
        &self.planner_config
    }

    /// Lowers the job and produces a memory-saving plan.
    ///
    /// # Errors
    ///
    /// Returns [`MpressError`] when lowering or the planner's emulator
    /// runs fail.
    pub fn plan(&self) -> Result<(MpressPlan, LoweredJob), MpressError> {
        let lowered = self.job.lower()?;
        let digest = self.plan_digest(&lowered);
        if let Some(cache) = &self.plan_cache {
            if let Some(plan) = cache.plan_lookup(digest) {
                return Ok((plan, lowered));
            }
        }
        let mut planner = Planner::new(self.machine(), &self.job, &lowered, self.planner_config);
        if let Some(cache) = &self.plan_cache {
            planner = planner.with_shared_cache(cache.clone(), self.job_scope(&lowered));
        }
        if let Some(pool) = &self.arena_pool {
            planner = planner.with_arena_pool(pool.clone());
        }
        if let Some(token) = &self.cancel {
            planner = planner.with_cancel(token.clone());
        }
        let plan = planner.plan()?;
        if let Some(cache) = &self.plan_cache {
            cache.plan_insert(digest, &plan);
        }
        Ok((plan, lowered))
    }

    /// Structural fingerprint of the *job* as the emulator sees it: the
    /// lowered graph content plus the machine identity. Two `Mpress`
    /// instances with equal scopes run byte-identical simulator windows
    /// for equal candidate plans, so this scopes shared emulation
    /// outcomes in a [`PlanCache`] (planner configuration deliberately
    /// excluded — outcomes do not depend on it).
    pub fn job_scope(&self, lowered: &LoweredJob) -> u64 {
        let mut h = fnv_u64(FNV_SEED, mpress_sim::graph_fingerprint(&lowered.graph));
        h = fnv_str(h, self.machine().name());
        h = fnv_u64(h, self.machine().gpu_count() as u64);
        h = fnv_u64(h, self.machine().gpu().usable_memory().as_u64());
        h = fnv_u64(h, self.machine().cpu().memory.as_u64());
        h = fnv_u64(h, u64::from(self.machine().nvme().is_some()));
        h
    }

    /// Canonical digest of one *planning request*: the job scope plus
    /// every [`PlannerConfig`] field that can steer the search. Equal
    /// digests are guaranteed to produce byte-identical plans (planning
    /// is deterministic), which is exactly the key a process-global
    /// plan cache needs.
    pub fn plan_digest(&self, lowered: &LoweredJob) -> u64 {
        let c = &self.planner_config;
        let mut h = self.job_scope(lowered);
        h = fnv_u64(h, u64::from(c.optimizations.recompute));
        h = fnv_u64(h, u64::from(c.optimizations.host_swap));
        h = fnv_u64(h, u64::from(c.optimizations.d2d));
        h = fnv_u64(h, c.headroom.to_bits());
        h = fnv_u64(h, c.refine_iters as u64);
        h = fnv_u64(h, u64::from(c.striping));
        h = fnv_u64(h, u64::from(c.mapping_search));
        h = fnv_u64(h, u64::from(c.exhaustive_swap));
        // The widened refinement grid visits assignments the default
        // walk never proposes, so it steers the search and must split
        // the digest.
        h = fnv_u64(h, u64::from(c.explore));
        // prefilter/verify/delta/bounds/bound_abort are outcome-
        // transparent (the property suite pins plan identity with them
        // on or off), so they are deliberately not part of the digest:
        // a plan computed with delta off answers a request with delta
        // on, and vice versa.
        h
    }

    /// Plans, then simulates the instrumented training window.
    ///
    /// # Errors
    ///
    /// Returns [`MpressError`] on inconsistent inputs. Out-of-memory is a
    /// *result*, not an error: check [`TrainingReport::succeeded`].
    pub fn train(&self) -> Result<TrainingReport, MpressError> {
        let (plan, lowered) = self.plan()?;
        self.simulate(&plan, &lowered)
    }

    /// Simulates a (possibly externally supplied) plan.
    ///
    /// # Errors
    ///
    /// Returns [`MpressError::Simulation`] on invalid plans.
    pub fn simulate(
        &self,
        plan: &MpressPlan,
        lowered: &LoweredJob,
    ) -> Result<TrainingReport, MpressError> {
        let report = Simulator::new(
            self.machine(),
            &lowered.graph,
            &plan.instrumentation,
            plan.device_map.clone(),
        )
        .with_config(SimConfig::default().metrics(self.metrics))
        .run()?;
        // A job that overflows immediately never processes a sample.
        let (throughput, tflops) = if report.makespan > 0.0 && report.oom.is_none() {
            (
                report.throughput(self.job.window_samples()),
                report.achieved_tflops(self.job.window_flops()),
            )
        } else {
            (0.0, 0.0)
        };
        let metrics = self.metrics.then(|| TelemetryReport {
            sim: report.metrics.clone(),
            search: plan.search,
            refine_candidates: plan.refine_candidates.clone(),
        });
        Ok(TrainingReport {
            plan: plan.clone(),
            sim: report,
            throughput,
            tflops,
            metrics,
        })
    }

    /// Simulates the *uninstrumented* job with an identity mapping — the
    /// unmodified PipeDream/DAPPLE baseline.
    ///
    /// # Errors
    ///
    /// Returns [`MpressError`] on lowering or simulator-input failures.
    pub fn train_unmodified(&self) -> Result<TrainingReport, MpressError> {
        let lowered = self.job.lower()?;
        let plan = MpressPlan {
            device_map: DeviceMap::identity(lowered.graph.n_stages()),
            instrumentation: mpress_compaction::InstrumentationPlan::new(),
            spare: crate::mapping::SpareAssignment {
                per_stage: vec![Vec::new(); lowered.graph.n_stages()],
            },
            refinement_rounds: 0,
            search: crate::planner::SearchStats::default(),
            refine_candidates: Vec::new(),
            baseline: SimReport {
                makespan: 0.0,
                op_start: Vec::new(),
                op_end: Vec::new(),
                device_peak: Vec::new(),
                host_peak: Bytes::ZERO,
                nvme_peak: Bytes::ZERO,
                oom: None,
                d2d_traffic: Bytes::ZERO,
                host_traffic: Bytes::ZERO,
                nvme_traffic: Bytes::ZERO,
                recompute_time: 0.0,
                timelines: None,
                trace: None,
                metrics: None,
            },
        };
        self.simulate(&plan, &lowered)
    }
}

/// Builder for [`Mpress`].
#[derive(Debug, Default)]
pub struct MpressBuilder {
    job: Option<PipelineJob>,
    planner_config: Option<PlannerConfig>,
    optimizations: Option<OptimizationSet>,
    headroom: Option<f64>,
    refine_iters: Option<usize>,
    striping: Option<bool>,
    mapping_search: Option<bool>,
    prefilter: Option<bool>,
    verify: Option<bool>,
    delta: Option<bool>,
    bounds: Option<bool>,
    bound_abort: Option<bool>,
    explore: Option<bool>,
    metrics: bool,
    plan_cache: Option<PlanCache>,
    arena_pool: Option<ArenaPool>,
    cancel: Option<CancelToken>,
}

impl MpressBuilder {
    /// Sets the pipeline job (required).
    pub fn job(mut self, job: PipelineJob) -> Self {
        self.job = Some(job);
        self
    }

    /// Replaces the whole planner configuration.
    pub fn planner_config(mut self, config: PlannerConfig) -> Self {
        self.planner_config = Some(config);
        self
    }

    /// Selects the allowed techniques.
    pub fn optimizations(mut self, opts: OptimizationSet) -> Self {
        self.optimizations = Some(opts);
        self
    }

    /// Sets the workspace headroom fraction.
    pub fn headroom(mut self, headroom: f64) -> Self {
        self.headroom = Some(headroom);
        self
    }

    /// Caps emulator-verified refinement rounds.
    pub fn refine_iters(mut self, iters: usize) -> Self {
        self.refine_iters = Some(iters);
        self
    }

    /// Toggles D2D data striping (Fig. 9 ablation).
    pub fn striping(mut self, on: bool) -> Self {
        self.striping = Some(on);
        self
    }

    /// Toggles the device-mapping search (Fig. 9 ablation).
    pub fn mapping_search(mut self, on: bool) -> Self {
        self.mapping_search = Some(on);
        self
    }

    /// Toggles the planner's analytic lower-bound pre-filter (on by
    /// default unless `MPRESS_PREFILTER=0`; the chosen plan is identical
    /// either way — only the emulator-run count changes).
    pub fn prefilter(mut self, on: bool) -> Self {
        self.prefilter = Some(on);
        self
    }

    /// Toggles the planner's static plan verifier hook (on by default
    /// unless `MPRESS_VERIFY=0`; the chosen plan is identical either
    /// way — planner-emitted candidates are always structurally valid).
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = Some(on);
        self
    }

    /// Toggles the planner's incremental re-emulation (on by default
    /// unless `MPRESS_DELTA=0`; the chosen plan is byte-identical either
    /// way — only wall-clock and the delta counters change).
    pub fn delta(mut self, on: bool) -> Self {
        self.delta = Some(on);
        self
    }

    /// Toggles the planner's certified-bounds gate (on by default unless
    /// `MPRESS_BOUNDS=0`; the chosen plan is byte-identical either way —
    /// only the `bounds_pruned`/`bounds_certified_fit` counters change).
    pub fn bounds(mut self, on: bool) -> Self {
        self.bounds = Some(on);
        self
    }

    /// Toggles the planner's bound-and-abort emulation (on by default
    /// unless `MPRESS_BOUND_ABORT=0`; the chosen plan is byte-identical
    /// either way — only wall-clock and the `bound_aborts` counter
    /// change).
    pub fn bound_abort(mut self, on: bool) -> Self {
        self.bound_abort = Some(on);
        self
    }

    /// Toggles the planner's widened (exploratory) refinement grid.
    /// Unlike the transparent gates above this steers the search, so it
    /// joins [`Mpress::plan_digest`].
    pub fn explore(mut self, on: bool) -> Self {
        self.explore = Some(on);
        self
    }

    /// Collects structured telemetry ([`TrainingReport::metrics`]) during
    /// `train`/`simulate`. Off by default — disabled runs skip all metric
    /// assembly and their reports are byte-identical to pre-metrics runs.
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Attaches a process-global [`PlanCache`]: [`Mpress::plan`] first
    /// consults it by [`Mpress::plan_digest`] (a hit returns the cached
    /// plan without a search), and cache-backed searches share emulation
    /// outcomes across planner instances. Plans are deterministic, so
    /// cached and freshly planned results are byte-identical — the cache
    /// only changes who pays for the simulator windows.
    pub fn plan_cache(mut self, cache: PlanCache) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Shares a simulation [`ArenaPool`] across `Mpress` instances so
    /// emulator windows reuse prebuilt graph tables process-wide.
    pub fn arena_pool(mut self, pool: ArenaPool) -> Self {
        self.arena_pool = Some(pool);
        self
    }

    /// Attaches a cancellation budget ([`CancelToken`]): planner
    /// searches charge it per simulator window and abort with
    /// [`SimError::Cancelled`] (wrapped in [`MpressError::Simulation`])
    /// once it trips.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Finishes the system.
    ///
    /// # Panics
    ///
    /// Panics when the required `job` was never supplied — the one
    /// invariant [`MpressBuilder::try_build`] checks. Use `try_build` to
    /// handle the violation as a value instead.
    pub fn build(self) -> Mpress {
        self.try_build()
            .expect("MpressBuilder invariant violated: a pipeline job must be set via .job(...) before build()")
    }

    /// Fallible build.
    ///
    /// # Errors
    ///
    /// Returns [`MpressError::MissingJob`] when no job was set.
    pub fn try_build(self) -> Result<Mpress, MpressError> {
        let job = self.job.ok_or(MpressError::MissingJob)?;
        let mut config = self.planner_config.unwrap_or_default();
        if let Some(opts) = self.optimizations {
            config.optimizations = opts;
        }
        if let Some(h) = self.headroom {
            config.headroom = h;
        }
        if let Some(r) = self.refine_iters {
            config.refine_iters = r;
        }
        if let Some(s) = self.striping {
            config.striping = s;
        }
        if let Some(m) = self.mapping_search {
            config.mapping_search = m;
        }
        if let Some(p) = self.prefilter {
            config.prefilter = p;
        }
        if let Some(v) = self.verify {
            config.verify = v;
        }
        if let Some(d) = self.delta {
            config.delta = d;
        }
        if let Some(b) = self.bounds {
            config.bounds = b;
        }
        if let Some(a) = self.bound_abort {
            config.bound_abort = a;
        }
        if let Some(x) = self.explore {
            config.explore = x;
        }
        Ok(Mpress {
            job,
            planner_config: config,
            metrics: self.metrics,
            plan_cache: self.plan_cache,
            arena_pool: self.arena_pool,
            cancel: self.cancel,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpress_model::{ModelFamily, PrecisionPolicy, TransformerConfig};
    use mpress_pipeline::ScheduleKind;

    fn job(layers: usize, hidden: usize) -> PipelineJob {
        PipelineJob::builder()
            .model(
                TransformerConfig::builder(ModelFamily::Gpt)
                    .layers(layers)
                    .hidden(hidden)
                    .seq_len(512)
                    .build(),
            )
            .schedule(ScheduleKind::Dapple)
            .stages(8)
            .microbatch_size(2)
            .microbatches(8)
            .precision(PrecisionPolicy::mixed())
            .build()
            .unwrap()
    }

    #[test]
    fn missing_job_errors() {
        assert!(matches!(
            Mpress::builder().try_build(),
            Err(MpressError::MissingJob)
        ));
    }

    #[test]
    fn small_model_trains_without_directives() {
        let m = Mpress::builder().job(job(16, 1024)).build();
        let report = m.train().unwrap();
        assert!(report.succeeded());
        assert!(report.plan.instrumentation.is_empty());
        assert!(report.tflops > 0.0);
    }

    #[test]
    fn baseline_equals_mpress_when_memory_suffices() {
        // Paper Fig. 7 "small size": all systems report identical numbers.
        let m = Mpress::builder().job(job(16, 1024)).build();
        let mpress = m.train().unwrap();
        let plain = m.train_unmodified().unwrap();
        assert!((mpress.throughput - plain.throughput).abs() / plain.throughput < 1e-9);
    }

    #[test]
    fn builder_overrides_apply() {
        let m = Mpress::builder()
            .job(job(8, 512))
            .optimizations(OptimizationSet::recompute_only())
            .headroom(0.1)
            .refine_iters(3)
            .striping(false)
            .mapping_search(false)
            .build();
        let c = m.planner_config();
        assert_eq!(c.optimizations, OptimizationSet::recompute_only());
        assert_eq!(c.headroom, 0.1);
        assert_eq!(c.refine_iters, 3);
        assert!(!c.striping);
        assert!(!c.mapping_search);
    }
}

//! The structured telemetry surfaced by a metrics-enabled run.
//!
//! [`TelemetryReport`] joins the two halves of the observability story:
//! the simulator's time/traffic accounting ([`SimMetrics`]) and the
//! planner's search-cost counters ([`SearchStats`] plus the per-round
//! candidate counts). One JSON document — with stable key order, so
//! identical runs emit identical bytes — answers both "where did the
//! simulated time go" and "what did finding the plan cost".

use crate::planner::SearchStats;
use mpress_sim::SimMetrics;
use serde::{Deserialize, Serialize};

/// Everything a metrics-enabled `train`/`plan` run reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Simulator metrics for the instrumented window (absent when only
    /// planning, or when the simulation never ran).
    pub sim: Option<SimMetrics>,
    /// Planner search counters (emulator runs, cache hits, worker pool).
    pub search: SearchStats,
    /// Candidate plans emulated per refinement round.
    pub refine_candidates: Vec<usize>,
}

impl TelemetryReport {
    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.sim.is_none()
            && self.search == SearchStats::default()
            && self.refine_candidates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_report_is_empty() {
        assert!(TelemetryReport::default().is_empty());
        let t = TelemetryReport {
            refine_candidates: vec![3],
            ..TelemetryReport::default()
        };
        assert!(!t.is_empty());
    }
}

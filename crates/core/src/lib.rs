//! **MPress** — the paper's primary contribution, reproduced in Rust.
//!
//! MPress (HPCA 2023) breaks the GPU memory wall of billion-scale
//! inter-operator (pipeline) parallel training on one multi-GPU server by
//! combining three memory-compaction techniques with complementary costs:
//!
//! * a novel **D2D swap** that stripes tensors over multiple NVLink lanes
//!   to peer GPUs with spare memory (fast, but the spare pool is small),
//! * **GPU-CPU swap** over PCIe (slow, vast capacity), and
//! * **recomputation** (no memory moved, costs compute, activations only).
//!
//! The crate mirrors the paper's Fig. 5 architecture:
//!
//! * [`profiler`] runs one uninstrumented iteration in the simulator and
//!   extracts per-tensor stats (sizes, live intervals, layer times),
//! * [`mapping`] searches stage→device permutations so that pressured
//!   stages sit next to NVLink-reachable spare memory (Fig. 6),
//! * [`planner`] assigns techniques to tensor classes with a cost model
//!   and refines the assignment through emulator feedback (§III-D),
//! * [`system`] wraps everything into the [`Mpress`] facade.
//!
//! # Quickstart
//!
//! ```no_run
//! use mpress::{Mpress, OptimizationSet};
//! use mpress_pipeline::{PipelineJob, ScheduleKind};
//! use mpress_model::zoo;
//! use mpress_hw::Machine;
//!
//! let job = PipelineJob::builder()
//!     .model(zoo::gpt_10_3b())
//!     .machine(Machine::dgx1())
//!     .schedule(ScheduleKind::Dapple)
//!     .microbatch_size(2)
//!     .build()?;
//! let report = Mpress::builder()
//!     .job(job)
//!     .optimizations(OptimizationSet::all())
//!     .build()
//!     .train()?;
//! println!("achieved {:.1} TFLOPS", report.tflops);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod insights;
pub mod mapping;
pub mod planner;
pub mod profiler;
pub mod system;
pub mod telemetry;

pub use cache::{CancelToken, PlanCache, PlanCacheStats};
pub use insights::{GraceHopperNode, GraceHopperProjection};
pub use mapping::{MappingSearch, SpareAssignment};
pub use planner::{Metric, MpressPlan, Planner, PlannerConfig, SearchStats};
pub use profiler::{Profile, TensorClass, TensorClassKind};
pub use system::{Mpress, MpressBuilder, MpressError, OptimizationSet, TrainingReport};
pub use telemetry::TelemetryReport;
